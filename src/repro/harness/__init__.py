"""Experiment harness: one runner per paper table/figure plus reporting.

Each ``run_*`` function in :mod:`repro.harness.experiments` regenerates one
artefact of the paper's evaluation (see DESIGN.md's experiment index) and
returns a structured result that the benchmarks print as paper-vs-measured
tables.  Trained models are cached on disk (:mod:`repro.harness.artifacts`)
so repeated benchmark runs do not retrain.
"""

from repro.harness.reporting import format_table, paper_vs_measured
from repro.harness.artifacts import get_trained_bundle, TrainedBundle
from repro.harness.campaign import (
    CampaignConfig,
    CampaignPoint,
    CampaignResult,
    build_reference_pipeline,
    run_resilience_campaign,
)
from repro.harness.differential import (
    ENGINES,
    EXTENDED_ENGINES,
    DifferentialReport,
    EngineComparison,
    differential_snapshot,
    random_binarized_network,
    random_spike_trains,
    run_compiled_differential,
    run_differential,
    run_gate_level_differential,
)
from repro.harness import experiments

__all__ = [
    "format_table",
    "paper_vs_measured",
    "get_trained_bundle",
    "TrainedBundle",
    "experiments",
    "DifferentialReport",
    "EngineComparison",
    "differential_snapshot",
    "random_binarized_network",
    "random_spike_trains",
    "ENGINES",
    "EXTENDED_ENGINES",
    "run_compiled_differential",
    "run_differential",
    "run_gate_level_differential",
    "CampaignConfig",
    "CampaignPoint",
    "CampaignResult",
    "build_reference_pipeline",
    "run_resilience_campaign",
]
