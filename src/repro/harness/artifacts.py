"""Trained-model cache shared by examples, benchmarks and tests.

Training the reference SNN takes tens of seconds, so trained weights are
cached under ``<repo>/.cache/repro-sushi/`` keyed by their full
configuration.  ``get_trained_bundle`` returns the model together with its
dataset and evaluation metrics, training only on a cache miss.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.data import Dataset, load_digits, load_fashion
from repro.snn import (
    SpikingClassifier,
    Trainer,
    TrainerConfig,
)

CACHE_DIR = os.environ.get(
    "REPRO_CACHE_DIR",
    os.path.join(os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))), ".cache",
        "repro-sushi"),
)


@dataclass
class TrainedBundle:
    """A trained classifier plus the data it was trained on."""

    model: SpikingClassifier
    dataset: Dataset
    train_accuracy: float
    config_key: str


def _config_key(dataset: str, hidden: int, epochs: int, train_size: int,
                time_steps: int, lr: float, seed: int,
                downsample: int, binary_aware: bool) -> str:
    mode = "ba" if binary_aware else "fp"
    return (
        f"{dataset}_h{hidden}_e{epochs}_n{train_size}_t{time_steps}"
        f"_lr{lr:g}_s{seed}_d{downsample}_{mode}"
    )


def downsample_images(images: np.ndarray, factor: int) -> np.ndarray:
    """Average-pool square images by ``factor`` (28x28 -> 7x7 at 4)."""
    if factor <= 1:
        return images
    n, h, w = images.shape
    h2, w2 = h // factor, w // factor
    trimmed = images[:, : h2 * factor, : w2 * factor]
    return trimmed.reshape(n, h2, factor, w2, factor).mean(axis=(2, 4))


def _weights_path(key: str) -> str:
    return os.path.join(CACHE_DIR, f"{key}.npz")


def _save_weights(model: SpikingClassifier, path: str,
                  train_accuracy: float) -> None:
    os.makedirs(os.path.dirname(path), exist_ok=True)
    arrays = {"train_accuracy": np.array(train_accuracy)}
    for i, layer in enumerate(model.linear_layers()):
        arrays[f"w{i}"] = layer.weight.numpy()
        if layer.bias is not None:
            arrays[f"b{i}"] = layer.bias.numpy()
    np.savez(path, **arrays)


def _load_weights(model: SpikingClassifier, path: str) -> Optional[float]:
    if not os.path.exists(path):
        return None
    with np.load(path) as data:
        for i, layer in enumerate(model.linear_layers()):
            key = f"w{i}"
            if key not in data or data[key].shape != layer.weight.shape:
                return None
            layer.weight.data[...] = data[key]
            if layer.bias is not None and f"b{i}" in data:
                layer.bias.data[...] = data[f"b{i}"]
        return float(data["train_accuracy"])


def get_trained_bundle(
    dataset: str = "digits",
    hidden: int = 256,
    epochs: int = 15,
    train_size: int = 2000,
    test_size: int = 500,
    time_steps: int = 5,
    learning_rate: float = 5e-3,
    seed: int = 0,
    use_cache: bool = True,
    downsample: int = 1,
    binary_aware: bool = True,
) -> TrainedBundle:
    """Return a binary-aware trained classifier (cached on disk).

    The defaults reproduce the scaled-down Table 3 setup: the paper's
    INPUT-FC-IF-FC-IF architecture with T=5 and Adam, trained with the
    binarized forward pass (section 5.1).  ``downsample`` average-pools the
    images (used by the gate-level Fig. 16 demonstration, which needs a
    tiny network)."""
    loader = {"digits": load_digits, "fashion": load_fashion}[dataset]
    data = loader(train_size=train_size, test_size=test_size, seed=seed)
    if downsample > 1:
        data = Dataset(
            downsample_images(data.train_images, downsample),
            data.train_labels,
            downsample_images(data.test_images, downsample),
            data.test_labels,
            name=data.name,
        )
    input_size = data.train_images.shape[1] * data.train_images.shape[2]
    model = SpikingClassifier.mlp(
        input_size=input_size,
        hidden_size=hidden,
        time_steps=time_steps,
        binary_aware=binary_aware,
        seed=seed,
    )
    key = _config_key(dataset, hidden, epochs, train_size, time_steps,
                      learning_rate, seed, downsample, binary_aware)
    path = _weights_path(key)
    if use_cache:
        cached_accuracy = _load_weights(model, path)
        if cached_accuracy is not None:
            model.eval()
            return TrainedBundle(model, data, cached_accuracy, key)
    trainer = Trainer(
        model,
        TrainerConfig(epochs=epochs, batch_size=64,
                      learning_rate=learning_rate),
    )
    history = trainer.fit(data.train_images, data.train_labels)
    train_accuracy = history.train_accuracies[-1]
    if use_cache:
        _save_weights(model, path, train_accuracy)
    return TrainedBundle(model, data, train_accuracy, key)
