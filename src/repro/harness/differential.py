"""Differential-equivalence harness: fast vs behavioural vs gate level.

The batched fast engine is only trustworthy because it is *provably* the
same computation as the protocol-exact paths.  This module packages that
proof as reusable machinery:

* :func:`random_binarized_network` / :func:`random_spike_trains` --
  seeded generators of capacity-safe random workloads;
* :func:`run_differential` -- run one workload through every requested
  engine (batched fast, per-sample fast, behavioural chip, software
  final-sum reference) and compare rasters, predictions and spike counts
  bit-for-bit;
* :func:`gate_level_step_outputs` / :func:`run_gate_level_differential`
  -- drive a single random neuron through the gate-level RSFQ chip and
  check it against the behavioural/fast decisions (the miniature version
  of the paper's Fig. 16 chip-vs-simulation study);
* :meth:`DifferentialReport.to_snapshot` -- feed the result into the
  :mod:`repro.harness.regression` snapshot machinery so CI can gate on
  "still equivalent, still the same totals".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.harness.regression import MetricSnapshot
from repro.snn.binarize import BinarizedLayer, BinarizedNetwork
from repro.ssnn.runtime import RuntimeResult, SushiRuntime

#: Engines understood by :func:`run_differential`.
ENGINES = ("fast", "per-sample", "behavioral")

#: :data:`ENGINES` plus ``"legacy-fast"``: the pre-compile batched kernel
#: (``SushiRuntime(use_compiled=False)``, i.e. the ``_plan_for`` path the
#: compiled artifacts are gated against).  Kept as a separate constant so
#: snapshots and tests pinned to :data:`ENGINES` stay byte-stable.
EXTENDED_ENGINES = ENGINES + ("legacy-fast",)


# ---------------------------------------------------------------------------
# Workload generators
# ---------------------------------------------------------------------------

def random_binarized_network(
    rng: np.random.Generator,
    sizes: Sequence[int] = (8, 6, 4),
    max_magnitude: int = 1,
    sc_per_npe: int = 8,
) -> BinarizedNetwork:
    """A random integer network guaranteed to stream safely on an
    ``sc_per_npe``-SC NPE under reordered bucketing.

    Weights are drawn from ``[-max_magnitude, max_magnitude]`` (re-drawn
    until every neuron keeps at least one connection); thresholds are
    drawn so that ``threshold + worst-case inhibition <= 2**sc_per_npe``
    (the :func:`repro.ssnn.bucketing.required_capacity` bound) *and*
    ``threshold <= total excitation`` (so neurons are actually reachable
    and the differential exercises both fire and no-fire paths).
    """
    if len(sizes) < 2:
        raise ConfigurationError("need at least an input and output size")
    capacity = 1 << sc_per_npe
    layers = []
    for n_in, n_out in zip(sizes, sizes[1:]):
        for _ in range(100):
            weights = rng.integers(
                -max_magnitude, max_magnitude + 1, size=(n_in, n_out)
            )
            if not (np.abs(weights).sum(axis=0) == 0).any():
                break
        else:
            raise ConfigurationError(
                "could not draw a network without dead neurons"
            )
        inhibition = -np.minimum(weights, 0).sum(axis=0)  # (out,) >= 0
        excitation = np.maximum(weights, 0).sum(axis=0)   # (out,) >= 0
        headroom = capacity - inhibition
        if (headroom < 1).any():
            raise ConfigurationError(
                f"layer {n_in}x{n_out} cannot fit {sc_per_npe} SCs; "
                "use smaller sizes or more SCs"
            )
        # Bias thresholds low (a third of the reachable range): random
        # signed sums concentrate near zero, so mid-range thresholds would
        # almost never fire and the differential would only exercise the
        # all-silent path.
        upper = np.minimum(headroom, np.maximum(excitation // 3, 1))
        thresholds = np.array([
            int(rng.integers(1, int(u) + 1)) for u in upper
        ])
        layers.append(BinarizedLayer(weights, thresholds))
    return BinarizedNetwork(layers)


def random_spike_trains(
    rng: np.random.Generator,
    steps: int,
    batch: int,
    in_features: int,
    rate: float = 0.4,
) -> np.ndarray:
    """A Bernoulli ``(T, batch, in_features)`` binary spike train."""
    if not 0.0 <= rate <= 1.0:
        raise ConfigurationError("rate must be in [0, 1]")
    return (rng.random((steps, batch, in_features)) < rate).astype(np.float64)


# ---------------------------------------------------------------------------
# Engine comparison
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class EngineComparison:
    """Bit-level agreement between a candidate engine and the baseline."""

    baseline: str
    candidate: str
    raster_equal: bool
    predictions_equal: bool
    spike_counts_equal: bool
    mismatched_samples: Tuple[int, ...] = ()

    @property
    def equivalent(self) -> bool:
        return (self.raster_equal and self.predictions_equal
                and self.spike_counts_equal)


@dataclass
class DifferentialReport:
    """Outcome of one differential run across engines."""

    baseline: str
    comparisons: List[EngineComparison]
    results: Dict[str, RuntimeResult] = field(default_factory=dict)
    software_agreement: Optional[bool] = None
    samples: int = 0
    steps: int = 0

    @property
    def passed(self) -> bool:
        ok = all(c.equivalent for c in self.comparisons)
        if self.software_agreement is not None:
            ok = ok and self.software_agreement
        return ok

    def summary(self) -> str:
        lines = [
            f"differential over {self.samples} samples x {self.steps} steps "
            f"(baseline: {self.baseline})"
        ]
        for c in self.comparisons:
            verdict = "EQUIVALENT" if c.equivalent else "MISMATCH"
            detail = ""
            if c.mismatched_samples:
                detail = f" (samples {list(c.mismatched_samples)[:5]}...)"
            lines.append(f"  {c.baseline} vs {c.candidate}: {verdict}{detail}")
        if self.software_agreement is not None:
            lines.append(
                "  software final-sum reference: "
                + ("agrees" if self.software_agreement else "DISAGREES")
            )
        return "\n".join(lines)

    def to_snapshot(self, name: str = "differential") -> MetricSnapshot:
        """Scalar form for the :mod:`repro.harness.regression` gate.

        Mismatch metrics must stay 0; the totals (spikes, synaptic ops)
        pin the workload so a silent semantics change trips the gate.
        """
        snap = MetricSnapshot(name)
        snap.record("samples", self.samples)
        snap.record("steps", self.steps)
        snap.record("engines", len(self.results))
        snap.record(
            "mismatched_comparisons",
            sum(0 if c.equivalent else 1 for c in self.comparisons),
        )
        base = self.results.get(self.baseline)
        if base is not None:
            snap.record("total_output_spikes",
                        float(base.output_raster.sum()))
            snap.record("spurious_decisions",
                        float(base.spurious_decisions))
            snap.record("synaptic_ops", float(base.synaptic_ops))
            snap.record("prediction_sum", float(base.predictions.sum()))
        if self.software_agreement is not None:
            snap.record("software_agrees", float(self.software_agreement))
        return snap


def _compare(
    baseline_name: str,
    baseline: RuntimeResult,
    candidate_name: str,
    candidate: RuntimeResult,
) -> EngineComparison:
    raster_equal = bool(
        np.array_equal(baseline.output_raster, candidate.output_raster)
    )
    predictions_equal = bool(
        np.array_equal(baseline.predictions, candidate.predictions)
    )
    counts_equal = bool(
        np.array_equal(
            baseline.output_raster.sum(axis=0),
            candidate.output_raster.sum(axis=0),
        )
    )
    mismatched: Tuple[int, ...] = ()
    if not raster_equal:
        diff = (baseline.output_raster != candidate.output_raster).any(
            axis=(0, 2)
        )
        mismatched = tuple(int(i) for i in np.flatnonzero(diff))
    return EngineComparison(
        baseline=baseline_name,
        candidate=candidate_name,
        raster_equal=raster_equal,
        predictions_equal=predictions_equal,
        spike_counts_equal=counts_equal,
        mismatched_samples=mismatched,
    )


def run_differential(
    network: BinarizedNetwork,
    spike_trains: np.ndarray,
    chip_n: int = 4,
    sc_per_npe: int = 8,
    engines: Sequence[str] = ENGINES,
    reorder: bool = True,
    check_software: bool = True,
    faults=None,
    plan_cache=None,
) -> DifferentialReport:
    """Run one workload through every requested engine and diff the bits.

    ``engines`` may contain ``"fast"`` (batched, compiled-plan path),
    ``"legacy-fast"`` (the batched pre-compile kernel,
    ``use_compiled=False``), ``"per-sample"`` (the fast engine sample by
    sample) and ``"behavioral"`` (protocol-exact chip).  The first entry
    is the baseline the others are compared to.  With
    ``check_software=True`` (and ``reorder=True``) the baseline's raster
    is also checked against the software final-sum reference
    (:meth:`BinarizedNetwork.forward_step` per step).

    ``faults`` optionally attaches a
    :class:`~repro.rsfq.faults.FaultModel` to every runtime: the
    self-healing loop then guarantees each engine still converges to the
    clean raster (or degrades to fault-free semantics), so cross-engine
    bit-identity -- and the software check -- remain meaningful under
    injection.  ``plan_cache`` is forwarded to
    :class:`~repro.ssnn.runtime.SushiRuntime` (default ``None``: compile
    in-memory, no disk traffic from the harness).
    """
    if not engines:
        raise ConfigurationError("need at least one engine")
    unknown = [e for e in engines if e not in EXTENDED_ENGINES]
    if unknown:
        raise ConfigurationError(
            f"unknown engines {unknown}; available: {list(EXTENDED_ENGINES)}"
        )
    if "behavioral" in engines and not reorder:
        raise ConfigurationError(
            "the behavioural engine only supports reorder=True; drop it "
            "from `engines` for the naive-order differential"
        )
    spike_trains = np.asarray(spike_trains, dtype=np.float64)
    results: Dict[str, RuntimeResult] = {}
    for engine in engines:
        if engine == "per-sample":
            runtime = SushiRuntime(
                chip_n=chip_n, sc_per_npe=sc_per_npe,
                engine="fast", reorder=reorder, faults=faults,
                plan_cache=plan_cache,
            )
            results[engine] = runtime.infer_per_sample(network, spike_trains)
        elif engine == "legacy-fast":
            runtime = SushiRuntime(
                chip_n=chip_n, sc_per_npe=sc_per_npe,
                engine="fast", reorder=reorder, faults=faults,
                use_compiled=False, plan_cache=plan_cache,
            )
            results[engine] = runtime.infer(network, spike_trains)
        else:
            runtime = SushiRuntime(
                chip_n=chip_n, sc_per_npe=sc_per_npe,
                engine=engine, reorder=reorder, faults=faults,
                plan_cache=plan_cache,
            )
            results[engine] = runtime.infer(network, spike_trains)
    baseline = engines[0]
    comparisons = [
        _compare(baseline, results[baseline], other, results[other])
        for other in engines[1:]
    ]
    software_agreement = None
    if check_software and reorder:
        steps = spike_trains.shape[0]
        reference = np.stack(
            [network.forward_step(spike_trains[t]) for t in range(steps)]
        ) if steps else np.zeros_like(results[baseline].output_raster)
        software_agreement = bool(
            np.array_equal(results[baseline].output_raster, reference)
        )
    return DifferentialReport(
        baseline=baseline,
        comparisons=comparisons,
        results=results,
        software_agreement=software_agreement,
        samples=int(spike_trains.shape[1]),
        steps=int(spike_trains.shape[0]),
    )


def run_compiled_differential(
    seed: int = 0,
    sizes: Sequence[int] = (10, 8, 6),
    steps: int = 3,
    batch: int = 8,
    chip_n: int = 4,
    sc_per_npe: int = 8,
    fault_probability: float = 0.05,
) -> Dict:
    """Compiled-path acceptance sweep: engines x reorder flags x faults.

    One seeded workload is pushed through three differential
    configurations:

    * ``"reorder"`` -- all of :data:`EXTENDED_ENGINES` under reordered
      bucketing (compiled ``fast`` vs the legacy ``_plan_for`` kernel vs
      per-sample vs the behavioural chip, plus the software reference);
    * ``"naive-order"`` -- compiled vs legacy vs per-sample with
      ``reorder=False`` (the behavioural engine is reorder-only);
    * ``"faulted"`` -- all engines again with a ``pulse_drop``
      :class:`~repro.rsfq.faults.FaultModel` attached, exercising the
      self-healing loop on top of the compiled kernel.

    Beyond raster equality the sweep also pins the *counters*: the
    compiled ``fast`` engine must report the same spurious-decision,
    synaptic-operation and crosspoint-reload totals as ``legacy-fast``
    in every configuration (they are the same computation, so the
    bookkeeping must agree bit-for-bit too).

    Returns a dict with the per-sweep :class:`DifferentialReport`\\ s, the
    counter verdicts and an overall ``passed`` flag (the compiled-path
    acceptance artefact; see ``tests/harness/test_differential.py``).
    """
    from repro.rsfq.faults import FaultModel

    rng = np.random.default_rng(seed)
    network = random_binarized_network(
        rng, sizes=sizes, sc_per_npe=sc_per_npe
    )
    trains = random_spike_trains(rng, steps, batch, sizes[0])
    sweeps = {
        "reorder": dict(engines=EXTENDED_ENGINES, reorder=True,
                        faults=None),
        "naive-order": dict(
            engines=("fast", "legacy-fast", "per-sample"),
            reorder=False, faults=None,
        ),
        "faulted": dict(
            engines=EXTENDED_ENGINES, reorder=True,
            faults=FaultModel.single(
                "pulse_drop", fault_probability, seed=seed + 1
            ),
        ),
    }
    reports: Dict[str, DifferentialReport] = {}
    counters_equal: Dict[str, bool] = {}
    for name, cfg in sweeps.items():
        report = run_differential(
            network, trains, chip_n=chip_n, sc_per_npe=sc_per_npe,
            **cfg,
        )
        reports[name] = report
        fast = report.results["fast"]
        legacy = report.results["legacy-fast"]
        counters_equal[name] = (
            fast.spurious_decisions == legacy.spurious_decisions
            and fast.synaptic_ops == legacy.synaptic_ops
            and fast.reload_events == legacy.reload_events
        )
    passed = (
        all(r.passed for r in reports.values())
        and all(counters_equal.values())
    )
    return {
        "reports": reports,
        "counters_equal": counters_equal,
        "passed": passed,
    }


# ---------------------------------------------------------------------------
# Gate-level cross-check (miniature Fig. 16)
# ---------------------------------------------------------------------------

def gate_level_step_outputs(
    weights: np.ndarray,
    threshold: int,
    input_spikes: np.ndarray,
    sc_per_npe: int = 6,
    jitter_ps: float = 0.0,
    seed: Optional[int] = None,
    engine: str = "sequential",
    parts: int = 2,
) -> List[int]:
    """Per-step spike decisions of one neuron on the gate-level chip.

    ``weights`` is the neuron's (in,) signed weight vector, ``input_spikes``
    a (T, in) binary matrix.  Each step streams the active inhibitory then
    excitatory synapses through a 1x1 gate-level chip (NPE0 relaying into
    NPE1), exactly like the Fig. 16 waveform path.  ``engine="parallel"``
    runs the same protocol on the partitioned
    :class:`~repro.rsfq.parallel.ParallelSimulator`.
    """
    from repro.neuro.chip import ChipConfig, ChipDriver, GateLevelChip
    from repro.neuro.state_controller import Polarity

    weights = np.asarray(weights).astype(np.int64)
    input_spikes = np.asarray(input_spikes)
    if weights.ndim != 1 or input_spikes.ndim != 2 \
            or input_spikes.shape[1] != weights.shape[0]:
        raise ConfigurationError(
            "weights must be (in,) and input_spikes (T, in)"
        )
    chip = GateLevelChip(ChipConfig(n=1, sc_per_npe=sc_per_npe))
    if engine == "parallel":
        sim = chip.parallel_simulator(
            parts=parts, jitter_ps=jitter_ps, seed=seed
        )
    elif engine == "sequential":
        sim = chip.simulator(jitter_ps=jitter_ps, seed=seed)
    else:
        raise ConfigurationError(
            f"unknown engine '{engine}'; use 'sequential' or 'parallel'"
        )
    driver = ChipDriver(chip, sim)
    outputs: List[int] = []
    for t in range(input_spikes.shape[0]):
        driver.begin_timestep([int(threshold)])
        before = len(chip.fire_times(0))
        for polarity, sign in ((Polarity.SET0, -1), (Polarity.SET1, 1)):
            for axon in range(weights.shape[0]):
                strength = int(abs(weights[axon]))
                if input_spikes[t, axon] and np.sign(weights[axon]) == sign:
                    for _ in range(strength):
                        driver.configure_weights([[1]])
                        driver.run_pass(polarity, [True])
        outputs.append(1 if len(chip.fire_times(0)) > before else 0)
    return outputs


def run_gate_level_differential(
    seed: int = 0,
    in_features: int = 4,
    steps: int = 3,
    sc_per_npe: int = 5,
) -> Dict:
    """Random single-neuron workload: gate level vs behavioural/fast.

    Small by construction -- the gate-level chip simulates every SFQ pulse
    -- but it closes the chain: software == fast == behavioural ==
    gate-level RSFQ cells.  Returns a dict with per-path outputs and an
    ``equivalent`` flag.
    """
    rng = np.random.default_rng(seed)
    capacity = 1 << sc_per_npe
    network = random_binarized_network(
        rng, sizes=(in_features, 1), sc_per_npe=sc_per_npe
    )
    layer = network.layers[0]
    weights = layer.signed_weights[:, 0]
    threshold = int(layer.thresholds[0])
    trains = random_spike_trains(rng, steps, 1, in_features, rate=0.6)

    fast = SushiRuntime(chip_n=1, sc_per_npe=sc_per_npe).infer(
        network, trains
    )
    behavioral = SushiRuntime(
        chip_n=1, sc_per_npe=sc_per_npe, engine="behavioral"
    ).infer(network, trains)
    gate = gate_level_step_outputs(
        weights, threshold, trains[:, 0, :], sc_per_npe=sc_per_npe
    )
    fast_steps = [int(v) for v in fast.output_raster[:, 0, 0]]
    behavioral_steps = [int(v) for v in behavioral.output_raster[:, 0, 0]]
    software_steps = [
        int(network.forward_step(trains[t])[0, 0]) for t in range(steps)
    ]
    equivalent = (
        fast_steps == behavioral_steps == gate == software_steps
    )
    return {
        "weights": weights.tolist(),
        "threshold": threshold,
        "capacity": capacity,
        "fast": fast_steps,
        "behavioral": behavioral_steps,
        "gate_level": gate,
        "software": software_steps,
        "equivalent": equivalent,
    }


#: Engines understood by :func:`run_parallel_gate_differential`.
GATE_ENGINES = ("sequential", "parallel", "traced")


def run_parallel_gate_differential(
    seed: int = 0,
    n: int = 2,
    sc_per_npe: int = 3,
    passes: int = 4,
    parts: int = 4,
    jitter_ps: float = 0.0,
    executor: str = "serial",
    faults=None,
    engines: Sequence[str] = ("sequential", "parallel"),
) -> Dict:
    """Sequential vs partitioned gate-level engine on one random workload.

    Drives two freshly-built ``n x n`` :class:`GateLevelChip` instances --
    one under the sequential :class:`~repro.rsfq.simulator.Simulator`
    (``jitter_mode="wire"`` so jitter draws are interleaving-independent),
    one under :class:`~repro.rsfq.parallel.ParallelSimulator` cut along
    the mesh -- through an identical seeded protocol (random thresholds,
    weights and spike patterns), then compares the physics bit-for-bit:
    per-channel pulse times, violation counts, margin tables, per-column
    fire times and final simulation time.

    ``faults`` optionally attaches a
    :class:`~repro.rsfq.faults.FaultModel` to *both* engines: the verdict
    then additionally requires the canonical injection logs to compare
    equal (the fault-determinism acceptance criterion; see
    ``docs/FAULTS.md``).

    ``engines`` selects which candidates run against the sequential
    baseline.  ``"sequential"`` is mandatory; add ``"traced"`` to replay
    the captured stimulus schedule through
    :class:`~repro.rsfq.trace.TraceEngine` on a third fresh chip and fold
    ``traced_*`` verdicts into ``equivalent`` (faulted or divergent runs
    may legitimately report ``traced_mode == "fallback"``, but the
    physics must still match bit-for-bit; see ``docs/ENGINE.md``).

    Returns a dict with an ``equivalent`` flag and the per-aspect
    verdicts (the parallel acceptance artefact; see
    ``tests/rsfq/test_parallel.py``).
    """
    from repro.neuro.chip import ChipConfig, ChipDriver, GateLevelChip
    from repro.neuro.state_controller import Polarity
    from repro.rsfq.parallel import ParallelSimulator
    from repro.rsfq.simulator import Simulator
    from repro.rsfq.trace import ScheduleRecorder, TraceEngine
    from repro.rsfq.waveform import PulseTrace

    unknown = [e for e in engines if e not in GATE_ENGINES]
    if unknown:
        raise ConfigurationError(
            f"unknown engines {unknown}; available: {list(GATE_ENGINES)}"
        )
    if "sequential" not in engines:
        raise ConfigurationError(
            "the sequential engine is the baseline and cannot be dropped"
        )

    rng = np.random.default_rng(seed)
    capacity = 1 << sc_per_npe
    thresholds = [int(rng.integers(1, capacity)) for _ in range(n)]
    weight_sets = [
        [[int(rng.integers(0, 2)) for _ in range(n)] for _ in range(n)]
        for _ in range(passes)
    ]
    spike_sets = [
        [bool(rng.integers(0, 2)) for _ in range(n)] for _ in range(passes)
    ]
    polarities = [
        Polarity.SET0 if rng.random() < 0.3 else Polarity.SET1
        for _ in range(passes)
    ]

    def execute(make_sim):
        chip = GateLevelChip(ChipConfig(n=n, sc_per_npe=sc_per_npe))
        trace = PulseTrace()
        sim = make_sim(chip, trace)
        driver = ChipDriver(chip, sim)
        driver.begin_timestep(thresholds)
        for strengths, spikes, polarity in zip(
            weight_sets, spike_sets, polarities
        ):
            driver.configure_weights(strengths)
            driver.run_pass(polarity, spikes)
        fires = [list(chip.fire_times(j)) for j in range(n)]
        return sim, trace, fires

    # The sequential baseline runs as a ScheduleRecorder when the traced
    # candidate is requested: the recorder is a plain Simulator that also
    # logs every scheduled stimulus, so the traced leg can re-execute the
    # exact closed-loop schedule open-loop.
    seq_cls = ScheduleRecorder if "traced" in engines else Simulator
    seq_sim, seq_trace, seq_fires = execute(
        lambda chip, trace: seq_cls(
            chip.net, trace=trace, jitter_ps=jitter_ps, seed=seed,
            jitter_mode="wire", faults=faults,
        )
    )

    verdict = {
        "events": (seq_sim.events_processed,),
        "injections": sum(seq_sim.fault_counts().values()),
        "equivalent": True,
    }

    if "parallel" in engines:
        par_sim, par_trace, par_fires = execute(
            lambda chip, trace: ParallelSimulator(
                chip.net, parts=parts, hints=chip.partition_hints(),
                trace=trace, jitter_ps=jitter_ps, seed=seed,
                executor=executor, faults=faults,
            )
        )
        channels = set(seq_trace.channels()) | set(par_trace.channels())
        channels_equal = all(
            seq_trace.times(*channel) == par_trace.times(*channel)
            for channel in channels
        )
        verdict.update({
            "partitions": par_sim.plan.n_partitions,
            "rounds": par_sim.rounds,
            "cut_wires": len(par_sim.plan.cut_wires),
            "events": (seq_sim.events_processed, par_sim.events_processed),
            "channels_equal": channels_equal,
            "log_equal": seq_trace.events() == par_trace.events(),
            "violations_equal": (
                len(seq_sim.violations) == len(par_sim.violations)
            ),
            "margins_equal": seq_sim.margins == par_sim.margins,
            "fires_equal": seq_fires == par_fires,
            "now_equal": seq_sim.now == par_sim.now,
            "injection_log_equal": (
                seq_sim.injection_log() == par_sim.injection_log()
                and seq_sim.fault_counts() == par_sim.fault_counts()
            ),
        })
        verdict["equivalent"] = (
            channels_equal
            and verdict["violations_equal"]
            and verdict["margins_equal"]
            and verdict["fires_equal"]
            and verdict["now_equal"]
            and verdict["injection_log_equal"]
            and seq_sim.events_processed == par_sim.events_processed
        )

    if "traced" in engines:
        chip_t = GateLevelChip(ChipConfig(n=n, sc_per_npe=sc_per_npe))
        engine = TraceEngine(chip_t.net)
        episode = engine.run_episode(
            seq_sim.captured_segments(),
            jitter_ps=jitter_ps, seed=seed, jitter_mode="wire",
            faults=faults, want_trace=True,
        )
        traced_fires = [list(chip_t.fire_times(j)) for j in range(n)]
        t_trace = episode.trace
        t_channels = set(seq_trace.channels()) | set(t_trace.channels())
        t_channels_equal = all(
            seq_trace.times(*channel) == t_trace.times(*channel)
            for channel in t_channels
        )
        verdict.update({
            "traced_mode": episode.mode,
            "traced_events": episode.events,
            "traced_channels_equal": t_channels_equal,
            "traced_violations_equal": (
                len(seq_sim.violations) == len(episode.violations)
            ),
            "traced_margins_equal": (
                dict(seq_sim.margins) == episode.margins
            ),
            "traced_fires_equal": seq_fires == traced_fires,
            "traced_now_equal": seq_sim.now == episode.final_time_ps,
            "traced_events_equal": (
                seq_sim.events_processed == episode.events
            ),
            "traced_injection_log_equal": (
                seq_sim.injection_log() == episode.injection_log
                and seq_sim.fault_counts() == episode.fault_counts
            ),
        })
        verdict["traced_equal"] = (
            t_channels_equal
            and verdict["traced_violations_equal"]
            and verdict["traced_margins_equal"]
            and verdict["traced_fires_equal"]
            and verdict["traced_now_equal"]
            and verdict["traced_events_equal"]
            and verdict["traced_injection_log_equal"]
        )
        verdict["equivalent"] = (
            verdict["equivalent"] and verdict["traced_equal"]
        )
    return verdict


def differential_snapshot(
    seed: int = 0,
    sizes: Sequence[int] = (10, 8, 6),
    steps: int = 4,
    batch: int = 12,
    chip_n: int = 4,
    sc_per_npe: int = 8,
) -> MetricSnapshot:
    """One seeded differential run folded into a regression snapshot.

    Save it once as a baseline, re-run and :func:`repro.harness.regression.
    compare` in CI: any drift in equivalence or workload totals fails the
    gate.
    """
    rng = np.random.default_rng(seed)
    network = random_binarized_network(
        rng, sizes=sizes, sc_per_npe=sc_per_npe
    )
    trains = random_spike_trains(rng, steps, batch, sizes[0])
    report = run_differential(
        network, trains, chip_n=chip_n, sc_per_npe=sc_per_npe
    )
    return report.to_snapshot(f"differential-seed{seed}")
