"""Gateway wire protocol: minimal HTTP/1.1 framing + the JSON schema.

The gateway speaks plain HTTP/1.1 over asyncio streams -- no web
framework, no third-party dependency, just enough of RFC 9112 to serve
JSON to load balancers and load generators: request-line + headers +
``Content-Length`` bodies, keep-alive by default, explicit
``Connection: close`` honoured.  Chunked transfer encoding is *not*
implemented (requests carrying it are rejected with ``411``).

Every error the gateway can produce is **typed**: a JSON body of schema
``repro.gateway.error/v1`` carrying a stable machine-readable ``code``
(see :data:`ERROR_CODES`) next to the human-readable message, so load
generators and clients can assert on semantics rather than prose.

The inference request schema (``POST /infer``)::

    {
      "spike_train": [[0, 1, ...], ...],   # (T, in_features) 0/1 rows
      "deadline_ms": 50.0                   # optional queueing bound
    }

and the response schema ``repro.gateway.infer/v1``::

    {
      "schema": "repro.gateway.infer/v1",
      "prediction": 3,
      "rates": [...],                       # (classes,) mean spike rates
      "latency_ms": 1.92,                   # server-side submit->answer
      "batch_size": 4,
      "steps": 24,
      "tenant": "tenant-a"
    }

Parsing raises :class:`ProtocolError` with the matching HTTP status --
the server layer turns it into a typed error response mechanically.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

ERROR_SCHEMA = "repro.gateway.error/v1"
INFER_SCHEMA = "repro.gateway.infer/v1"

#: Stable machine-readable error codes (asserted by tests and loadgen).
ERROR_CODES = (
    "bad_request",        # malformed HTTP or JSON
    "invalid_train",      # spike_train missing / wrong shape / not 0-1
    "invalid_deadline",   # deadline_ms not a positive number
    "missing_api_key",    # no X-API-Key header
    "invalid_api_key",    # unknown X-API-Key
    "not_found",          # unknown path
    "method_not_allowed",  # known path, wrong verb
    "length_required",    # no Content-Length (or chunked) on POST
    "payload_too_large",  # body over the gateway bound
    "rate_limited",       # tenant token bucket empty
    "queue_full",         # admission control: backend queue over limit
    "breaker_open",       # admission control: pool breaker is open
    "overloaded",         # admission control: low-priority shed early
    "not_ready",          # backend draining / not accepting
    "deadline_exceeded",  # request expired while queued (504)
    "internal",           # unexpected backend failure
)

#: Request header carrying the client's exactly-once retry token
#: (headers are normalised to lowercase by :func:`read_request`).
IDEMPOTENCY_KEY_HEADER = "idempotency-key"

#: Response header marking an answer served from the idempotency
#: ledger instead of a fresh backend compute.
REPLAY_HEADER = "X-Idempotent-Replay"

_REASONS = {
    200: "OK", 400: "Bad Request", 401: "Unauthorized",
    404: "Not Found", 405: "Method Not Allowed", 411: "Length Required",
    413: "Payload Too Large", 429: "Too Many Requests",
    500: "Internal Server Error", 503: "Service Unavailable",
    504: "Gateway Timeout",
}

#: Hard bounds on the HTTP frame (pre-auth, so deliberately tight).
MAX_HEADER_LINES = 64
MAX_LINE_BYTES = 8192
DEFAULT_MAX_BODY_BYTES = 4 * 1024 * 1024


class ProtocolError(Exception):
    """A request the gateway refuses, as (status, code, message).

    ``retry_after_s`` (optional) is the back-off hint the server layer
    renders as a ``Retry-After`` header on 429/503 rejections --
    derived from the tenant bucket's refill time or the breaker's
    remaining cooldown.
    """

    def __init__(self, status: int, code: str, message: str,
                 retry_after_s: Optional[float] = None):
        if code not in ERROR_CODES:
            raise ValueError(f"unknown error code {code!r}")
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message
        self.retry_after_s = retry_after_s


@dataclass
class HttpRequest:
    """One parsed HTTP/1.1 request."""

    method: str
    path: str
    query: str
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "keep-alive").lower() != "close"


async def read_request(
    reader: asyncio.StreamReader,
    max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
) -> Optional[HttpRequest]:
    """Read one HTTP request off the stream.

    Returns ``None`` on a clean EOF (client closed a keep-alive
    connection between requests); raises :class:`ProtocolError` on a
    malformed or over-limit frame.
    """
    try:
        line = await reader.readline()
    except (ValueError, asyncio.LimitOverrunError):
        raise ProtocolError(400, "bad_request", "request line too long")
    if not line:
        return None
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(400, "bad_request", "request line too long")
    parts = line.decode("latin-1").strip().split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/"):
        raise ProtocolError(400, "bad_request", "malformed request line")
    method, target, _version = parts
    path, _, query = target.partition("?")

    headers: Dict[str, str] = {}
    for _ in range(MAX_HEADER_LINES + 1):
        try:
            raw = await reader.readline()
        except (ValueError, asyncio.LimitOverrunError):
            raise ProtocolError(400, "bad_request", "header line too long")
        if raw in (b"\r\n", b"\n"):
            break
        if not raw:
            raise ProtocolError(400, "bad_request",
                                "connection closed mid-headers")
        if len(raw) > MAX_LINE_BYTES:
            raise ProtocolError(400, "bad_request", "header line too long")
        name, sep, value = raw.decode("latin-1").partition(":")
        if not sep:
            raise ProtocolError(400, "bad_request",
                                f"malformed header {name.strip()!r}")
        headers[name.strip().lower()] = value.strip()
    else:
        raise ProtocolError(400, "bad_request", "too many headers")

    body = b""
    if "transfer-encoding" in headers:
        raise ProtocolError(411, "length_required",
                            "chunked transfer encoding is not supported")
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError:
            raise ProtocolError(400, "bad_request",
                                "malformed Content-Length")
        if length < 0:
            raise ProtocolError(400, "bad_request",
                                "malformed Content-Length")
        if length > max_body_bytes:
            raise ProtocolError(
                413, "payload_too_large",
                f"body of {length} bytes exceeds the "
                f"{max_body_bytes}-byte gateway bound",
            )
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise ProtocolError(400, "bad_request",
                                "connection closed mid-body")
    elif method == "POST":
        raise ProtocolError(411, "length_required",
                            "POST requires Content-Length")
    return HttpRequest(method=method, path=path, query=query,
                       headers=headers, body=body)


def render_response(
    status: int,
    body: bytes,
    *,
    content_type: str = "application/json",
    keep_alive: bool = True,
    extra_headers: Tuple[Tuple[str, str], ...] = (),
) -> bytes:
    """Serialise one HTTP/1.1 response frame."""
    reason = _REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    lines.extend(f"{name}: {value}" for name, value in extra_headers)
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    return head + body


def json_body(payload: Dict) -> bytes:
    return json.dumps(payload, sort_keys=True).encode("utf-8")


def error_body(code: str, message: str, **details) -> bytes:
    """The typed error payload every non-2xx response carries."""
    if code not in ERROR_CODES:
        raise ValueError(f"unknown error code {code!r}")
    payload: Dict = {
        "schema": ERROR_SCHEMA,
        "error": {"code": code, "message": message},
    }
    if details:
        payload["error"]["details"] = details
    return json_body(payload)


@dataclass(frozen=True)
class InferRequest:
    """A validated ``POST /infer`` payload."""

    spike_train: np.ndarray  # (T, in_features) float64 of {0, 1}
    deadline_ms: Optional[float]


def parse_infer_request(body: bytes, in_features: int) -> InferRequest:
    """Validate the JSON body of ``POST /infer``.

    Raises :class:`ProtocolError` (always a 400) with code
    ``bad_request`` / ``invalid_train`` / ``invalid_deadline``.
    """
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(400, "bad_request", f"body is not JSON: {exc}")
    if not isinstance(payload, dict):
        raise ProtocolError(400, "bad_request",
                            "body must be a JSON object")
    if "spike_train" not in payload:
        raise ProtocolError(400, "invalid_train",
                            "missing required field 'spike_train'")
    try:
        train = np.asarray(payload["spike_train"], dtype=np.float64)
    except (TypeError, ValueError):
        raise ProtocolError(400, "invalid_train",
                            "spike_train must be a numeric 2-D array")
    if train.ndim != 2 or train.shape[0] < 1:
        raise ProtocolError(
            400, "invalid_train",
            f"spike_train must be (T, in_features); got shape "
            f"{train.shape}",
        )
    if train.shape[1] != in_features:
        raise ProtocolError(
            400, "invalid_train",
            f"spike width {train.shape[1]} != served input {in_features}",
        )
    if not np.isin(train, (0.0, 1.0)).all():
        raise ProtocolError(400, "invalid_train",
                            "spike_train entries must be 0 or 1")
    deadline_ms = payload.get("deadline_ms")
    if deadline_ms is not None:
        if not isinstance(deadline_ms, (int, float)) \
                or isinstance(deadline_ms, bool) or deadline_ms <= 0:
            raise ProtocolError(400, "invalid_deadline",
                                "deadline_ms must be a positive number")
        deadline_ms = float(deadline_ms)
    return InferRequest(spike_train=train, deadline_ms=deadline_ms)


def infer_response_body(result, tenant: str) -> bytes:
    """Serialise a :class:`~repro.serve.server.ServeResult`."""
    return json_body({
        "schema": INFER_SCHEMA,
        "prediction": int(result.prediction),
        "rates": [float(r) for r in result.rates],
        "latency_ms": round(float(result.latency_ms), 3),
        "batch_size": int(result.batch_size),
        "steps": int(result.steps),
        "tenant": tenant,
    })
