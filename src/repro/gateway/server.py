"""The asyncio HTTP/JSON gateway in front of :class:`InferenceServer`.

This is the repo's network edge: a stdlib-only (``asyncio`` streams +
hand-rolled HTTP/1.1, see :mod:`repro.gateway.protocol`) service that
turns the in-process micro-batching server into something a load
balancer can front.  One event loop accepts connections; ``/infer``
requests flow auth -> rate limit -> admission -> validate -> submit,
and the resulting :class:`concurrent.futures.Future` is awaited via
``asyncio.wrap_future`` so thousands of in-flight requests cost one
coroutine each, never a thread.

Endpoints:

========  ======  ====================================================
path      method  behaviour
========  ======  ====================================================
/infer    POST    authenticated inference; 200 / 400 / 401 / 413 /
                  429 (rate limit) / 503 (admission) / 504 (deadline)
/healthz  GET     full :meth:`InferenceServer.health` JSON (always
                  200 while the gateway is up -- liveness)
/readyz   GET     200 when ready, 503 (``not_ready``) otherwise --
                  the load-balancer admission check
/metrics  GET     Prometheus text exposition: backend ``ServerStats``
                  families + gateway HTTP counters
/drain    POST    authenticated: stop intake, wait for queued work
                  (runs in an executor; the loop stays responsive)
========  ======  ====================================================

Error mapping (the contract the acceptance tests pin): over-limit
tenants get **429** ``rate_limited``; an open pool breaker or an
over-deep queue gets **503** ``breaker_open`` / ``queue_full``; a
low-priority tenant past the soft queue watermark gets **503**
``overloaded`` (shed-before-queue); a request whose ``deadline_ms``
lapses while queued gets **504** ``deadline_exceeded``.  Every 429/503
carries a ``Retry-After`` header derived from the bucket refill or
breaker cooldown.  Every rejection increments a labelled
``sushi_gateway_rejections_total`` counter (sheds additionally land in
``sushi_shed_requests_total`` by code and priority), so ``/metrics``
tells the same story the status codes do.

Exactly-once retries: an ``Idempotency-Key`` request header scopes the
request into the per-tenant :class:`IdempotencyLedger`.  A retried or
hedged request whose original was already *accepted* (submitted to the
backend) awaits / replays the recorded outcome instead of computing
twice, and the response is marked ``X-Idempotent-Replay: true``.
Pre-admission rejections (401/429/503) are never recorded, so a
retry after a shed gets a fresh chance.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import math
import queue as queue_module
import threading
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError, DeadlineExceededError
from repro.gateway.auth import ApiKeyAuthenticator, demo_tenants
from repro.gateway.protocol import (
    DEFAULT_MAX_BODY_BYTES,
    IDEMPOTENCY_KEY_HEADER,
    REPLAY_HEADER,
    HttpRequest,
    ProtocolError,
    error_body,
    infer_response_body,
    json_body,
    parse_infer_request,
    read_request,
    render_response,
)
from repro.gateway.ratelimit import AdmissionController, RateLimiter
from repro.serve.metrics import (
    MetricFamily,
    client_counter_families,
    render_prometheus,
    server_stats_families,
    shed_families,
)

GATEWAY_SCHEMA = "repro.gateway/v1"

#: Paths the router knows, with their allowed methods.
ROUTES = {
    "/infer": ("POST",),
    "/healthz": ("GET",),
    "/readyz": ("GET",),
    "/metrics": ("GET",),
    "/drain": ("POST",),
}


class GatewayMetrics:
    """Thread-safe HTTP-layer counters behind ``/metrics``.

    ``requests`` counts by ``(path, status)``; ``rejections`` counts by
    typed error code (the load-shedding story); ``tenant_requests``
    counts authenticated ``/infer`` calls by ``(tenant, status)`` so
    per-tenant skew is observable.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self.requests: Dict[Tuple[str, int], int] = {}
        self.rejections: Dict[str, int] = {}
        self.tenant_requests: Dict[Tuple[str, int], int] = {}
        self.sheds: Dict[Tuple[str, int], int] = {}
        self.idempotent_replays: Dict[str, int] = {}
        self.connections = 0
        self.in_flight = 0

    def record(self, path: str, status: int,
               code: Optional[str] = None,
               tenant: Optional[str] = None) -> None:
        key = (path if path in ROUTES else "other", status)
        with self._lock:
            self.requests[key] = self.requests.get(key, 0) + 1
            if code is not None and status >= 400:
                self.rejections[code] = self.rejections.get(code, 0) + 1
            if tenant is not None:
                tkey = (tenant, status)
                self.tenant_requests[tkey] = (
                    self.tenant_requests.get(tkey, 0) + 1
                )

    def record_connection(self) -> None:
        with self._lock:
            self.connections += 1

    def record_shed(self, code: str, priority: int) -> None:
        key = (code, int(priority))
        with self._lock:
            self.sheds[key] = self.sheds.get(key, 0) + 1

    def record_replay(self, tenant: str) -> None:
        with self._lock:
            self.idempotent_replays[tenant] = (
                self.idempotent_replays.get(tenant, 0) + 1
            )

    def adjust_in_flight(self, delta: int) -> None:
        with self._lock:
            self.in_flight += delta

    def snapshot(self) -> Dict:
        with self._lock:
            return {
                "requests": dict(self.requests),
                "rejections": dict(self.rejections),
                "tenant_requests": dict(self.tenant_requests),
                "sheds": dict(self.sheds),
                "idempotent_replays": dict(self.idempotent_replays),
                "connections": self.connections,
                "in_flight": self.in_flight,
            }

    def families(self, namespace: str = "sushi") -> List[MetricFamily]:
        snap = self.snapshot()
        n = namespace
        return [
            (f"{n}_gateway_requests_total", "counter",
             "HTTP requests served, by path and status",
             [({"path": path, "status": str(status)}, count)
              for (path, status), count in sorted(snap["requests"].items())]
             or [(None, 0)]),
            (f"{n}_gateway_rejections_total", "counter",
             "Requests rejected, by typed error code",
             [({"code": code}, count)
              for code, count in sorted(snap["rejections"].items())]
             or [(None, 0)]),
            (f"{n}_gateway_tenant_requests_total", "counter",
             "Authenticated /infer requests, by tenant and status",
             [({"tenant": tenant, "status": str(status)}, count)
              for (tenant, status), count
              in sorted(snap["tenant_requests"].items())]
             or [(None, 0)]),
            (f"{n}_gateway_connections_total", "counter",
             "TCP connections accepted", [(None, snap["connections"])]),
            (f"{n}_gateway_in_flight", "gauge",
             "Requests currently being handled",
             [(None, snap["in_flight"])]),
            (f"{n}_gateway_idempotent_replays_total", "counter",
             "Responses replayed from the idempotency ledger, by tenant",
             [({"tenant": tenant}, count)
              for tenant, count
              in sorted(snap["idempotent_replays"].items())]
             or [(None, 0)]),
        ] + shed_families(snap["sheds"], namespace=n)


class IdempotencyLedger:
    """Per-tenant exactly-once bookkeeping for accepted ``/infer`` work.

    Keys are ``"<tenant>:<Idempotency-Key>"``; values are asyncio
    futures resolving to the recorded ``(status, body)``.  All access
    happens on the gateway's single event loop, so plain dict
    operations are race-free; the only concurrency is multiple
    handlers awaiting the same pending future (a hedge racing its
    primary), which is exactly the asyncio future contract.

    Lifecycle: an entry is created the moment the backend *accepts* a
    submit (``begin``), resolved in place on success (kept, LRU
    bounded by ``capacity``), and resolved-then-dropped on failure so
    a later retry gets a fresh compute instead of a replayed 5xx.
    """

    def __init__(self, capacity: int = 4096):
        if capacity < 1:
            raise ConfigurationError("capacity must be >= 1")
        self.capacity = capacity
        self._entries: "OrderedDict[str, asyncio.Future]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, key: str) -> Optional[asyncio.Future]:
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
        return entry

    def begin(self, key: str) -> asyncio.Future:
        entry = asyncio.get_running_loop().create_future()
        self._entries[key] = entry
        self._entries.move_to_end(key)
        self._evict()
        return entry

    def resolve_success(self, key: str, outcome: Tuple[int, bytes]) -> None:
        entry = self._entries.get(key)
        if entry is not None and not entry.done():
            entry.set_result(outcome)

    def resolve_failure(self, key: str, outcome: Tuple[int, bytes]) -> None:
        """Wake waiters with the failure, then forget the key: the
        request never produced an answer worth replaying, so the next
        retry earns a fresh compute."""
        entry = self._entries.pop(key, None)
        if entry is not None and not entry.done():
            entry.set_result(outcome)

    def _evict(self) -> None:
        while len(self._entries) > self.capacity:
            for key, entry in self._entries.items():
                if entry.done():
                    del self._entries[key]
                    break
            else:  # every entry still in flight: nothing evictable
                break


class Gateway:
    """The HTTP edge over one :class:`InferenceServer`.

    Args:
        server: A *started* :class:`~repro.serve.server.InferenceServer`
            (the gateway never starts or stops the backend except via
            ``/drain``).
        authenticator: Tenant credential store; defaults to the
            :func:`~repro.gateway.auth.demo_tenants` roster (CI smoke,
            quickstarts) -- production callers pass their own.
        rate_limiter: Per-tenant token buckets; a default
            :class:`RateLimiter` is built when omitted (inject one with
            a fake clock for tests).
        admission: Queue-depth/breaker admission; a default
            :class:`AdmissionController` over ``server`` when omitted.
        host / port: Bind address; port 0 picks an ephemeral port
            (read :attr:`port` after start).
        max_body_bytes: ``413`` bound on request bodies.
        submit_timeout_s: Bound on the (normally instant) backend
            enqueue; hitting it means the queue raced past admission
            control and is shed as ``queue_full``.

    Use :meth:`run_in_thread` / :meth:`close` (or the context manager)
    to drive the gateway from synchronous code -- tests, the load
    harness, the CI smoke; ``asyncio.run(gateway.serve_forever())``
    for the CLI.
    """

    def __init__(
        self,
        server,
        *,
        authenticator: Optional[ApiKeyAuthenticator] = None,
        rate_limiter: Optional[RateLimiter] = None,
        admission: Optional[AdmissionController] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
        submit_timeout_s: float = 1.0,
        idempotency_capacity: int = 4096,
    ):
        self.server = server
        self.authenticator = (
            authenticator if authenticator is not None
            else ApiKeyAuthenticator(demo_tenants())
        )
        self.rate_limiter = (rate_limiter if rate_limiter is not None
                             else RateLimiter())
        self.admission = (admission if admission is not None
                          else AdmissionController(server))
        self.host = host
        self.port = port
        self.max_body_bytes = max_body_bytes
        self.submit_timeout_s = submit_timeout_s
        self.metrics = GatewayMetrics()
        self.idempotency = IdempotencyLedger(capacity=idempotency_capacity)
        self._asyncio_server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._startup_error: Optional[BaseException] = None
        self._started = threading.Event()
        # writer -> request-in-flight; all mutations happen on the
        # event loop, so plain dict ops are race-free.
        self._connections: Dict[asyncio.StreamWriter, bool] = {}
        self._draining = False

    # -- asyncio lifecycle ---------------------------------------------------

    async def start(self) -> "Gateway":
        """Bind the listener on the current event loop."""
        self._loop = asyncio.get_running_loop()
        self._draining = False
        self._asyncio_server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._asyncio_server.sockets[0].getsockname()[1]
        return self

    async def stop(self) -> None:
        server, self._asyncio_server = self._asyncio_server, None
        if server is not None:
            server.close()
            await server.wait_closed()
        # Hang up idle keep-alive connections so their handlers exit
        # now; a handler mid-request keeps its socket, finishes
        # writing the response, then sees the drain flag and closes.
        self._draining = True
        for writer, busy in list(self._connections.items()):
            if not busy:
                writer.close()

    async def serve_forever(self) -> None:
        """Start (if needed) and serve until cancelled -- the CLI path."""
        if self._asyncio_server is None:
            await self.start()
        try:
            await self._asyncio_server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await self.stop()

    # -- thread-hosted lifecycle (tests, loadgen, CI smoke) ------------------

    def run_in_thread(self) -> "Gateway":
        """Boot the gateway on a dedicated event-loop thread and block
        until the listener is bound (or startup failed)."""
        if self._thread is not None:
            return self

        def _runner():
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            try:
                loop.run_until_complete(self.start())
            except BaseException as exc:  # startup failed: surface it
                self._startup_error = exc
                self._started.set()
                loop.close()
                return
            self._started.set()
            try:
                loop.run_forever()
                loop.run_until_complete(self.stop())
                # Let in-flight handler tasks unwind before closing.
                pending = asyncio.all_tasks(loop)
                if pending:
                    loop.run_until_complete(asyncio.wait(pending, timeout=5))
            finally:
                loop.close()

        self._thread = threading.Thread(
            target=_runner, name="sushi-gateway", daemon=True
        )
        self._thread.start()
        self._started.wait(timeout=30)
        if self._startup_error is not None:
            error, self._startup_error = self._startup_error, None
            self._thread.join(timeout=5)
            self._thread = None
            raise error
        if not self._started.is_set():
            raise ConfigurationError("gateway failed to start within 30s")
        return self

    def close(self) -> None:
        """Stop the thread-hosted gateway (idempotent)."""
        thread, self._thread = self._thread, None
        loop = self._loop
        if thread is None or loop is None:
            return
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=10)
        self._started.clear()

    def __enter__(self) -> "Gateway":
        return self.run_in_thread()

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def address(self) -> Tuple[str, int]:
        return (self.host, self.port)

    # -- connection handling -------------------------------------------------

    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        self.metrics.record_connection()
        self._connections[writer] = False
        try:
            while True:
                try:
                    request = await read_request(
                        reader, max_body_bytes=self.max_body_bytes
                    )
                except ProtocolError as exc:
                    # Framing is broken: answer once and hang up.
                    self.metrics.record("other", exc.status, code=exc.code)
                    writer.write(render_response(
                        exc.status, error_body(exc.code, exc.message),
                        keep_alive=False,
                    ))
                    await writer.drain()
                    break
                if request is None:  # clean EOF between requests
                    break
                self._connections[writer] = True
                status, body, content_type, extra = \
                    await self._dispatch(request)
                writer.write(render_response(
                    status, body,
                    content_type=content_type,
                    keep_alive=request.keep_alive,
                    extra_headers=extra,
                ))
                await writer.drain()
                self._connections[writer] = False
                if not request.keep_alive or self._draining:
                    break
        except (ConnectionResetError, BrokenPipeError, TimeoutError):
            pass  # client went away; nothing to answer
        finally:
            self._connections.pop(writer, None)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _dispatch(
        self, request: HttpRequest
    ) -> Tuple[int, bytes, str, Tuple[Tuple[str, str], ...]]:
        """Route one request; returns (status, body, content-type,
        extra response headers)."""
        self.metrics.adjust_in_flight(+1)
        try:
            path, method = request.path, request.method
            if path not in ROUTES:
                return self._reject(path, ProtocolError(
                    404, "not_found", f"no such endpoint {path!r}"
                ))
            if method not in ROUTES[path]:
                return self._reject(path, ProtocolError(
                    405, "method_not_allowed",
                    f"{path} accepts {'/'.join(ROUTES[path])}, not {method}",
                ))
            try:
                if path == "/healthz":
                    return self._handle_healthz()
                if path == "/readyz":
                    return self._handle_readyz()
                if path == "/metrics":
                    return self._handle_metrics()
                if path == "/drain":
                    return await self._handle_drain(request)
                return await self._handle_infer(request)
            except ProtocolError as exc:
                tenant = getattr(exc, "tenant_name", None)
                return self._reject(path, exc, tenant=tenant)
        finally:
            self.metrics.adjust_in_flight(-1)

    def _reject(
        self,
        path: str,
        exc: ProtocolError,
        tenant: Optional[str] = None,
    ) -> Tuple[int, bytes, str, Tuple[Tuple[str, str], ...]]:
        self.metrics.record(path, exc.status, code=exc.code, tenant=tenant)
        extra: Tuple[Tuple[str, str], ...] = ()
        if exc.retry_after_s is not None:
            seconds = max(1, int(math.ceil(exc.retry_after_s)))
            extra = (("Retry-After", str(seconds)),)
        return (exc.status, error_body(exc.code, exc.message),
                "application/json", extra)

    # -- endpoints -----------------------------------------------------------

    def _handle_healthz(self) -> Tuple[int, bytes, str, Tuple]:
        payload = {
            "schema": GATEWAY_SCHEMA,
            "gateway": {
                "host": self.host,
                "port": self.port,
                "in_flight": self.metrics.snapshot()["in_flight"],
            },
            "backend": self.server.health(),
        }
        self.metrics.record("/healthz", 200)
        return 200, json_body(payload), "application/json", ()

    def _handle_readyz(self) -> Tuple[int, bytes, str, Tuple]:
        if self.server.readiness():
            self.metrics.record("/readyz", 200)
            return 200, json_body({"ready": True}), "application/json", ()
        self.metrics.record("/readyz", 503, code="not_ready")
        return (503, error_body("not_ready", "backend is not accepting "
                                "requests"), "application/json",
                (("Retry-After", "1"),))

    def _handle_metrics(self) -> Tuple[int, bytes, str, Tuple]:
        from repro.explore.driver import explore_counter_families
        from repro.gateway.client import GLOBAL_CLIENT_COUNTERS
        from repro.rsfq.trace import trace_counter_families

        families = server_stats_families(self.server.stats())
        families.extend(self.metrics.families())
        families.extend(
            client_counter_families(GLOBAL_CLIENT_COUNTERS.snapshot())
        )
        # Cluster backends (ClusterServer) expose cluster-wide gauges
        # (nodes alive, per-node breaker state, rebalance count) via a
        # duck-typed hook; single-node backends simply lack it.
        cluster_families = getattr(self.server, "cluster_families", None)
        if callable(cluster_families):
            families.extend(cluster_families())
        families.extend(trace_counter_families())
        families.extend(explore_counter_families())
        text = render_prometheus(families)
        self.metrics.record("/metrics", 200)
        return (200, text.encode("utf-8"),
                "text/plain; version=0.0.4; charset=utf-8", ())

    async def _handle_drain(
        self, request: HttpRequest
    ) -> Tuple[int, bytes, str, Tuple]:
        tenant = self.authenticator.authenticate(request.headers)
        loop = asyncio.get_running_loop()
        drained = await loop.run_in_executor(
            None, lambda: self.server.drain(timeout=30.0)
        )
        self.metrics.record("/drain", 200, tenant=tenant.name)
        return (200, json_body({"drained": bool(drained)}),
                "application/json", ())

    async def _handle_infer(
        self, request: HttpRequest
    ) -> Tuple[int, bytes, str, Tuple]:
        tenant = self.authenticator.authenticate(request.headers)
        try:
            raw_key = request.headers.get(IDEMPOTENCY_KEY_HEADER)
            idem_key = f"{tenant.name}:{raw_key}" if raw_key else None
            if idem_key is not None:
                recorded = self.idempotency.lookup(idem_key)
                if recorded is not None:
                    # Exactly-once: the original was accepted; await /
                    # replay its outcome rather than computing again.
                    status, body = await asyncio.shield(recorded)
                    self.metrics.record_replay(tenant.name)
                    self.metrics.record("/infer", status,
                                        tenant=tenant.name)
                    return (status, body, "application/json",
                            ((REPLAY_HEADER, "true"),))
            if not self.rate_limiter.allow(tenant):
                self.metrics.record_shed("rate_limited", tenant.priority)
                raise ProtocolError(
                    429, "rate_limited",
                    f"tenant {tenant.name!r} is over its rate limit "
                    f"({tenant.rate_per_s}/s, burst {tenant.burst})",
                    retry_after_s=self.rate_limiter.retry_after_s(tenant),
                )
            reason = self.admission.check(priority=tenant.priority)
            if reason is not None:
                self.metrics.record_shed(reason, tenant.priority)
                raise ProtocolError(
                    503, reason,
                    f"request shed by admission control ({reason})",
                    retry_after_s=self.admission.retry_after_s(reason),
                )
            parsed = parse_infer_request(
                request.body, self.server.compiled.in_features
            )
            try:
                future = self.server.submit(
                    parsed.spike_train,
                    timeout=self.submit_timeout_s,
                    deadline_ms=parsed.deadline_ms,
                )
            except queue_module.Full:
                self.metrics.record_shed("queue_full", tenant.priority)
                raise ProtocolError(
                    503, "queue_full",
                    "backend queue filled while admitting this request",
                    retry_after_s=1.0,
                )
            except ConfigurationError as exc:
                # Post-admission validation inside submit() (e.g. the
                # backend stopped accepting between check and submit).
                if not self.server.readiness():
                    raise ProtocolError(503, "not_ready", str(exc),
                                        retry_after_s=1.0)
                raise ProtocolError(400, "bad_request", str(exc))
            # The backend accepted the work: from here on a retry with
            # the same key must *not* compute twice.  No await sits
            # between submit and begin, so the entry is visible before
            # any other handler can run.
            entry = (self.idempotency.begin(idem_key)
                     if idem_key is not None else None)
            try:
                result = await asyncio.wrap_future(future)
            except BaseException as exc:
                if isinstance(exc, DeadlineExceededError):
                    perr = ProtocolError(504, "deadline_exceeded",
                                         str(exc))
                elif isinstance(exc, concurrent.futures.CancelledError):
                    perr = ProtocolError(503, "not_ready",
                                         "request cancelled during "
                                         "shutdown", retry_after_s=1.0)
                elif isinstance(exc, Exception):
                    perr = ProtocolError(500, "internal",
                                         f"backend failure: {exc}")
                else:
                    raise
                if entry is not None:
                    # Wake hedges with the failure, then forget the key
                    # so a later retry earns a fresh compute.
                    self.idempotency.resolve_failure(
                        idem_key,
                        (perr.status,
                         error_body(perr.code, perr.message)),
                    )
                raise perr
            body = infer_response_body(result, tenant.name)
            if entry is not None:
                self.idempotency.resolve_success(idem_key, (200, body))
            self.metrics.record("/infer", 200, tenant=tenant.name)
            return 200, body, "application/json", ()
        except ProtocolError as exc:
            # Tag the rejection with the (authenticated) tenant so the
            # per-tenant counters tell the skew story.
            exc.tenant_name = tenant.name
            raise

    def __repr__(self) -> str:
        state = "bound" if self._asyncio_server is not None else "stopped"
        return (f"<Gateway {state} {self.host}:{self.port} "
                f"tenants={len(self.authenticator.tenants)}>")


def main(argv=None) -> int:
    """``python -m repro serve``: boot a gateway over the demo workload
    (or a tenants file of your own) and serve until interrupted."""
    import argparse

    from repro.gateway.ratelimit import AdmissionController

    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description="Serve the compiled demo network over HTTP/JSON "
                    "(see docs/GATEWAY.md for the endpoint contract).",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8787,
                        help="0 picks an ephemeral port")
    parser.add_argument("--workers", type=int, default=0,
                        help="shared-memory pool workers (0 = serial)")
    parser.add_argument("--nodes", type=int, default=0,
                        help="cluster pool nodes; > 0 serves through a "
                             "ClusterServer with --workers pool workers "
                             "per node (see docs/CLUSTER.md)")
    parser.add_argument("--autoscale", action="store_true",
                        help="with --nodes: let the autoscaler resize "
                             "the cluster between --nodes and "
                             "--max-nodes from the serving gauges")
    parser.add_argument("--max-nodes", type=int, default=8,
                        help="autoscaler ceiling (default 8)")
    parser.add_argument("--batch-max", type=int, default=64)
    parser.add_argument("--deadline-ms", type=float, default=2.0,
                        help="micro-batch coalescing window")
    parser.add_argument("--queue-limit", type=int, default=1024,
                        help="admission-control queue-depth bound")
    parser.add_argument("--tenants", default=None,
                        help="JSON tenants file (default: the demo "
                             "tenant set with well-known keys)")
    args = parser.parse_args(argv)

    import sys

    from repro.gateway.loadgen import _compile_workload
    from repro.serve import InferenceServer

    authenticator = (
        ApiKeyAuthenticator.from_json_file(args.tenants)
        if args.tenants else ApiKeyAuthenticator(demo_tenants())
    )
    if args.nodes > 0:
        from repro.cluster import AutoscalerConfig, ClusterServer

        autoscaler_config = None
        if args.autoscale:
            autoscaler_config = AutoscalerConfig(
                min_nodes=args.nodes, max_nodes=args.max_nodes
            )
        server = ClusterServer(
            compiled=_compile_workload(),
            batch_max=args.batch_max,
            deadline_ms=args.deadline_ms,
            nodes=args.nodes,
            node_workers=args.workers,
            autoscaler_config=autoscaler_config,
        )
    else:
        server = InferenceServer(
            compiled=_compile_workload(),
            batch_max=args.batch_max,
            deadline_ms=args.deadline_ms,
            workers=args.workers,
        )
    server.start()
    gateway = Gateway(
        server,
        authenticator=authenticator,
        admission=AdmissionController(server, queue_limit=args.queue_limit),
        host=args.host,
        port=args.port,
    )

    async def _serve() -> None:
        await gateway.start()
        print(f"gateway listening on http://{gateway.host}:{gateway.port} "
              f"(plan {server.compiled.fingerprint[:12]}, "
              f"{len(authenticator.tenants)} tenants)")
        sys.stdout.flush()
        await gateway.serve_forever()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
    return 0
