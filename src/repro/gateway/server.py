"""The asyncio HTTP/JSON gateway in front of :class:`InferenceServer`.

This is the repo's network edge: a stdlib-only (``asyncio`` streams +
hand-rolled HTTP/1.1, see :mod:`repro.gateway.protocol`) service that
turns the in-process micro-batching server into something a load
balancer can front.  One event loop accepts connections; ``/infer``
requests flow auth -> rate limit -> admission -> validate -> submit,
and the resulting :class:`concurrent.futures.Future` is awaited via
``asyncio.wrap_future`` so thousands of in-flight requests cost one
coroutine each, never a thread.

Endpoints:

========  ======  ====================================================
path      method  behaviour
========  ======  ====================================================
/infer    POST    authenticated inference; 200 / 400 / 401 / 413 /
                  429 (rate limit) / 503 (admission) / 504 (deadline)
/healthz  GET     full :meth:`InferenceServer.health` JSON (always
                  200 while the gateway is up -- liveness)
/readyz   GET     200 when ready, 503 (``not_ready``) otherwise --
                  the load-balancer admission check
/metrics  GET     Prometheus text exposition: backend ``ServerStats``
                  families + gateway HTTP counters
/drain    POST    authenticated: stop intake, wait for queued work
                  (runs in an executor; the loop stays responsive)
========  ======  ====================================================

Error mapping (the contract the acceptance tests pin): over-limit
tenants get **429** ``rate_limited``; an open pool breaker or an
over-deep queue gets **503** ``breaker_open`` / ``queue_full``; a
request whose ``deadline_ms`` lapses while queued gets **504**
``deadline_exceeded``.  Every rejection increments a labelled
``sushi_gateway_rejections_total`` counter, so ``/metrics`` tells the
same story the status codes do.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import queue as queue_module
import threading
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError, DeadlineExceededError
from repro.gateway.auth import ApiKeyAuthenticator, demo_tenants
from repro.gateway.protocol import (
    DEFAULT_MAX_BODY_BYTES,
    HttpRequest,
    ProtocolError,
    error_body,
    infer_response_body,
    json_body,
    parse_infer_request,
    read_request,
    render_response,
)
from repro.gateway.ratelimit import AdmissionController, RateLimiter
from repro.serve.metrics import (
    MetricFamily,
    render_prometheus,
    server_stats_families,
)

GATEWAY_SCHEMA = "repro.gateway/v1"

#: Paths the router knows, with their allowed methods.
ROUTES = {
    "/infer": ("POST",),
    "/healthz": ("GET",),
    "/readyz": ("GET",),
    "/metrics": ("GET",),
    "/drain": ("POST",),
}


class GatewayMetrics:
    """Thread-safe HTTP-layer counters behind ``/metrics``.

    ``requests`` counts by ``(path, status)``; ``rejections`` counts by
    typed error code (the load-shedding story); ``tenant_requests``
    counts authenticated ``/infer`` calls by ``(tenant, status)`` so
    per-tenant skew is observable.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self.requests: Dict[Tuple[str, int], int] = {}
        self.rejections: Dict[str, int] = {}
        self.tenant_requests: Dict[Tuple[str, int], int] = {}
        self.connections = 0
        self.in_flight = 0

    def record(self, path: str, status: int,
               code: Optional[str] = None,
               tenant: Optional[str] = None) -> None:
        key = (path if path in ROUTES else "other", status)
        with self._lock:
            self.requests[key] = self.requests.get(key, 0) + 1
            if code is not None and status >= 400:
                self.rejections[code] = self.rejections.get(code, 0) + 1
            if tenant is not None:
                tkey = (tenant, status)
                self.tenant_requests[tkey] = (
                    self.tenant_requests.get(tkey, 0) + 1
                )

    def record_connection(self) -> None:
        with self._lock:
            self.connections += 1

    def adjust_in_flight(self, delta: int) -> None:
        with self._lock:
            self.in_flight += delta

    def snapshot(self) -> Dict:
        with self._lock:
            return {
                "requests": dict(self.requests),
                "rejections": dict(self.rejections),
                "tenant_requests": dict(self.tenant_requests),
                "connections": self.connections,
                "in_flight": self.in_flight,
            }

    def families(self, namespace: str = "sushi") -> List[MetricFamily]:
        snap = self.snapshot()
        n = namespace
        return [
            (f"{n}_gateway_requests_total", "counter",
             "HTTP requests served, by path and status",
             [({"path": path, "status": str(status)}, count)
              for (path, status), count in sorted(snap["requests"].items())]
             or [(None, 0)]),
            (f"{n}_gateway_rejections_total", "counter",
             "Requests rejected, by typed error code",
             [({"code": code}, count)
              for code, count in sorted(snap["rejections"].items())]
             or [(None, 0)]),
            (f"{n}_gateway_tenant_requests_total", "counter",
             "Authenticated /infer requests, by tenant and status",
             [({"tenant": tenant, "status": str(status)}, count)
              for (tenant, status), count
              in sorted(snap["tenant_requests"].items())]
             or [(None, 0)]),
            (f"{n}_gateway_connections_total", "counter",
             "TCP connections accepted", [(None, snap["connections"])]),
            (f"{n}_gateway_in_flight", "gauge",
             "Requests currently being handled",
             [(None, snap["in_flight"])]),
        ]


class Gateway:
    """The HTTP edge over one :class:`InferenceServer`.

    Args:
        server: A *started* :class:`~repro.serve.server.InferenceServer`
            (the gateway never starts or stops the backend except via
            ``/drain``).
        authenticator: Tenant credential store; defaults to the
            :func:`~repro.gateway.auth.demo_tenants` roster (CI smoke,
            quickstarts) -- production callers pass their own.
        rate_limiter: Per-tenant token buckets; a default
            :class:`RateLimiter` is built when omitted (inject one with
            a fake clock for tests).
        admission: Queue-depth/breaker admission; a default
            :class:`AdmissionController` over ``server`` when omitted.
        host / port: Bind address; port 0 picks an ephemeral port
            (read :attr:`port` after start).
        max_body_bytes: ``413`` bound on request bodies.
        submit_timeout_s: Bound on the (normally instant) backend
            enqueue; hitting it means the queue raced past admission
            control and is shed as ``queue_full``.

    Use :meth:`run_in_thread` / :meth:`close` (or the context manager)
    to drive the gateway from synchronous code -- tests, the load
    harness, the CI smoke; ``asyncio.run(gateway.serve_forever())``
    for the CLI.
    """

    def __init__(
        self,
        server,
        *,
        authenticator: Optional[ApiKeyAuthenticator] = None,
        rate_limiter: Optional[RateLimiter] = None,
        admission: Optional[AdmissionController] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
        submit_timeout_s: float = 1.0,
    ):
        self.server = server
        self.authenticator = (
            authenticator if authenticator is not None
            else ApiKeyAuthenticator(demo_tenants())
        )
        self.rate_limiter = (rate_limiter if rate_limiter is not None
                             else RateLimiter())
        self.admission = (admission if admission is not None
                          else AdmissionController(server))
        self.host = host
        self.port = port
        self.max_body_bytes = max_body_bytes
        self.submit_timeout_s = submit_timeout_s
        self.metrics = GatewayMetrics()
        self._asyncio_server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._startup_error: Optional[BaseException] = None
        self._started = threading.Event()

    # -- asyncio lifecycle ---------------------------------------------------

    async def start(self) -> "Gateway":
        """Bind the listener on the current event loop."""
        self._loop = asyncio.get_running_loop()
        self._asyncio_server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._asyncio_server.sockets[0].getsockname()[1]
        return self

    async def stop(self) -> None:
        server, self._asyncio_server = self._asyncio_server, None
        if server is not None:
            server.close()
            await server.wait_closed()

    async def serve_forever(self) -> None:
        """Start (if needed) and serve until cancelled -- the CLI path."""
        if self._asyncio_server is None:
            await self.start()
        try:
            await self._asyncio_server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await self.stop()

    # -- thread-hosted lifecycle (tests, loadgen, CI smoke) ------------------

    def run_in_thread(self) -> "Gateway":
        """Boot the gateway on a dedicated event-loop thread and block
        until the listener is bound (or startup failed)."""
        if self._thread is not None:
            return self

        def _runner():
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            try:
                loop.run_until_complete(self.start())
            except BaseException as exc:  # startup failed: surface it
                self._startup_error = exc
                self._started.set()
                loop.close()
                return
            self._started.set()
            try:
                loop.run_forever()
                loop.run_until_complete(self.stop())
                # Let in-flight handler tasks unwind before closing.
                pending = asyncio.all_tasks(loop)
                if pending:
                    loop.run_until_complete(asyncio.wait(pending, timeout=5))
            finally:
                loop.close()

        self._thread = threading.Thread(
            target=_runner, name="sushi-gateway", daemon=True
        )
        self._thread.start()
        self._started.wait(timeout=30)
        if self._startup_error is not None:
            error, self._startup_error = self._startup_error, None
            self._thread.join(timeout=5)
            self._thread = None
            raise error
        if not self._started.is_set():
            raise ConfigurationError("gateway failed to start within 30s")
        return self

    def close(self) -> None:
        """Stop the thread-hosted gateway (idempotent)."""
        thread, self._thread = self._thread, None
        loop = self._loop
        if thread is None or loop is None:
            return
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=10)
        self._started.clear()

    def __enter__(self) -> "Gateway":
        return self.run_in_thread()

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def address(self) -> Tuple[str, int]:
        return (self.host, self.port)

    # -- connection handling -------------------------------------------------

    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        self.metrics.record_connection()
        try:
            while True:
                try:
                    request = await read_request(
                        reader, max_body_bytes=self.max_body_bytes
                    )
                except ProtocolError as exc:
                    # Framing is broken: answer once and hang up.
                    self.metrics.record("other", exc.status, code=exc.code)
                    writer.write(render_response(
                        exc.status, error_body(exc.code, exc.message),
                        keep_alive=False,
                    ))
                    await writer.drain()
                    break
                if request is None:  # clean EOF between requests
                    break
                status, body, content_type = await self._dispatch(request)
                writer.write(render_response(
                    status, body,
                    content_type=content_type,
                    keep_alive=request.keep_alive,
                ))
                await writer.drain()
                if not request.keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError, TimeoutError):
            pass  # client went away; nothing to answer
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _dispatch(
        self, request: HttpRequest
    ) -> Tuple[int, bytes, str]:
        """Route one request; returns (status, body, content-type)."""
        self.metrics.adjust_in_flight(+1)
        try:
            path, method = request.path, request.method
            if path not in ROUTES:
                return self._reject(path, ProtocolError(
                    404, "not_found", f"no such endpoint {path!r}"
                ))
            if method not in ROUTES[path]:
                return self._reject(path, ProtocolError(
                    405, "method_not_allowed",
                    f"{path} accepts {'/'.join(ROUTES[path])}, not {method}",
                ))
            try:
                if path == "/healthz":
                    return self._handle_healthz()
                if path == "/readyz":
                    return self._handle_readyz()
                if path == "/metrics":
                    return self._handle_metrics()
                if path == "/drain":
                    return await self._handle_drain(request)
                return await self._handle_infer(request)
            except ProtocolError as exc:
                tenant = getattr(exc, "tenant_name", None)
                return self._reject(path, exc, tenant=tenant)
        finally:
            self.metrics.adjust_in_flight(-1)

    def _reject(
        self,
        path: str,
        exc: ProtocolError,
        tenant: Optional[str] = None,
    ) -> Tuple[int, bytes, str]:
        self.metrics.record(path, exc.status, code=exc.code, tenant=tenant)
        return (exc.status, error_body(exc.code, exc.message),
                "application/json")

    # -- endpoints -----------------------------------------------------------

    def _handle_healthz(self) -> Tuple[int, bytes, str]:
        payload = {
            "schema": GATEWAY_SCHEMA,
            "gateway": {
                "host": self.host,
                "port": self.port,
                "in_flight": self.metrics.snapshot()["in_flight"],
            },
            "backend": self.server.health(),
        }
        self.metrics.record("/healthz", 200)
        return 200, json_body(payload), "application/json"

    def _handle_readyz(self) -> Tuple[int, bytes, str]:
        if self.server.readiness():
            self.metrics.record("/readyz", 200)
            return 200, json_body({"ready": True}), "application/json"
        self.metrics.record("/readyz", 503, code="not_ready")
        return (503, error_body("not_ready", "backend is not accepting "
                                "requests"), "application/json")

    def _handle_metrics(self) -> Tuple[int, bytes, str]:
        from repro.explore.driver import explore_counter_families
        from repro.rsfq.trace import trace_counter_families

        families = server_stats_families(self.server.stats())
        families.extend(self.metrics.families())
        # Cluster backends (ClusterServer) expose cluster-wide gauges
        # (nodes alive, per-node breaker state, rebalance count) via a
        # duck-typed hook; single-node backends simply lack it.
        cluster_families = getattr(self.server, "cluster_families", None)
        if callable(cluster_families):
            families.extend(cluster_families())
        families.extend(trace_counter_families())
        families.extend(explore_counter_families())
        text = render_prometheus(families)
        self.metrics.record("/metrics", 200)
        return (200, text.encode("utf-8"),
                "text/plain; version=0.0.4; charset=utf-8")

    async def _handle_drain(
        self, request: HttpRequest
    ) -> Tuple[int, bytes, str]:
        tenant = self.authenticator.authenticate(request.headers)
        loop = asyncio.get_running_loop()
        drained = await loop.run_in_executor(
            None, lambda: self.server.drain(timeout=30.0)
        )
        self.metrics.record("/drain", 200, tenant=tenant.name)
        return (200, json_body({"drained": bool(drained)}),
                "application/json")

    async def _handle_infer(
        self, request: HttpRequest
    ) -> Tuple[int, bytes, str]:
        tenant = self.authenticator.authenticate(request.headers)
        try:
            if not self.rate_limiter.allow(tenant):
                raise ProtocolError(
                    429, "rate_limited",
                    f"tenant {tenant.name!r} is over its rate limit "
                    f"({tenant.rate_per_s}/s, burst {tenant.burst})",
                )
            reason = self.admission.check()
            if reason is not None:
                raise ProtocolError(
                    503, reason,
                    f"request shed by admission control ({reason})",
                )
            parsed = parse_infer_request(
                request.body, self.server.compiled.in_features
            )
            try:
                future = self.server.submit(
                    parsed.spike_train,
                    timeout=self.submit_timeout_s,
                    deadline_ms=parsed.deadline_ms,
                )
            except queue_module.Full:
                raise ProtocolError(
                    503, "queue_full",
                    "backend queue filled while admitting this request",
                )
            except ConfigurationError as exc:
                # Post-admission validation inside submit() (e.g. the
                # backend stopped accepting between check and submit).
                if not self.server.readiness():
                    raise ProtocolError(503, "not_ready", str(exc))
                raise ProtocolError(400, "bad_request", str(exc))
            try:
                result = await asyncio.wrap_future(future)
            except DeadlineExceededError as exc:
                raise ProtocolError(504, "deadline_exceeded", str(exc))
            except concurrent.futures.CancelledError:
                raise ProtocolError(503, "not_ready",
                                    "request cancelled during shutdown")
            except Exception as exc:
                raise ProtocolError(500, "internal",
                                    f"backend failure: {exc}")
            self.metrics.record("/infer", 200, tenant=tenant.name)
            return (200, infer_response_body(result, tenant.name),
                    "application/json")
        except ProtocolError as exc:
            # Tag the rejection with the (authenticated) tenant so the
            # per-tenant counters tell the skew story.
            exc.tenant_name = tenant.name
            raise

    def __repr__(self) -> str:
        state = "bound" if self._asyncio_server is not None else "stopped"
        return (f"<Gateway {state} {self.host}:{self.port} "
                f"tenants={len(self.authenticator.tenants)}>")


def main(argv=None) -> int:
    """``python -m repro serve``: boot a gateway over the demo workload
    (or a tenants file of your own) and serve until interrupted."""
    import argparse

    from repro.gateway.ratelimit import AdmissionController

    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description="Serve the compiled demo network over HTTP/JSON "
                    "(see docs/GATEWAY.md for the endpoint contract).",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8787,
                        help="0 picks an ephemeral port")
    parser.add_argument("--workers", type=int, default=0,
                        help="shared-memory pool workers (0 = serial)")
    parser.add_argument("--nodes", type=int, default=0,
                        help="cluster pool nodes; > 0 serves through a "
                             "ClusterServer with --workers pool workers "
                             "per node (see docs/CLUSTER.md)")
    parser.add_argument("--autoscale", action="store_true",
                        help="with --nodes: let the autoscaler resize "
                             "the cluster between --nodes and "
                             "--max-nodes from the serving gauges")
    parser.add_argument("--max-nodes", type=int, default=8,
                        help="autoscaler ceiling (default 8)")
    parser.add_argument("--batch-max", type=int, default=64)
    parser.add_argument("--deadline-ms", type=float, default=2.0,
                        help="micro-batch coalescing window")
    parser.add_argument("--queue-limit", type=int, default=1024,
                        help="admission-control queue-depth bound")
    parser.add_argument("--tenants", default=None,
                        help="JSON tenants file (default: the demo "
                             "tenant set with well-known keys)")
    args = parser.parse_args(argv)

    import sys

    from repro.gateway.loadgen import _compile_workload
    from repro.serve import InferenceServer

    authenticator = (
        ApiKeyAuthenticator.from_json_file(args.tenants)
        if args.tenants else ApiKeyAuthenticator(demo_tenants())
    )
    if args.nodes > 0:
        from repro.cluster import AutoscalerConfig, ClusterServer

        autoscaler_config = None
        if args.autoscale:
            autoscaler_config = AutoscalerConfig(
                min_nodes=args.nodes, max_nodes=args.max_nodes
            )
        server = ClusterServer(
            compiled=_compile_workload(),
            batch_max=args.batch_max,
            deadline_ms=args.deadline_ms,
            nodes=args.nodes,
            node_workers=args.workers,
            autoscaler_config=autoscaler_config,
        )
    else:
        server = InferenceServer(
            compiled=_compile_workload(),
            batch_max=args.batch_max,
            deadline_ms=args.deadline_ms,
            workers=args.workers,
        )
    server.start()
    gateway = Gateway(
        server,
        authenticator=authenticator,
        admission=AdmissionController(server, queue_limit=args.queue_limit),
        host=args.host,
        port=args.port,
    )

    async def _serve() -> None:
        await gateway.start()
        print(f"gateway listening on http://{gateway.host}:{gateway.port} "
              f"(plan {server.compiled.fingerprint[:12]}, "
              f"{len(authenticator.tenants)} tenants)")
        sys.stdout.flush()
        await gateway.serve_forever()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
    return 0
