"""The network edge: an asyncio HTTP/JSON gateway over the serving
stack, plus the closed-loop load harness that measures it.

This package turns the in-process :class:`~repro.serve.InferenceServer`
into a deployable service using only the standard library: no web
framework, no HTTP client dependency, no metrics client -- asyncio
streams, hand-rolled HTTP/1.1, and Prometheus text exposition written
by :mod:`repro.serve.metrics`.

Layers (each its own module, composable and individually testable):

* :mod:`repro.gateway.protocol` -- HTTP framing + the JSON request/
  response/typed-error schemas (``repro.gateway.infer/v1``,
  ``repro.gateway.error/v1``).
* :mod:`repro.gateway.auth` -- per-tenant API keys
  (:class:`Tenant`, :class:`ApiKeyAuthenticator`).
* :mod:`repro.gateway.ratelimit` -- per-tenant token buckets
  (:class:`TokenBucket`, :class:`RateLimiter`) and backend
  :class:`AdmissionController` (queue depth, breaker, readiness).
* :mod:`repro.gateway.server` -- the :class:`Gateway` event loop:
  ``/infer`` ``/healthz`` ``/readyz`` ``/metrics`` ``/drain``.
* :mod:`repro.gateway.loadgen` -- ``python -m repro loadtest``: the
  open/closed-loop campaign pinned by
  ``benchmarks/bench_gateway.py``.

See ``docs/GATEWAY.md`` for the endpoint contract and the load-harness
methodology.
"""

from repro.gateway.auth import ApiKeyAuthenticator, Tenant, demo_tenants
from repro.gateway.loadgen import SCENARIOS, run_loadtest
from repro.gateway.protocol import (
    ERROR_CODES,
    InferRequest,
    ProtocolError,
    parse_infer_request,
)
from repro.gateway.ratelimit import (
    AdmissionController,
    RateLimiter,
    TokenBucket,
)
from repro.gateway.server import Gateway, GatewayMetrics

__all__ = [
    "AdmissionController",
    "ApiKeyAuthenticator",
    "ERROR_CODES",
    "Gateway",
    "GatewayMetrics",
    "InferRequest",
    "ProtocolError",
    "RateLimiter",
    "SCENARIOS",
    "Tenant",
    "TokenBucket",
    "demo_tenants",
    "parse_infer_request",
    "run_loadtest",
]
