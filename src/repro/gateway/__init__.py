"""The network edge: an asyncio HTTP/JSON gateway over the serving
stack, plus the closed-loop load harness that measures it.

This package turns the in-process :class:`~repro.serve.InferenceServer`
into a deployable service using only the standard library: no web
framework, no HTTP client dependency, no metrics client -- asyncio
streams, hand-rolled HTTP/1.1, and Prometheus text exposition written
by :mod:`repro.serve.metrics`.

Layers (each its own module, composable and individually testable):

* :mod:`repro.gateway.protocol` -- HTTP framing + the JSON request/
  response/typed-error schemas (``repro.gateway.infer/v1``,
  ``repro.gateway.error/v1``).
* :mod:`repro.gateway.auth` -- per-tenant API keys
  (:class:`Tenant`, :class:`ApiKeyAuthenticator`).
* :mod:`repro.gateway.ratelimit` -- per-tenant token buckets
  (:class:`TokenBucket`, :class:`RateLimiter`) and backend
  :class:`AdmissionController` (queue depth, breaker, readiness).
* :mod:`repro.gateway.server` -- the :class:`Gateway` event loop:
  ``/infer`` ``/healthz`` ``/readyz`` ``/metrics`` ``/drain``.
* :mod:`repro.gateway.client` -- the resilient blocking client
  (:class:`GatewayClient`): pooling/keep-alive, deadline propagation,
  retry budgets with seeded jitter, idempotency keys (exactly-once
  retries), optional hedging.
* :mod:`repro.gateway.loadgen` -- ``python -m repro loadtest``: the
  open/closed-loop campaign pinned by
  ``benchmarks/bench_gateway.py`` (``--proxy`` routes it through the
  :mod:`repro.netchaos` proxy for a degraded-network run).

See ``docs/GATEWAY.md`` for the endpoint contract, the client
resilience semantics, and the load-harness methodology.
"""

from repro.gateway.auth import ApiKeyAuthenticator, Tenant, demo_tenants
from repro.gateway.client import (
    GLOBAL_CLIENT_COUNTERS,
    ClientResult,
    GatewayClient,
    RetryPolicy,
)
from repro.gateway.loadgen import SCENARIOS, run_loadtest
from repro.gateway.protocol import (
    ERROR_CODES,
    IDEMPOTENCY_KEY_HEADER,
    REPLAY_HEADER,
    InferRequest,
    ProtocolError,
    parse_infer_request,
)
from repro.gateway.ratelimit import (
    AdmissionController,
    RateLimiter,
    TokenBucket,
)
from repro.gateway.server import Gateway, GatewayMetrics, IdempotencyLedger

__all__ = [
    "AdmissionController",
    "ApiKeyAuthenticator",
    "ClientResult",
    "ERROR_CODES",
    "Gateway",
    "GatewayClient",
    "GatewayMetrics",
    "GLOBAL_CLIENT_COUNTERS",
    "IDEMPOTENCY_KEY_HEADER",
    "IdempotencyLedger",
    "InferRequest",
    "ProtocolError",
    "RateLimiter",
    "REPLAY_HEADER",
    "RetryPolicy",
    "SCENARIOS",
    "Tenant",
    "TokenBucket",
    "demo_tenants",
    "parse_infer_request",
    "run_loadtest",
]
