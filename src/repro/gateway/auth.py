"""Per-tenant API-key authentication for the gateway.

A :class:`Tenant` is a name plus an API key and the rate-limit contract
the tenant bought (``rate_per_s`` steady-state tokens, ``burst`` bucket
depth -- consumed by :mod:`repro.gateway.ratelimit`).  The
:class:`ApiKeyAuthenticator` maps the ``X-API-Key`` request header to a
tenant with constant-time key comparison; both missing and unknown keys
are 401s (the gateway never discloses whether a key exists).

Tenant sets load from a JSON file (``tenants.json``)::

    [
      {"name": "tenant-a", "api_key": "ka-...", "rate_per_s": 200,
       "burst": 50},
      ...
    ]

or programmatically via :meth:`ApiKeyAuthenticator.from_tenants`.
:func:`demo_tenants` supplies the fixed keys used by the CLI ``serve``
default, the load harness, and the CI smoke step.
"""

from __future__ import annotations

import hmac
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Optional, Sequence

from repro.errors import ConfigurationError
from repro.gateway.protocol import ProtocolError

#: The request header carrying the tenant credential.
API_KEY_HEADER = "x-api-key"


@dataclass(frozen=True)
class Tenant:
    """One paying tenant: identity plus rate-limit contract.

    Attributes:
        name: Stable tenant identifier (used as the metrics label).
        api_key: Shared-secret credential for ``X-API-Key``.
        rate_per_s: Steady-state token refill rate; ``0`` means the
            bucket never refills (burst-only contract).
        burst: Token-bucket depth (maximum requests in one burst).
        priority: Shedding class under overload: ``0`` = critical
            (shed last), ``1`` = standard (default), ``2`` = batch
            (shed first).  Consumed by
            :class:`repro.gateway.ratelimit.AdmissionController`'s
            shed-before-queue path.
    """

    name: str
    api_key: str
    rate_per_s: float = 100.0
    burst: int = 100
    priority: int = 1

    def __post_init__(self):
        if not self.name:
            raise ConfigurationError("tenant name must be non-empty")
        if not self.api_key:
            raise ConfigurationError("tenant api_key must be non-empty")
        if self.rate_per_s < 0:
            raise ConfigurationError("rate_per_s must be >= 0")
        if self.burst < 1:
            raise ConfigurationError("burst must be >= 1")
        if not isinstance(self.priority, int) or self.priority < 0:
            raise ConfigurationError("priority must be an int >= 0")


class ApiKeyAuthenticator:
    """``X-API-Key`` header -> :class:`Tenant` lookup."""

    def __init__(self, tenants: Iterable[Tenant]):
        self._by_key: Dict[str, Tenant] = {}
        for tenant in tenants:
            if tenant.api_key in self._by_key:
                raise ConfigurationError(
                    f"duplicate api_key across tenants "
                    f"({self._by_key[tenant.api_key].name!r} and "
                    f"{tenant.name!r})"
                )
            self._by_key[tenant.api_key] = tenant
        if not self._by_key:
            raise ConfigurationError("need at least one tenant")

    @classmethod
    def from_tenants(cls, *tenants: Tenant) -> "ApiKeyAuthenticator":
        return cls(tenants)

    @classmethod
    def from_json_file(cls, path) -> "ApiKeyAuthenticator":
        entries = json.loads(Path(path).read_text())
        if not isinstance(entries, list):
            raise ConfigurationError(
                "tenants file must hold a JSON list of tenant objects"
            )
        return cls(Tenant(**entry) for entry in entries)

    @property
    def tenants(self) -> Sequence[Tenant]:
        return tuple(self._by_key.values())

    def authenticate(self, headers: Dict[str, str]) -> Tenant:
        """Resolve the tenant or raise a 401 :class:`ProtocolError`."""
        presented = headers.get(API_KEY_HEADER)
        if not presented:
            raise ProtocolError(401, "missing_api_key",
                                "X-API-Key header is required")
        for key, tenant in self._by_key.items():
            if hmac.compare_digest(presented, key):
                return tenant
        raise ProtocolError(401, "invalid_api_key", "unknown API key")

    def lookup(self, api_key: str) -> Optional[Tenant]:
        return self._by_key.get(api_key)


def demo_tenants() -> Sequence[Tenant]:
    """The fixed tenant set used by ``python -m repro serve`` when no
    tenants file is given, by the load harness, and by the CI smoke
    step.  Keys are deliberately well-known -- this is a benchmark
    fixture, not a production credential store."""
    return (
        Tenant(name="tenant-a", api_key="demo-key-a",
               rate_per_s=500.0, burst=200, priority=0),
        Tenant(name="tenant-b", api_key="demo-key-b",
               rate_per_s=500.0, burst=200, priority=1),
        Tenant(name="tenant-burst", api_key="demo-key-burst",
               rate_per_s=0.0, burst=10, priority=2),
    )
