"""A resilient blocking HTTP client for the gateway.

:class:`GatewayClient` is the reference client for the serving edge:
plain stdlib sockets (no third-party HTTP stack) speaking the same
minimal HTTP/1.1 dialect as :mod:`repro.gateway.protocol`, hardened
for the faults :mod:`repro.netchaos` injects:

* **Connection pooling** -- keep-alive connections are checked back in
  after a clean response and reused, so steady traffic pays one TCP
  handshake, not one per request.
* **Deadline propagation** -- a per-request ``deadline_ms`` is a total
  wall-clock budget: the *remaining* budget is re-computed on every
  attempt, sent to the server as the JSON ``deadline_ms`` queueing
  bound, and enforced locally as the socket timeout, so client and
  server agree on when a request is no longer worth finishing.
* **Retries with budget + seeded jitter** -- transport failures
  (reset, timeout, refused, mid-response EOF) retry on a fresh
  connection under :class:`RetryPolicy`: exponential backoff whose
  jitter is drawn from a seeded stream (deterministic tests), capped
  attempts per request, and an optional client-lifetime retry *budget*
  so a dying backend gets fail-fast, not retry amplification.
* **Idempotency keys** -- every ``infer`` carries a deterministic
  ``Idempotency-Key``; the gateway's ledger replays the completed
  answer for a retried accepted-then-lost request instead of computing
  twice (exactly-once), and marks it ``X-Idempotent-Replay`` so the
  client can count proofs.
* **Hedging** -- with ``hedge_after_ms`` set, a request whose first
  byte has not arrived within the threshold is duplicated (same
  idempotency key) on a second fresh connection; the first complete
  response wins and the loser is discarded.

Every client mirrors its counters into
:data:`GLOBAL_CLIENT_COUNTERS`, which the gateway ``/metrics`` handler
exports as the ``sushi_client_*`` families.
"""

from __future__ import annotations

import hashlib
import json
import random
import select
import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import (
    ConfigurationError,
    DeadlineExceededError,
    RetryBudgetExceededError,
    TransportError,
)
from repro.gateway.protocol import IDEMPOTENCY_KEY_HEADER, REPLAY_HEADER

#: Counter fields every client tracks (and mirrors globally).
CLIENT_COUNTER_FIELDS = (
    "requests",             # infer() calls
    "attempts",             # wire attempts (first sends + retries + hedges)
    "retries",              # re-sends after a transport failure
    "hedges",               # duplicate requests fired after hedge_after_ms
    "hedge_wins",           # hedged duplicate answered first
    "timeouts",             # attempts that died waiting on the socket
    "conn_errors",          # attempts that died on reset/refused/EOF
    "replays",              # responses marked X-Idempotent-Replay
    "deadline_exceeded",    # requests abandoned: client deadline spent
    "budget_exhausted",     # retries refused: lifetime budget dry
    "connections_opened",   # fresh TCP connections dialled
    "connections_reused",   # requests served off a pooled connection
)


class ClientCounters:
    """Thread-safe monotonically-increasing client counters."""

    def __init__(self):
        self._lock = threading.Lock()
        self._counts = {name: 0 for name in CLIENT_COUNTER_FIELDS}

    def record(self, field_name: str, n: int = 1) -> None:
        with self._lock:
            self._counts[field_name] += n

    def snapshot(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._counts)


#: Process-wide roll-up of every GatewayClient in this process --
#: exported on the gateway's ``/metrics`` as ``sushi_client_*``.
GLOBAL_CLIENT_COUNTERS = ClientCounters()


@dataclass(frozen=True)
class RetryPolicy:
    """Retry contract for transport failures.

    Attributes:
        max_attempts: Total wire attempts per request (first try
            included); 1 disables retries.
        backoff_base_s: First-retry sleep; doubles per further retry.
        backoff_cap_s: Ceiling on the un-jittered backoff.
        jitter: Multiplicative jitter fraction: the sleep is scaled by
            ``1 + jitter * u`` with ``u`` drawn from the client's
            seeded stream.
        budget: Lifetime retry permits shared across all requests of
            one client (``None`` = unlimited).  An exhausted budget
            fails fast with :class:`RetryBudgetExceededError`.
    """

    max_attempts: int = 3
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 1.0
    jitter: float = 0.5
    budget: Optional[int] = None

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ConfigurationError("max_attempts must be >= 1")
        if self.backoff_base_s < 0 or self.backoff_cap_s < 0:
            raise ConfigurationError("backoff must be >= 0")
        if self.jitter < 0:
            raise ConfigurationError("jitter must be >= 0")
        if self.budget is not None and self.budget < 0:
            raise ConfigurationError("budget must be >= 0 or None")

    def backoff_s(self, retry_index: int, u: float) -> float:
        """Sleep before the ``retry_index``-th retry (1-based)."""
        base = min(self.backoff_cap_s,
                   self.backoff_base_s * (2.0 ** (retry_index - 1)))
        return base * (1.0 + self.jitter * u)


@dataclass
class ClientResult:
    """One completed request as the client saw it."""

    status: int
    payload: Dict
    headers: Dict[str, str] = field(default_factory=dict)
    attempts: int = 1
    hedged: bool = False
    replayed: bool = False
    retry_after_s: Optional[float] = None
    latency_ms: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status == 200


class _Connection:
    """One blocking keep-alive connection with buffered response parsing."""

    def __init__(self, address: Tuple[str, int], timeout_s: float):
        self.sock = socket.create_connection(address, timeout=timeout_s)
        self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._buffer = b""

    def fileno(self) -> int:
        return self.sock.fileno()

    def send(self, frame: bytes) -> None:
        self.sock.sendall(frame)

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass

    def _recv(self, deadline: float) -> bytes:
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            raise socket.timeout("response deadline spent")
        self.sock.settimeout(remaining)
        return self.sock.recv(65536)

    def read_response(
        self, timeout_s: float
    ) -> Tuple[int, Dict[str, str], bytes]:
        """Read one full HTTP/1.1 response (status, headers, body)."""
        deadline = time.monotonic() + timeout_s
        while b"\r\n\r\n" not in self._buffer:
            chunk = self._recv(deadline)
            if not chunk:
                raise ConnectionError("peer closed mid-response")
            self._buffer += chunk
        head, _, self._buffer = self._buffer.partition(b"\r\n\r\n")
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split(" ", 2)
        if len(parts) < 2 or not parts[0].startswith("HTTP/"):
            raise ConnectionError(f"malformed status line {lines[0]!r}")
        status = int(parts[1])
        headers: Dict[str, str] = {}
        for line in lines[1:]:
            name, sep, value = line.partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        while len(self._buffer) < length:
            chunk = self._recv(deadline)
            if not chunk:
                raise ConnectionError("peer closed mid-body")
            self._buffer += chunk
        body, self._buffer = self._buffer[:length], self._buffer[length:]
        return status, headers, body


class GatewayClient:
    """Pooled, retrying, deadline-aware gateway client.

    Args:
        host / port: The gateway (or chaos-proxy) address.
        api_key: ``X-API-Key`` credential.
        timeout_s: Per-attempt socket timeout (connect + response).
        retry: :class:`RetryPolicy`; the default retries transport
            failures twice with jittered exponential backoff.
        hedge_after_ms: When set, fire a duplicate request on a second
            connection if the first byte has not arrived within the
            threshold; ``None`` disables hedging.
        keep_alive: Reuse connections across requests (``False`` sends
            ``Connection: close`` and dials per request).
        pool_size: Idle keep-alive connections retained.
        seed: Seeds both the backoff-jitter stream and the
            deterministic idempotency-key sequence.

    Thread-safe for concurrent ``infer`` calls (the pool and counters
    are locked); each in-flight request holds its own connection.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        api_key: str,
        timeout_s: float = 10.0,
        retry: Optional[RetryPolicy] = None,
        hedge_after_ms: Optional[float] = None,
        keep_alive: bool = True,
        pool_size: int = 4,
        seed: int = 0,
    ):
        if pool_size < 0:
            raise ConfigurationError("pool_size must be >= 0")
        self.address = (host, int(port))
        self.api_key = api_key
        self.timeout_s = timeout_s
        self.retry = retry if retry is not None else RetryPolicy()
        self.hedge_after_ms = hedge_after_ms
        self.keep_alive = keep_alive
        self.pool_size = pool_size
        self.seed = int(seed)
        self.counters = ClientCounters()
        self._rng = random.Random(self.seed * 9176 + 29)
        self._lock = threading.Lock()
        self._pool: List[_Connection] = []
        self._key_seq = 0
        self._retry_permits = (
            self.retry.budget if self.retry.budget is not None else None
        )
        self._closed = False

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        with self._lock:
            pool, self._pool = self._pool, []
            self._closed = True
        for conn in pool:
            conn.close()

    def __enter__(self) -> "GatewayClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def stats(self) -> Dict[str, int]:
        return self.counters.snapshot()

    # -- internals -----------------------------------------------------------

    def _count(self, field_name: str, n: int = 1) -> None:
        self.counters.record(field_name, n)
        GLOBAL_CLIENT_COUNTERS.record(field_name, n)

    def _next_idempotency_key(self) -> str:
        with self._lock:
            self._key_seq += 1
            seq = self._key_seq
        digest = hashlib.sha256(
            f"{self.seed}:{seq}".encode("ascii")
        ).hexdigest()
        return f"idem-{digest[:24]}"

    def _checkout(self, timeout_s: float) -> _Connection:
        with self._lock:
            conn = self._pool.pop() if self._pool else None
        if conn is not None:
            self._count("connections_reused")
            return conn
        conn = _Connection(self.address, timeout_s)
        self._count("connections_opened")
        return conn

    def _checkin(self, conn: _Connection,
                 response_headers: Dict[str, str]) -> None:
        reusable = (
            self.keep_alive
            and response_headers.get("connection", "keep-alive") != "close"
        )
        if not reusable:
            conn.close()
            return
        with self._lock:
            if not self._closed and len(self._pool) < self.pool_size:
                self._pool.append(conn)
                return
        conn.close()

    def _take_retry_permit(self) -> bool:
        if self._retry_permits is None:
            return True
        with self._lock:
            if self._retry_permits > 0:
                self._retry_permits -= 1
                return True
            return False

    def _frame(self, body: bytes, idempotency_key: str) -> bytes:
        lines = [
            "POST /infer HTTP/1.1",
            f"Host: {self.address[0]}:{self.address[1]}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
            f"X-API-Key: {self.api_key}",
            f"{IDEMPOTENCY_KEY_HEADER.title()}: {idempotency_key}",
        ]
        if not self.keep_alive:
            lines.append("Connection: close")
        return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body

    @staticmethod
    def _wait_readable(conns: List[_Connection],
                       timeout_s: float) -> List[_Connection]:
        readable, _, _ = select.select(conns, [], [], max(0.0, timeout_s))
        return readable

    def _attempt(
        self, frame: bytes, timeout_s: float
    ) -> Tuple[int, Dict[str, str], bytes, bool]:
        """One wire attempt; returns (status, headers, body, hedge_won).

        Raises ``socket.timeout`` / ``ConnectionError`` / ``OSError``
        on transport failure (classified by the caller).
        """
        primary = self._checkout(timeout_s)
        hedge: Optional[_Connection] = None
        try:
            primary.send(frame)
            if self.hedge_after_ms is None:
                response = primary.read_response(timeout_s)
                self._checkin(primary, response[1])
                return response + (False,)
            # Hedged path: give the primary hedge_after_ms to produce
            # its first byte, then race a duplicate.
            hedge_wait = min(self.hedge_after_ms / 1000.0, timeout_s)
            if self._wait_readable([primary], hedge_wait):
                response = primary.read_response(timeout_s)
                self._checkin(primary, response[1])
                return response + (False,)
            self._count("hedges")
            hedge = _Connection(self.address, timeout_s)
            self._count("connections_opened")
            hedge.send(frame)
            deadline = time.monotonic() + timeout_s
            winners = self._wait_readable(
                [primary, hedge], deadline - time.monotonic()
            )
            if not winners:
                raise socket.timeout("hedged request: no response")
            winner = winners[0]
            response = winner.read_response(
                max(0.001, deadline - time.monotonic())
            )
            hedge_won = winner is hedge
            if hedge_won:
                self._count("hedge_wins")
            loser = primary if hedge_won else hedge
            loser.close()
            self._checkin(winner, response[1])
            primary = hedge = None  # both accounted for
            return response + (hedge_won,)
        except BaseException:
            for conn in (primary, hedge):
                if conn is not None:
                    conn.close()
            raise

    # -- the public request path ---------------------------------------------

    def infer(
        self,
        spike_train,
        *,
        deadline_ms: Optional[float] = None,
        idempotency_key: Optional[str] = None,
    ) -> ClientResult:
        """POST one spike train; retry/hedge through network faults.

        Returns a :class:`ClientResult` for *any* HTTP status the
        gateway produced (4xx/5xx are data, not exceptions); raises
        :class:`~repro.errors.TransportError` when every attempt died
        on the wire, :class:`~repro.errors.RetryBudgetExceededError`
        when the lifetime budget is dry, and
        :class:`~repro.errors.DeadlineExceededError` when the client
        deadline lapses first.
        """
        started = time.monotonic()
        absolute = (
            started + deadline_ms / 1000.0 if deadline_ms is not None
            else None
        )
        key = idempotency_key or self._next_idempotency_key()
        self._count("requests")
        train = np.asarray(spike_train)
        rows = [[int(v) for v in row] for row in train.tolist()]
        attempts = 0
        hedged = False
        last_error: Optional[BaseException] = None
        while True:
            remaining_s: Optional[float] = None
            if absolute is not None:
                remaining_s = absolute - time.monotonic()
                if remaining_s <= 0:
                    self._count("deadline_exceeded")
                    raise DeadlineExceededError(
                        f"client deadline of {deadline_ms}ms spent after "
                        f"{attempts} attempt(s): {last_error}"
                    )
            payload: Dict = {"spike_train": rows}
            if remaining_s is not None:
                payload["deadline_ms"] = remaining_s * 1000.0
            body = json.dumps(payload).encode("utf-8")
            frame = self._frame(body, key)
            timeout_s = (
                min(self.timeout_s, remaining_s)
                if remaining_s is not None else self.timeout_s
            )
            attempts += 1
            self._count("attempts")
            try:
                status, headers, raw, hedge_won = self._attempt(
                    frame, timeout_s
                )
            except (socket.timeout, TimeoutError) as exc:
                self._count("timeouts")
                last_error = exc
                category = "timeout"
            except (ConnectionError, OSError) as exc:
                self._count("conn_errors")
                last_error = exc
                category = "conn_error"
            else:
                hedged = hedged or hedge_won
                replayed = (
                    headers.get(REPLAY_HEADER.lower()) == "true"
                )
                if replayed:
                    self._count("replays")
                retry_after = headers.get("retry-after")
                try:
                    parsed = json.loads(raw.decode("utf-8")) if raw else {}
                except (UnicodeDecodeError, json.JSONDecodeError):
                    parsed = {}
                return ClientResult(
                    status=status,
                    payload=parsed,
                    headers=headers,
                    attempts=attempts,
                    hedged=hedged,
                    replayed=replayed,
                    retry_after_s=(
                        float(retry_after) if retry_after else None
                    ),
                    latency_ms=(time.monotonic() - started) * 1000.0,
                )
            # Transport failure: decide whether to retry.
            if attempts >= self.retry.max_attempts:
                raise TransportError(
                    f"request failed after {attempts} attempt(s): "
                    f"{last_error}",
                    category=category, attempts=attempts,
                )
            if not self._take_retry_permit():
                self._count("budget_exhausted")
                raise RetryBudgetExceededError(
                    f"retry budget of {self.retry.budget} exhausted "
                    f"after {attempts} attempt(s): {last_error}",
                    category=category, attempts=attempts,
                )
            self._count("retries")
            sleep_s = self.retry.backoff_s(attempts, self._rng.random())
            if absolute is not None:
                sleep_s = min(sleep_s, max(0.0, absolute - time.monotonic()))
            if sleep_s > 0:
                time.sleep(sleep_s)

    def __repr__(self) -> str:
        with self._lock:
            idle = len(self._pool)
        return (f"<GatewayClient {self.address[0]}:{self.address[1]} "
                f"idle={idle} retry={self.retry.max_attempts} "
                f"hedge={self.hedge_after_ms}>")
