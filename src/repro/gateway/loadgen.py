"""Closed-loop million-user-shaped load harness for the gateway.

``python -m repro loadtest`` boots a real in-process :class:`Gateway`
(ephemeral port, demo tenants) over a small compiled network and drives
it with a mix of arrival processes over actual HTTP connections -- the
same code path a production load balancer would exercise, minus the
NIC:

* **steady-closed** -- N virtual users in a classic closed loop (send,
  await, repeat): the throughput-under-think-time shape.
* **poisson-open** -- open-loop Poisson arrivals from a seeded RNG:
  the independent-users shape; arrival times do not wait for answers.
* **flash-crowd** -- synchronized bursts of simultaneous requests:
  the thundering-herd shape that exercises micro-batch coalescing.
* **tenant-skew** -- one burst-only tenant hammers past its token
  bucket while polite tenants proceed: pins the **429** contract.
* **deadline-storm** -- the dispatcher is held busy (chaos-injection
  idiom, as in ``tests/serve``) while requests with 1 ms deadlines
  queue behind it: pins the **504** contract.
* **breaker-open** -- the backend's pool breaker is tripped before
  traffic arrives: pins the **503** admission contract.
* **node-failure** -- the backend is a two-node
  :class:`~repro.cluster.ClusterServer`; one node dies mid-run
  (workers SIGKILLed while serving) and the router's exactly-once
  re-dispatch keeps every client answer a **200** -- node death is
  invisible at the HTTP edge.

With ``--proxy`` the whole campaign is replayed through a seeded
:mod:`repro.netchaos` chaos proxy carrying a benign degraded-network
profile (tiny TCP fragments everywhere, a few milliseconds of seeded
latency on early responses): the deterministic status expectations
must hold unchanged on the bad network; only the latency columns move.

Every scenario runs against a **fresh** server+gateway (per-scenario
counters start at zero) built from one shared compiled plan, and each
carries its *expected* deterministic status counts: the campaign
``passed`` verdict asserts statuses match expectations exactly, while
client-side p50/p99 latency and throughput are measured and recorded as
informational (wall clock is never pinned --
``benchmarks/bench_gateway.py`` pins the deterministic fields only).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.gateway.auth import ApiKeyAuthenticator, demo_tenants
from repro.gateway.ratelimit import AdmissionController
from repro.gateway.server import Gateway
from repro.serve import CircuitBreaker, InferenceServer
from repro.serve.metrics import _percentile

LOADTEST_SCHEMA = "repro.gateway.loadtest/v1"

#: Demo credentials (see :func:`repro.gateway.auth.demo_tenants`).
KEY_A = "demo-key-a"
KEY_B = "demo-key-b"
KEY_BURST = "demo-key-burst"

WORKLOAD = {"sizes": (11, 8, 5), "chip_n": 4, "sc_per_npe": 8, "seed": 41}


# -- minimal asyncio HTTP client ---------------------------------------------


class HttpConnection:
    """One keep-alive HTTP/1.1 client connection (asyncio streams)."""

    def __init__(self, host: str, port: int):
        self.host = host
        self.port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    async def _ensure_open(self) -> None:
        if self._writer is None or self._writer.is_closing():
            self._reader, self._writer = await asyncio.open_connection(
                self.host, self.port
            )

    async def request(
        self,
        method: str,
        path: str,
        *,
        headers: Sequence[Tuple[str, str]] = (),
        body: bytes = b"",
    ) -> Tuple[int, bytes]:
        """Send one request, return ``(status, body)``."""
        await self._ensure_open()
        lines = [f"{method} {path} HTTP/1.1",
                 f"Host: {self.host}:{self.port}",
                 f"Content-Length: {len(body)}"]
        lines.extend(f"{name}: {value}" for name, value in headers)
        frame = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body
        self._writer.write(frame)
        await self._writer.drain()
        status_line = await self._reader.readline()
        if not status_line:
            raise ConnectionError("server closed the connection")
        status = int(status_line.split()[1])
        resp_headers: Dict[str, str] = {}
        while True:
            line = await self._reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            resp_headers[name.strip().lower()] = value.strip()
        length = int(resp_headers.get("content-length", "0"))
        payload = await self._reader.readexactly(length) if length else b""
        if resp_headers.get("connection", "").lower() == "close":
            await self.close()
        return status, payload

    async def close(self) -> None:
        writer, self._writer = self._writer, None
        self._reader = None
        if writer is not None:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass


def _infer_body(train: np.ndarray,
                deadline_ms: Optional[float] = None) -> bytes:
    payload: Dict = {"spike_train": train.astype(int).tolist()}
    if deadline_ms is not None:
        payload["deadline_ms"] = deadline_ms
    return json.dumps(payload).encode("utf-8")


# -- scenario plumbing -------------------------------------------------------


class _Collector:
    """Per-scenario outcome accumulator (single event loop, no lock)."""

    def __init__(self):
        self.statuses: Dict[str, int] = {}
        self.rejections: Dict[str, int] = {}
        self.latencies_ms: List[float] = []

    def record(self, status: int, body: bytes, latency_ms: float) -> None:
        key = str(status)
        self.statuses[key] = self.statuses.get(key, 0) + 1
        self.latencies_ms.append(latency_ms)
        if status >= 400:
            try:
                code = json.loads(body.decode("utf-8"))["error"]["code"]
            except (ValueError, KeyError):
                code = "unparsed"
            self.rejections[code] = self.rejections.get(code, 0) + 1

    def summary(self, name: str, mode: str, elapsed_s: float,
                expected: Dict[str, int]) -> Dict:
        sent = sum(self.statuses.values())
        ordered = sorted(self.latencies_ms)
        return {
            "name": name,
            "mode": mode,
            "sent": sent,
            "statuses": dict(sorted(self.statuses.items())),
            "expected_statuses": dict(sorted(expected.items())),
            "passed": self.statuses == expected,
            "rejections": dict(sorted(self.rejections.items())),
            "latency_ms_p50": round(_percentile(ordered, 0.50), 3),
            "latency_ms_p99": round(_percentile(ordered, 0.99), 3),
            "latency_ms_max": round(ordered[-1], 3) if ordered else 0.0,
            "throughput_rps": round(sent / elapsed_s, 1) if elapsed_s
            else 0.0,
            "elapsed_s": round(elapsed_s, 3),
        }


async def _timed_request(
    conn: HttpConnection,
    collector: _Collector,
    api_key: str,
    body: bytes,
) -> int:
    start = time.perf_counter()
    status, payload = await conn.request(
        "POST", "/infer", headers=(("X-API-Key", api_key),), body=body
    )
    collector.record(status, payload,
                     (time.perf_counter() - start) * 1000.0)
    return status


def _make_trains(rng: np.random.Generator, count: int, steps: int,
                 in_features: int) -> List[np.ndarray]:
    return [
        (rng.random((steps, in_features)) < 0.3).astype(float)
        for _ in range(count)
    ]


#: Benign degraded-network profile for ``--proxy`` runs: every frame is
#: fragmented into tiny TCP pieces, and the first few responses pick up
#: a couple of milliseconds of seeded latency.  Nothing here may change
#: a status code -- the campaign's deterministic expectations must hold
#: on a bad network too; only the latency columns are allowed to move.
_PROXY_FAULTS = (
    ("split", dict(budget=None, direction="both", chunk_bytes=96)),
    ("latency", dict(budget=8, direction="down", delay_ms=2.0,
                     jitter_ms=1.0)),
)


class _ScenarioContext:
    """A fresh backend + gateway -- optionally behind a seeded
    :class:`~repro.netchaos.ChaosProxy` -- torn down after each
    scenario.  Clients must aim at :attr:`address`, which points at
    the proxy when one is interposed."""

    def __init__(self, compiled, *, deadline_ms: float = 2.0,
                 breaker: Optional[CircuitBreaker] = None,
                 queue_limit: int = 4096, cluster_nodes: int = 0,
                 proxy: bool = False):
        if cluster_nodes > 0:
            from repro.cluster import ClusterServer

            # supervise_interval_s=0: scenarios drive failure handling
            # through the router's dispatch path deterministically.
            self.server = ClusterServer(
                compiled=compiled, deadline_ms=deadline_ms, batch_max=64,
                breaker=breaker, nodes=cluster_nodes, node_workers=2,
                supervise_interval_s=0,
            )
        else:
            self.server = InferenceServer(
                compiled=compiled, deadline_ms=deadline_ms, batch_max=64,
                breaker=breaker,
            )
        self.gateway = Gateway(
            self.server,
            authenticator=ApiKeyAuthenticator(demo_tenants()),
            admission=AdmissionController(
                self.server, queue_limit=queue_limit
            ),
        )
        self._use_proxy = proxy
        self.proxy = None

    def __enter__(self) -> "_ScenarioContext":
        self.server.start()
        self.gateway.run_in_thread()
        if self._use_proxy:
            from repro.netchaos import ChaosProxy, NetFault

            self.proxy = ChaosProxy(
                self.gateway.address,
                tuple(NetFault(kind, **opts)
                      for kind, opts in _PROXY_FAULTS),
                seed=23,
            ).start()
        return self

    @property
    def address(self) -> Tuple[str, int]:
        if self.proxy is not None:
            return (self.proxy.host, self.proxy.port)
        return self.gateway.address

    def __exit__(self, *exc) -> None:
        if self.proxy is not None:
            self.proxy.close()
        self.gateway.close()
        self.server.stop()


# -- the scenarios -----------------------------------------------------------


def _scenario_steady_closed(compiled, quick: bool, seed: int,
                    proxy: bool = False) -> Dict:
    users = 6 if quick else 16
    per_user = 5 if quick else 25
    rng = np.random.default_rng(seed)
    with _ScenarioContext(compiled, proxy=proxy) as ctx:
        trains = _make_trains(rng, users, 12, compiled.in_features)
        collector = _Collector()

        async def user(i: int) -> None:
            conn = HttpConnection(*ctx.address)
            key = KEY_A if i % 2 == 0 else KEY_B
            try:
                for _ in range(per_user):
                    await _timed_request(conn, collector, key,
                                         _infer_body(trains[i]))
            finally:
                await conn.close()

        async def drive() -> None:
            await asyncio.gather(*(user(i) for i in range(users)))

        start = time.perf_counter()
        asyncio.run(drive())
        elapsed = time.perf_counter() - start
    return collector.summary(
        "steady-closed", "closed-loop", elapsed,
        expected={"200": users * per_user},
    )


def _scenario_poisson_open(compiled, quick: bool, seed: int,
                    proxy: bool = False) -> Dict:
    arrivals = 40 if quick else 200
    rate_per_s = 300.0
    rng = np.random.default_rng(seed + 1)
    gaps = rng.exponential(1.0 / rate_per_s, size=arrivals)
    with _ScenarioContext(compiled, proxy=proxy) as ctx:
        trains = _make_trains(rng, 8, 12, compiled.in_features)
        collector = _Collector()

        async def one_shot(i: int) -> None:
            conn = HttpConnection(*ctx.address)
            key = KEY_A if i % 2 == 0 else KEY_B
            try:
                await _timed_request(conn, collector, key,
                                     _infer_body(trains[i % len(trains)]))
            finally:
                await conn.close()

        async def drive() -> None:
            tasks = []
            for i in range(arrivals):
                await asyncio.sleep(gaps[i])
                tasks.append(asyncio.ensure_future(one_shot(i)))
            await asyncio.gather(*tasks)

        start = time.perf_counter()
        asyncio.run(drive())
        elapsed = time.perf_counter() - start
    return collector.summary(
        "poisson-open", "open-loop", elapsed,
        expected={"200": arrivals},
    )


def _scenario_flash_crowd(compiled, quick: bool, seed: int,
                    proxy: bool = False) -> Dict:
    waves = 3 if quick else 6
    width = 16 if quick else 48
    rng = np.random.default_rng(seed + 2)
    with _ScenarioContext(compiled, proxy=proxy) as ctx:
        trains = _make_trains(rng, width, 12, compiled.in_features)
        collector = _Collector()

        async def crash_in(i: int) -> None:
            conn = HttpConnection(*ctx.address)
            key = KEY_A if i % 2 == 0 else KEY_B
            try:
                await _timed_request(conn, collector, key,
                                     _infer_body(trains[i]))
            finally:
                await conn.close()

        async def drive() -> None:
            for _ in range(waves):
                await asyncio.gather(
                    *(crash_in(i) for i in range(width))
                )
                await asyncio.sleep(0.02)

        start = time.perf_counter()
        asyncio.run(drive())
        elapsed = time.perf_counter() - start
    return collector.summary(
        "flash-crowd", "open-loop", elapsed,
        expected={"200": waves * width},
    )


def _scenario_tenant_skew(compiled, quick: bool, seed: int,
                    proxy: bool = False) -> Dict:
    # tenant-burst has burst=10 and rate_per_s=0 (never refills), so a
    # sequential closed loop of `greedy` requests deterministically
    # yields 10 accepts + (greedy - 10) rate-limit rejections.
    greedy = 25 if quick else 60
    polite = 5 if quick else 20
    rng = np.random.default_rng(seed + 3)
    with _ScenarioContext(compiled, proxy=proxy) as ctx:
        trains = _make_trains(rng, 4, 12, compiled.in_features)
        collector = _Collector()

        async def drive() -> None:
            conn = HttpConnection(*ctx.address)
            try:
                for i in range(greedy):
                    await _timed_request(conn, collector, KEY_BURST,
                                         _infer_body(trains[i % 4]))
                for i in range(polite):
                    key = KEY_A if i % 2 == 0 else KEY_B
                    await _timed_request(conn, collector, key,
                                         _infer_body(trains[i % 4]))
            finally:
                await conn.close()

        start = time.perf_counter()
        asyncio.run(drive())
        elapsed = time.perf_counter() - start
    return collector.summary(
        "tenant-skew", "closed-loop", elapsed,
        expected={"200": 10 + polite, "429": greedy - 10},
    )


def _scenario_deadline_storm(compiled, quick: bool, seed: int,
                    proxy: bool = False) -> Dict:
    # Hold the dispatcher busy (chaos-injection idiom: wrap _forward
    # with a sleep, exactly as tests/serve does) while doomed requests
    # with 1 ms deadlines pile up behind the blocker; every one of them
    # expires at dispatch -> 504.  deadline_ms=0 disables coalescing so
    # the doomed requests cannot ride the blocker's batch.
    doomed = 12 if quick else 40
    hold_s = 1.2
    rng = np.random.default_rng(seed + 4)
    with _ScenarioContext(compiled, deadline_ms=0.0,
                          proxy=proxy) as ctx:
        trains = _make_trains(rng, 2, 12, compiled.in_features)
        collector = _Collector()
        original = ctx.server._forward

        def held_forward(rows):
            time.sleep(hold_s)
            return original(rows)

        ctx.server._forward = held_forward
        try:
            async def drive() -> None:
                blocker_conn = HttpConnection(*ctx.address)
                blocker = asyncio.ensure_future(_timed_request(
                    blocker_conn, collector, KEY_A, _infer_body(trains[0])
                ))
                await asyncio.sleep(0.15)  # let the dispatcher take it

                async def one_doomed() -> None:
                    conn = HttpConnection(*ctx.address)
                    try:
                        await _timed_request(
                            conn, collector, KEY_B,
                            _infer_body(trains[1], deadline_ms=1.0),
                        )
                    finally:
                        await conn.close()

                await asyncio.gather(*(one_doomed()
                                       for _ in range(doomed)))
                await blocker
                await blocker_conn.close()

            start = time.perf_counter()
            asyncio.run(drive())
            elapsed = time.perf_counter() - start
        finally:
            ctx.server._forward = original
    return collector.summary(
        "deadline-storm", "open-loop", elapsed,
        expected={"200": 1, "504": doomed},
    )


def _scenario_breaker_open(compiled, quick: bool, seed: int,
                    proxy: bool = False) -> Dict:
    # Trip the pool breaker before traffic arrives (a long cool-down
    # keeps it open for the whole scenario): admission control sheds
    # every request at the edge with a typed 503.
    shots = 10 if quick else 30
    rng = np.random.default_rng(seed + 5)
    breaker = CircuitBreaker(failure_threshold=1, reset_timeout_s=300.0)
    with _ScenarioContext(compiled, breaker=breaker,
                          proxy=proxy) as ctx:
        ctx.server.breaker.record_failure()
        assert ctx.server.breaker.state == "open"
        trains = _make_trains(rng, 2, 12, compiled.in_features)
        collector = _Collector()

        async def drive() -> None:
            conn = HttpConnection(*ctx.address)
            try:
                for _ in range(shots):
                    await _timed_request(conn, collector, KEY_A,
                                         _infer_body(trains[0]))
            finally:
                await conn.close()

        start = time.perf_counter()
        asyncio.run(drive())
        elapsed = time.perf_counter() - start
    return collector.summary(
        "breaker-open", "closed-loop", elapsed,
        expected={"503": shots},
    )


def _scenario_node_failure(compiled, quick: bool, seed: int,
                    proxy: bool = False) -> Dict:
    # Two-node cluster backend; after the first wave a node dies
    # *mid-batch* (its workers are SIGKILLed while it serves, the
    # chaos-harness idiom from `node-kill`).  The router re-dispatches
    # the in-flight request exactly once and routes the rest around the
    # corpse, so the client-visible contract is every request -> 200.
    shots_before = 6 if quick else 20
    shots_after = 6 if quick else 20
    rng = np.random.default_rng(seed + 6)
    with _ScenarioContext(compiled, cluster_nodes=2,
                          proxy=proxy) as ctx:
        trains = _make_trains(rng, shots_before + shots_after, 12,
                              compiled.in_features)
        collector = _Collector()
        router = ctx.server.router
        assert router.alive_count() == 2

        async def drive() -> None:
            conn = HttpConnection(*ctx.address)
            try:
                for i in range(shots_before):
                    await _timed_request(conn, collector, KEY_A,
                                         _infer_body(trains[i]))
                # Arm mid-batch death on the node that owns the next
                # request's affinity key: it dies while serving that
                # request, losing the answer with the "host".
                rows = np.ascontiguousarray(trains[shots_before],
                                            dtype=np.float64)
                victim = router.node(
                    router._ring.route(router.affinity_key(rows))
                )
                original_forward = victim._forward

                def dying_forward(batch_rows):
                    victim.kill()
                    return original_forward(batch_rows)

                victim._forward = dying_forward
                for i in range(shots_before,
                               shots_before + shots_after):
                    await _timed_request(conn, collector, KEY_A,
                                         _infer_body(trains[i]))
                assert victim.state == "dead"
            finally:
                await conn.close()

        start = time.perf_counter()
        asyncio.run(drive())
        elapsed = time.perf_counter() - start
        # The failure was real and the recovery exact: one node left,
        # exactly one re-dispatch, the corpse out of the hash ring.
        assert router.alive_count() == 1
        assert router.retries == 1
        assert router.evictions == 1
    return collector.summary(
        "node-failure", "closed-loop", elapsed,
        expected={"200": shots_before + shots_after},
    )


SCENARIOS: Dict[str, Callable] = {
    "steady-closed": _scenario_steady_closed,
    "poisson-open": _scenario_poisson_open,
    "flash-crowd": _scenario_flash_crowd,
    "tenant-skew": _scenario_tenant_skew,
    "deadline-storm": _scenario_deadline_storm,
    "breaker-open": _scenario_breaker_open,
    "node-failure": _scenario_node_failure,
}


# -- campaign ----------------------------------------------------------------


def _compile_workload():
    from repro.harness import random_binarized_network
    from repro.ssnn import compile_network

    rng = np.random.default_rng(WORKLOAD["seed"])
    network = random_binarized_network(
        rng, sizes=WORKLOAD["sizes"], sc_per_npe=WORKLOAD["sc_per_npe"]
    )
    return compile_network(
        network, WORKLOAD["chip_n"], WORKLOAD["sc_per_npe"]
    )


def run_loadtest(
    quick: bool = False,
    scenarios: Optional[Sequence[str]] = None,
    seed: int = 7,
    proxy: bool = False,
) -> Dict:
    """Run the load campaign; returns the ``repro.gateway.loadtest/v1``
    report.  ``passed`` is ``True`` iff every scenario's observed
    status counts equal its deterministic expectation.  With ``proxy``
    every scenario's traffic crosses a :class:`~repro.netchaos`
    chaos proxy with a benign degraded-network profile -- the same
    status expectations must hold, only latency may move."""
    names = list(scenarios) if scenarios else list(SCENARIOS)
    unknown = [n for n in names if n not in SCENARIOS]
    if unknown:
        raise ValueError(
            f"unknown scenarios: {unknown}; have {list(SCENARIOS)}"
        )
    compiled = _compile_workload()
    results = []
    for name in names:
        results.append(SCENARIOS[name](compiled, quick, seed, proxy))
    totals_statuses: Dict[str, int] = {}
    totals_rejections: Dict[str, int] = {}
    for entry in results:
        for status, count in entry["statuses"].items():
            totals_statuses[status] = totals_statuses.get(status, 0) + count
        for code, count in entry["rejections"].items():
            totals_rejections[code] = (
                totals_rejections.get(code, 0) + count
            )
    return {
        "schema": LOADTEST_SCHEMA,
        "quick": quick,
        "proxy": proxy,
        "workload": {**WORKLOAD, "sizes": list(WORKLOAD["sizes"]),
                     "fingerprint": compiled.fingerprint},
        "scenarios": results,
        "totals": {
            "sent": sum(e["sent"] for e in results),
            "statuses": dict(sorted(totals_statuses.items())),
            "rejections": dict(sorted(totals_rejections.items())),
        },
        "passed": all(e["passed"] for e in results),
    }


def format_report(report: Dict) -> str:
    lines = [
        f"gateway load campaign "
        f"({'quick' if report['quick'] else 'full'}"
        f"{', degraded network' if report.get('proxy') else ''}) -- "
        f"{'PASS' if report['passed'] else 'FAIL'}",
        f"  workload: sizes={report['workload']['sizes']} "
        f"plan={report['workload']['fingerprint'][:12]}",
    ]
    for entry in report["scenarios"]:
        verdict = "ok" if entry["passed"] else "MISMATCH"
        statuses = " ".join(f"{k}:{v}"
                            for k, v in entry["statuses"].items())
        lines.append(
            f"  {entry['name']:>15} [{entry['mode']:>11}] {verdict:>8}  "
            f"{statuses:<24} p50={entry['latency_ms_p50']}ms "
            f"p99={entry['latency_ms_p99']}ms "
            f"{entry['throughput_rps']} req/s"
        )
    totals = report["totals"]
    lines.append(f"  totals: sent={totals['sent']} "
                 f"statuses={totals['statuses']} "
                 f"rejections={totals['rejections']}")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro loadtest",
        description="Drive the gateway with a mixed open/closed-loop "
                    "load campaign (see docs/GATEWAY.md).",
    )
    parser.add_argument("--quick", action="store_true",
                        help="small request counts (CI-sized)")
    parser.add_argument("--scenario", action="append", dest="scenarios",
                        choices=sorted(SCENARIOS),
                        help="run only this scenario (repeatable)")
    parser.add_argument("--proxy", action="store_true",
                        help="route all traffic through the netchaos "
                             "proxy (benign degraded-network profile; "
                             "status expectations must still hold)")
    parser.add_argument("--out", default=None,
                        help="also write the JSON report to this path")
    args = parser.parse_args(argv)
    report = run_loadtest(quick=args.quick, scenarios=args.scenarios,
                          proxy=args.proxy)
    print(format_report(report))
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.out}")
    return 0 if report["passed"] else 1


if __name__ == "__main__":
    sys.exit(main())
