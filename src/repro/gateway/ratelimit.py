"""Rate limiting and admission control for the gateway.

Two distinct load-shedding layers, matching the response codes the
acceptance tests pin:

* **Per-tenant token buckets** (:class:`TokenBucket`,
  :class:`RateLimiter`) -- the *contract* layer.  Each tenant's bucket
  holds ``burst`` tokens and refills at ``rate_per_s``; an empty bucket
  is a **429** with code ``rate_limited``.  A ``rate_per_s`` of 0 never
  refills (burst-only contracts -- used by the deterministic bench
  scenarios).  The clock is injectable for tests.

* **Backend admission control** (:class:`AdmissionController`) -- the
  *capacity* layer, riding the serving stack's existing machinery.
  Requests are shed with a **503** when the backend is not ready
  (``not_ready``: draining or stopped), when the pool circuit breaker
  is open (``breaker_open``: the backend is in degraded serial mode, so
  the gateway stops piling load on it), or when the coalescing queue is
  deeper than ``queue_limit`` (``queue_full``).  Low-priority tenants
  (:attr:`~repro.gateway.auth.Tenant.priority` >= ``shed_priority``)
  are shed *earlier*, at the soft ``shed_queue_depth`` watermark, with
  code ``overloaded`` -- the shed-before-queue path that keeps
  headroom for critical traffic.  Expired per-request deadlines remain
  the server's job and surface as **504** at the gateway (see
  :mod:`repro.gateway.server`).

Both layers can answer "when should the client come back":
:meth:`RateLimiter.retry_after_s` from the bucket's refill rate,
:meth:`AdmissionController.retry_after_s` from the breaker's remaining
cooldown -- the numbers behind the gateway's ``Retry-After`` headers.
"""

from __future__ import annotations

import math
import threading
import time
from typing import Callable, Dict, Optional

from repro.errors import ConfigurationError
from repro.gateway.auth import Tenant


class TokenBucket:
    """Classic token bucket: ``burst`` depth, ``rate_per_s`` refill.

    Thread-safe; the clock is injectable for deterministic tests.
    """

    def __init__(
        self,
        rate_per_s: float,
        burst: int,
        clock: Callable[[], float] = time.monotonic,
    ):
        if rate_per_s < 0:
            raise ConfigurationError("rate_per_s must be >= 0")
        if burst < 1:
            raise ConfigurationError("burst must be >= 1")
        self.rate_per_s = float(rate_per_s)
        self.burst = int(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._updated = clock()
        self._lock = threading.Lock()

    def try_acquire(self, tokens: int = 1) -> bool:
        """Take ``tokens`` if available; never blocks."""
        with self._lock:
            self._refill()
            if self._tokens >= tokens:
                self._tokens -= tokens
                return True
            return False

    def _refill(self) -> None:
        """Mint tokens for the elapsed wall-clock time (lock held).

        A retrograde clock (NTP step, frozen test clock rewound) mints
        nothing *and* leaves the watermark where it was: moving
        ``_updated`` backwards would double-count the rewound interval
        once the clock recovers, silently granting free tokens.
        """
        now = self._clock()
        if now <= self._updated:
            return
        elapsed = now - self._updated
        self._updated = now
        self._tokens = min(
            float(self.burst), self._tokens + elapsed * self.rate_per_s
        )

    @property
    def tokens(self) -> float:
        """Current (refill-adjusted) token count."""
        with self._lock:
            elapsed = max(0.0, self._clock() - self._updated)
            return min(float(self.burst),
                       self._tokens + elapsed * self.rate_per_s)

    def seconds_until(self, tokens: int = 1) -> float:
        """Wall-clock seconds until ``tokens`` will be available.

        ``0.0`` when they already are; ``inf`` for a burst-only bucket
        (``rate_per_s == 0``) that cannot refill.
        """
        missing = tokens - self.tokens
        if missing <= 0:
            return 0.0
        if self.rate_per_s == 0:
            return math.inf
        return missing / self.rate_per_s


class RateLimiter:
    """One lazily-created :class:`TokenBucket` per tenant."""

    def __init__(self, clock: Callable[[], float] = time.monotonic):
        self._clock = clock
        self._buckets: Dict[str, TokenBucket] = {}
        self._lock = threading.Lock()

    def allow(self, tenant: Tenant) -> bool:
        with self._lock:
            bucket = self._buckets.get(tenant.name)
            if bucket is None:
                bucket = TokenBucket(
                    tenant.rate_per_s, tenant.burst, clock=self._clock
                )
                self._buckets[tenant.name] = bucket
        return bucket.try_acquire()

    def bucket(self, tenant_name: str) -> Optional[TokenBucket]:
        with self._lock:
            return self._buckets.get(tenant_name)

    def retry_after_s(self, tenant: Tenant,
                      burst_only_s: float = 60.0) -> float:
        """Back-off hint for a 429: time until the next token exists.

        Burst-only tenants (``rate_per_s == 0``) can never refill, so
        they get the fixed ``burst_only_s`` hint instead of infinity.
        """
        bucket = self.bucket(tenant.name)
        if bucket is None:
            return 1.0
        wait = bucket.seconds_until(1)
        if math.isinf(wait):
            return burst_only_s
        return max(wait, 0.001)


class AdmissionController:
    """Queue-depth + breaker + readiness admission in front of submit.

    Args:
        server: The :class:`~repro.serve.server.InferenceServer` being
            fronted.
        queue_limit: Maximum coalescing-queue depth admitted; beyond it
            requests are shed (``queue_full``).  Must stay below the
            server's own ``queue_max`` backpressure bound so shedding
            happens with a typed 503 rather than a blocked submit.
        shed_on_breaker_open: When ``True`` (default) an open pool
            breaker sheds load at the edge: the backend is already in
            degraded serial mode, and piling more work on it only grows
            the queue it is trying to drain.
        shed_queue_depth: Soft watermark for the shed-before-queue
            path: once the queue is this deep, requests whose tenant
            priority is ``>= shed_priority`` are shed with
            ``overloaded`` while higher-priority traffic still fills
            the remaining ``queue_limit`` headroom.  Defaults to half
            of ``queue_limit``.
        shed_priority: Lowest tenant priority admitted past the soft
            watermark (default 2: batch traffic sheds first).
    """

    def __init__(
        self,
        server,
        queue_limit: int = 1024,
        shed_on_breaker_open: bool = True,
        shed_queue_depth: Optional[int] = None,
        shed_priority: int = 2,
    ):
        if queue_limit < 1:
            raise ConfigurationError("queue_limit must be >= 1")
        if shed_queue_depth is None:
            shed_queue_depth = max(1, queue_limit // 2)
        if shed_queue_depth < 1:
            raise ConfigurationError("shed_queue_depth must be >= 1")
        self.server = server
        self.queue_limit = queue_limit
        self.shed_on_breaker_open = shed_on_breaker_open
        self.shed_queue_depth = shed_queue_depth
        self.shed_priority = shed_priority

    def check(self, priority: int = 0) -> Optional[str]:
        """Return the rejection reason, or ``None`` to admit.

        Reasons, in precedence order, are the typed error codes
        ``not_ready`` / ``breaker_open`` / ``queue_full`` /
        ``overloaded`` (all 503s at the edge).  ``priority`` is the
        requesting tenant's shedding class; only the ``overloaded``
        reason depends on it.
        """
        if not self.server.readiness():
            return "not_ready"
        if self.shed_on_breaker_open and self.server.breaker.state == "open":
            return "breaker_open"
        depth = self.server.queue_depth()
        if depth >= self.queue_limit:
            return "queue_full"
        if priority >= self.shed_priority and depth >= self.shed_queue_depth:
            return "overloaded"
        return None

    def retry_after_s(self, reason: str) -> float:
        """Back-off hint for an admission 503.

        ``breaker_open`` derives from the breaker's remaining cooldown
        (the honest answer: nothing will be admitted sooner); the
        queue-pressure reasons get a 1-second "come back soon" since
        queues drain at serving speed.
        """
        if reason == "breaker_open":
            snap = self.server.breaker.snapshot()
            if snap.state == "open":
                remaining = snap.reset_timeout_s - snap.open_for_s
                return max(0.001, remaining)
        return 1.0
