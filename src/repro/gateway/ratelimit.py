"""Rate limiting and admission control for the gateway.

Two distinct load-shedding layers, matching the response codes the
acceptance tests pin:

* **Per-tenant token buckets** (:class:`TokenBucket`,
  :class:`RateLimiter`) -- the *contract* layer.  Each tenant's bucket
  holds ``burst`` tokens and refills at ``rate_per_s``; an empty bucket
  is a **429** with code ``rate_limited``.  A ``rate_per_s`` of 0 never
  refills (burst-only contracts -- used by the deterministic bench
  scenarios).  The clock is injectable for tests.

* **Backend admission control** (:class:`AdmissionController`) -- the
  *capacity* layer, riding the serving stack's existing machinery.
  Requests are shed with a **503** when the backend is not ready
  (``not_ready``: draining or stopped), when the pool circuit breaker
  is open (``breaker_open``: the backend is in degraded serial mode, so
  the gateway stops piling load on it), or when the coalescing queue is
  deeper than ``queue_limit`` (``queue_full``).  Expired per-request
  deadlines remain the server's job and surface as **504** at the
  gateway (see :mod:`repro.gateway.server`).
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Optional

from repro.errors import ConfigurationError
from repro.gateway.auth import Tenant


class TokenBucket:
    """Classic token bucket: ``burst`` depth, ``rate_per_s`` refill.

    Thread-safe; the clock is injectable for deterministic tests.
    """

    def __init__(
        self,
        rate_per_s: float,
        burst: int,
        clock: Callable[[], float] = time.monotonic,
    ):
        if rate_per_s < 0:
            raise ConfigurationError("rate_per_s must be >= 0")
        if burst < 1:
            raise ConfigurationError("burst must be >= 1")
        self.rate_per_s = float(rate_per_s)
        self.burst = int(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._updated = clock()
        self._lock = threading.Lock()

    def try_acquire(self, tokens: int = 1) -> bool:
        """Take ``tokens`` if available; never blocks."""
        with self._lock:
            now = self._clock()
            elapsed = max(0.0, now - self._updated)
            self._updated = now
            self._tokens = min(
                float(self.burst), self._tokens + elapsed * self.rate_per_s
            )
            if self._tokens >= tokens:
                self._tokens -= tokens
                return True
            return False

    @property
    def tokens(self) -> float:
        """Current (refill-adjusted) token count."""
        with self._lock:
            elapsed = max(0.0, self._clock() - self._updated)
            return min(float(self.burst),
                       self._tokens + elapsed * self.rate_per_s)


class RateLimiter:
    """One lazily-created :class:`TokenBucket` per tenant."""

    def __init__(self, clock: Callable[[], float] = time.monotonic):
        self._clock = clock
        self._buckets: Dict[str, TokenBucket] = {}
        self._lock = threading.Lock()

    def allow(self, tenant: Tenant) -> bool:
        with self._lock:
            bucket = self._buckets.get(tenant.name)
            if bucket is None:
                bucket = TokenBucket(
                    tenant.rate_per_s, tenant.burst, clock=self._clock
                )
                self._buckets[tenant.name] = bucket
        return bucket.try_acquire()

    def bucket(self, tenant_name: str) -> Optional[TokenBucket]:
        with self._lock:
            return self._buckets.get(tenant_name)


class AdmissionController:
    """Queue-depth + breaker + readiness admission in front of submit.

    Args:
        server: The :class:`~repro.serve.server.InferenceServer` being
            fronted.
        queue_limit: Maximum coalescing-queue depth admitted; beyond it
            requests are shed (``queue_full``).  Must stay below the
            server's own ``queue_max`` backpressure bound so shedding
            happens with a typed 503 rather than a blocked submit.
        shed_on_breaker_open: When ``True`` (default) an open pool
            breaker sheds load at the edge: the backend is already in
            degraded serial mode, and piling more work on it only grows
            the queue it is trying to drain.
    """

    def __init__(
        self,
        server,
        queue_limit: int = 1024,
        shed_on_breaker_open: bool = True,
    ):
        if queue_limit < 1:
            raise ConfigurationError("queue_limit must be >= 1")
        self.server = server
        self.queue_limit = queue_limit
        self.shed_on_breaker_open = shed_on_breaker_open

    def check(self) -> Optional[str]:
        """Return the rejection reason, or ``None`` to admit.

        Reasons are the typed error codes ``not_ready`` /
        ``breaker_open`` / ``queue_full`` (all 503s at the edge).
        """
        if not self.server.readiness():
            return "not_ready"
        if self.shed_on_breaker_open and self.server.breaker.state == "open":
            return "breaker_open"
        if self.server.queue_depth() >= self.queue_limit:
            return "queue_full"
        return None
