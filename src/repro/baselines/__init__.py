"""Baseline neuromorphic chips (paper Table 4 and Figs. 19/21).

The paper compares SUSHI against the published specifications of TrueNorth
(Merolla et al., Science 2014) and Tianjic (Pei et al., Nature 2019); Loihi
is included for context.  :class:`ChipSpec` records those specs, and
:func:`analytical_sops` provides the standard SOPS model (average firing
rate x average active synapses) used for sanity checks against the
published throughput numbers.
"""

from repro.baselines.specs import (
    LOIHI,
    SUSHI_PAPER,
    TIANJIC,
    TRUENORTH,
    ChipSpec,
    all_baselines,
    analytical_sops,
)

__all__ = [
    "ChipSpec",
    "TRUENORTH",
    "TIANJIC",
    "LOIHI",
    "SUSHI_PAPER",
    "all_baselines",
    "analytical_sops",
]
