"""Published specifications of the comparison chips (paper Table 4)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ChipSpec:
    """Published figures of a neuromorphic chip.

    Power may be a range (min, max) as published for TrueNorth (63-300 mW
    depending on workload); ``gsops`` or ``gsops_per_w`` may be None when
    the source does not report them (Table 4 leaves Tianjic's GSOPS blank).
    """

    name: str
    model: str
    memory: str
    technology: str
    clock_mhz: Optional[float]  # None = asynchronous
    area_mm2: float
    power_mw: Tuple[float, float]
    gsops: Optional[float]
    gsops_per_w: Optional[float]

    @property
    def is_async(self) -> bool:
        return self.clock_mhz is None

    @property
    def typical_power_mw(self) -> float:
        low, high = self.power_mw
        return (low + high) / 2.0

    def peak_power_efficiency(self) -> float:
        """GSOPS/W from the published numbers (best case: min power)."""
        if self.gsops_per_w is not None:
            return self.gsops_per_w
        if self.gsops is None:
            raise ConfigurationError(
                f"{self.name}: neither GSOPS/W nor GSOPS published"
            )
        return self.gsops / (self.power_mw[0] * 1e-3)


#: TrueNorth (Merolla et al. 2014; Cassidy et al. 2014): 4096 cores,
#: 1M neurons, 256M synapses, 28 nm CMOS, asynchronous.
TRUENORTH = ChipSpec(
    name="TrueNorth",
    model="SNN",
    memory="SRAM",
    technology="CMOS, 28 nm",
    clock_mhz=None,
    area_mm2=430.0,
    power_mw=(63.0, 300.0),
    gsops=58.0,
    gsops_per_w=400.0,
)

#: Tianjic (Pei et al. 2019): 156 cores, hybrid ANN/SNN, 28 nm CMOS.
TIANJIC = ChipSpec(
    name="Tianjic",
    model="Hybrid",
    memory="SRAM",
    technology="CMOS, 28 nm",
    clock_mhz=300.0,
    area_mm2=14.44,
    power_mw=(950.0, 950.0),
    gsops=None,
    gsops_per_w=649.0,
)

#: Loihi (Davies et al. 2018), for context: 14 nm, 128 cores, on-chip
#: learning.  Not part of the paper's Table 4 but useful in reports.
LOIHI = ChipSpec(
    name="Loihi",
    model="SNN",
    memory="SRAM",
    technology="CMOS, 14 nm",
    clock_mhz=None,
    area_mm2=60.0,
    power_mw=(74.0, 110.0),
    gsops=30.0,
    gsops_per_w=277.0,
)

#: SUSHI's published column of Table 4 (for paper-vs-measured reports).
SUSHI_PAPER = ChipSpec(
    name="SUSHI (paper)",
    model="SSNN",
    memory="-",
    technology="RSFQ, 2 um",
    clock_mhz=None,
    area_mm2=103.75,
    power_mw=(41.87, 41.87),
    gsops=1355.0,
    gsops_per_w=32366.0,
)


def all_baselines() -> Tuple[ChipSpec, ...]:
    """The chips of the paper's comparison (TrueNorth, Tianjic)."""
    return (TRUENORTH, TIANJIC)


def analytical_sops(avg_firing_rate_hz: float, active_synapses: float) -> float:
    """The standard SOPS model: ``avg.firing.rate x avg.active.synapses``
    (paper section 6.3, following Cassidy et al.)."""
    if avg_firing_rate_hz < 0 or active_synapses < 0:
        raise ConfigurationError("rates and synapse counts must be >= 0")
    return avg_firing_rate_hz * active_synapses
