"""The reverse-mode :class:`Tensor`.

Each operation records its parents and a backward closure; calling
:meth:`Tensor.backward` runs a topological sweep accumulating gradients.
Broadcasting follows numpy semantics, with gradients summed back to the
parent shapes (:func:`_unbroadcast`).
"""

from __future__ import annotations

import contextlib
from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import TrainingError

Scalar = Union[int, float]

_GRAD_ENABLED = [True]


@contextlib.contextmanager
def no_grad():
    """Context manager disabling graph construction (inference mode)."""
    _GRAD_ENABLED.append(False)
    try:
        yield
    finally:
        _GRAD_ENABLED.pop()


def _grad_enabled() -> bool:
    return _GRAD_ENABLED[-1]


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` (reverse of numpy broadcasting)."""
    if grad.shape == shape:
        return grad
    # Sum away leading dimensions added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum along axes that were 1 in the original shape.
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy array with an optional gradient and autodiff history."""

    __array_priority__ = 100  # so numpy defers to our __radd__ etc.

    def __init__(
        self,
        data: np.ndarray,
        requires_grad: bool = False,
        _parents: Tuple["Tensor", ...] = (),
        _backward: Optional[Callable[[np.ndarray], None]] = None,
        _op: str = "",
    ):
        self.data = np.asarray(data, dtype=np.float64)
        self.requires_grad = requires_grad and _grad_enabled()
        self.grad: Optional[np.ndarray] = None
        self._parents = _parents if self.requires_grad or _parents else ()
        self._backward = _backward
        self._op = _op

    # -- constructors -----------------------------------------------------

    @classmethod
    def from_array(cls, values, requires_grad: bool = False) -> "Tensor":
        return cls(np.asarray(values, dtype=np.float64), requires_grad)

    @classmethod
    def zeros(cls, *shape: int, requires_grad: bool = False) -> "Tensor":
        return cls(np.zeros(shape), requires_grad)

    @classmethod
    def ones(cls, *shape: int, requires_grad: bool = False) -> "Tensor":
        return cls(np.ones(shape), requires_grad)

    @classmethod
    def randn(
        cls, *shape: int, requires_grad: bool = False,
        scale: float = 1.0, seed: Optional[int] = None,
    ) -> "Tensor":
        rng = np.random.default_rng(seed)
        return cls(rng.standard_normal(shape) * scale, requires_grad)

    # -- shape properties ---------------------------------------------------

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def numpy(self) -> np.ndarray:
        """The underlying array (a copy, detached from the graph)."""
        return self.data.copy()

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        return Tensor(self.data.copy())

    # -- graph machinery -----------------------------------------------------

    def _make(self, data, parents, backward, op) -> "Tensor":
        requires = _grad_enabled() and any(p.requires_grad for p in parents)
        return Tensor(
            data,
            requires_grad=requires,
            _parents=parents if requires else (),
            _backward=backward if requires else None,
            _op=op,
        )

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Run the reverse sweep from this tensor.

        ``grad`` defaults to 1 for scalars; non-scalar roots require an
        explicit seed gradient.
        """
        if not self.requires_grad:
            raise TrainingError("backward() on a tensor without grad")
        if grad is None:
            if self.data.size != 1:
                raise TrainingError(
                    "backward() on a non-scalar requires an explicit gradient"
                )
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=np.float64)
        if not np.all(np.isfinite(self.data)):
            raise TrainingError(f"non-finite values in '{self._op}' output")

        topo: List[Tensor] = []
        visited = set()

        def build(node: "Tensor") -> None:
            if id(node) in visited:
                return
            visited.add(id(node))
            for parent in node._parents:
                build(parent)
            topo.append(node)

        build(self)
        # Reversed topological order guarantees every node is processed only
        # after all its children have contributed their gradients.
        grads = {id(self): grad}
        for node in reversed(topo):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node.requires_grad and not node._parents:
                node.grad = (
                    node_grad if node.grad is None else node.grad + node_grad
                )
            if node._backward is None:
                continue
            for parent, parent_grad in node._backward(node_grad):
                if not parent.requires_grad:
                    continue
                key = id(parent)
                grads[key] = (
                    grads[key] + parent_grad if key in grads else parent_grad
                )

    def zero_grad(self) -> None:
        self.grad = None

    # -- arithmetic ----------------------------------------------------------

    @staticmethod
    def _coerce(other) -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor.from_array(other)

    def __add__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data + other.data

        def backward(grad):
            return (
                (self, _unbroadcast(grad, self.shape)),
                (other, _unbroadcast(grad, other.shape)),
            )

        return self._make(out_data, (self, other), backward, "add")

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad):
            return ((self, -grad),)

        return self._make(-self.data, (self,), backward, "neg")

    def __sub__(self, other) -> "Tensor":
        return self + (-self._coerce(other))

    def __rsub__(self, other) -> "Tensor":
        return self._coerce(other) + (-self)

    def __mul__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data * other.data

        def backward(grad):
            return (
                (self, _unbroadcast(grad * other.data, self.shape)),
                (other, _unbroadcast(grad * self.data, other.shape)),
            )

        return self._make(out_data, (self, other), backward, "mul")

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data / other.data

        def backward(grad):
            return (
                (self, _unbroadcast(grad / other.data, self.shape)),
                (
                    other,
                    _unbroadcast(
                        -grad * self.data / (other.data ** 2), other.shape
                    ),
                ),
            )

        return self._make(out_data, (self, other), backward, "div")

    def __rtruediv__(self, other) -> "Tensor":
        return self._coerce(other) / self

    def __pow__(self, exponent: Scalar) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TrainingError("only scalar exponents are supported")
        out_data = self.data ** exponent

        def backward(grad):
            return ((self, grad * exponent * self.data ** (exponent - 1)),)

        return self._make(out_data, (self,), backward, "pow")

    def __matmul__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data @ other.data

        def backward(grad):
            return (
                (self, grad @ other.data.T),
                (other, self.data.T @ grad),
            )

        return self._make(out_data, (self, other), backward, "matmul")

    # -- reductions / shaping --------------------------------------------------

    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad):
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
            return ((self, np.broadcast_to(g, self.shape).copy()),)

        return self._make(out_data, (self,), backward, "sum")

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def reshape(self, *shape: int) -> "Tensor":
        out_data = self.data.reshape(*shape)

        def backward(grad):
            return ((self, grad.reshape(self.shape)),)

        return self._make(out_data, (self,), backward, "reshape")

    def transpose(self) -> "Tensor":
        out_data = self.data.T

        def backward(grad):
            return ((self, grad.T),)

        return self._make(out_data, (self,), backward, "transpose")

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def permute(self, *axes: int) -> "Tensor":
        """Reorder dimensions (general transpose)."""
        if len(axes) != self.ndim:
            raise TrainingError(
                f"permute needs {self.ndim} axes, got {len(axes)}"
            )
        inverse = np.argsort(axes)

        def backward(grad):
            return ((self, grad.transpose(inverse)),)

        return self._make(
            self.data.transpose(axes), (self,), backward, "permute"
        )

    def unfold2d(self, kernel: int, stride: int = 1) -> "Tensor":
        """im2col: extract sliding windows from a (B, C, H, W) tensor.

        Returns ``(B, OH*OW, C*kernel*kernel)`` patches where
        ``OH = (H - kernel) // stride + 1`` (no padding).  The backward
        pass scatter-adds gradients back to the overlapping windows --
        the core op behind :class:`repro.snn.conv.Conv2d`.
        """
        if self.ndim != 4:
            raise TrainingError("unfold2d expects a (B, C, H, W) tensor")
        if kernel < 1 or stride < 1:
            raise TrainingError("kernel and stride must be >= 1")
        batch, channels, height, width = self.shape
        if kernel > height or kernel > width:
            raise TrainingError("kernel larger than the input")
        out_h = (height - kernel) // stride + 1
        out_w = (width - kernel) // stride + 1
        windows = np.lib.stride_tricks.sliding_window_view(
            self.data, (kernel, kernel), axis=(2, 3)
        )[:, :, ::stride, ::stride]  # (B, C, OH, OW, k, k)
        out_data = windows.transpose(0, 2, 3, 1, 4, 5).reshape(
            batch, out_h * out_w, channels * kernel * kernel
        )

        def backward(grad):
            g = grad.reshape(batch, out_h, out_w, channels, kernel, kernel)
            dx = np.zeros_like(self.data)
            for i in range(kernel):
                for j in range(kernel):
                    dx[:, :, i:i + stride * out_h:stride,
                       j:j + stride * out_w:stride] += (
                        g[:, :, :, :, i, j].transpose(0, 3, 1, 2)
                    )
            return ((self, dx),)

        return self._make(out_data, (self,), backward, "unfold2d")

    # -- activations -------------------------------------------------------------

    def relu(self) -> "Tensor":
        mask = self.data > 0

        def backward(grad):
            return ((self, grad * mask),)

        return self._make(self.data * mask, (self,), backward, "relu")

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-np.clip(self.data, -60.0, 60.0)))

        def backward(grad):
            return ((self, grad * out_data * (1.0 - out_data)),)

        return self._make(out_data, (self,), backward, "sigmoid")

    def exp(self) -> "Tensor":
        out_data = np.exp(np.clip(self.data, -700.0, 700.0))

        def backward(grad):
            return ((self, grad * out_data),)

        return self._make(out_data, (self,), backward, "exp")

    def log(self) -> "Tensor":
        def backward(grad):
            return ((self, grad / self.data),)

        return self._make(np.log(self.data), (self,), backward, "log")

    def abs(self) -> "Tensor":
        sign = np.sign(self.data)

        def backward(grad):
            return ((self, grad * sign),)

        return self._make(np.abs(self.data), (self,), backward, "abs")

    def ste_sign(self) -> "Tensor":
        """Sign with the straight-through estimator backward pass.

        Forward: ``sign(x)`` (zeros map to +1).  Backward: the gradient
        passes through unchanged where ``|x| <= 1`` and is clipped to zero
        outside (the XNOR-Net binarization rule used for binarization-aware
        training, paper section 5.1).
        """
        mask = np.abs(self.data) <= 1.0
        out_data = np.where(self.data >= 0.0, 1.0, -1.0)

        def backward(grad):
            return ((self, grad * mask),)

        return self._make(out_data, (self,), backward, "ste_sign")

    def clip(self, low: float, high: float) -> "Tensor":
        mask = (self.data >= low) & (self.data <= high)

        def backward(grad):
            return ((self, grad * mask),)

        return self._make(
            np.clip(self.data, low, high), (self,), backward, "clip"
        )

    def __getitem__(self, index) -> "Tensor":
        """Slice / fancy-index with gradient scatter-add on backward."""
        out_data = self.data[index]

        def backward(grad):
            dx = np.zeros_like(self.data)
            np.add.at(dx, index, grad)
            return ((self, dx),)

        return self._make(out_data, (self,), backward, "getitem")

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Maximum reduction; gradient flows to the (first) argmax."""
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad):
            g = grad
            expanded = out_data
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
                expanded = np.expand_dims(out_data, axis)
            mask = (self.data == expanded)
            # Split gradient across ties to keep the sum rule exact.
            counts = mask.sum(axis=axis, keepdims=True) if axis is not None \
                else mask.sum()
            return ((self, mask * g / counts),)

        return self._make(out_data, (self,), backward, "max")

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Population variance built from differentiable primitives."""
        mean = self.mean(axis=axis, keepdims=True)
        centred = self - mean
        return (centred * centred).mean(axis=axis, keepdims=keepdims)

    def __repr__(self) -> str:
        grad = ", grad" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad}, op='{self._op or 'leaf'}')"


def concatenate(tensors: Sequence["Tensor"], axis: int = 0) -> "Tensor":
    """Concatenate tensors along ``axis`` (gradient splits back)."""
    if not tensors:
        raise TrainingError("concatenate needs at least one tensor")
    tensors = [t if isinstance(t, Tensor) else Tensor.from_array(t)
               for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad):
        moved = np.moveaxis(grad, axis, 0)
        grads = []
        for tensor, start, end in zip(tensors, offsets, offsets[1:]):
            grads.append(
                (tensor, np.moveaxis(moved[start:end], 0, axis))
            )
        return tuple(grads)

    requires = _grad_enabled() and any(t.requires_grad for t in tensors)
    return Tensor(
        out_data,
        requires_grad=requires,
        _parents=tuple(tensors) if requires else (),
        _backward=backward if requires else None,
        _op="concatenate",
    )


def stack(tensors: Sequence["Tensor"], axis: int = 0) -> "Tensor":
    """Stack tensors along a new axis."""
    if not tensors:
        raise TrainingError("stack needs at least one tensor")
    expanded = []
    for t in tensors:
        t = t if isinstance(t, Tensor) else Tensor.from_array(t)
        shape = list(t.shape)
        shape.insert(axis if axis >= 0 else len(shape) + 1 + axis, 1)
        expanded.append(t.reshape(*shape))
    return concatenate(expanded, axis=axis)
