"""Losses and classification helpers built on :class:`Tensor`."""

from __future__ import annotations

import numpy as np

from repro.autograd.tensor import Tensor
from repro.errors import TrainingError


def softmax(logits: Tensor, axis: int = -1) -> Tensor:
    """Numerically-stable softmax along ``axis``."""
    shifted = logits - Tensor.from_array(
        logits.data.max(axis=axis, keepdims=True)
    )
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(logits: Tensor, axis: int = -1) -> Tensor:
    """Numerically-stable log-softmax along ``axis``."""
    shifted = logits - Tensor.from_array(
        logits.data.max(axis=axis, keepdims=True)
    )
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def one_hot(labels: np.ndarray, num_classes: int) -> Tensor:
    """Integer labels -> one-hot float matrix (no gradient)."""
    labels = np.asarray(labels, dtype=np.int64)
    if labels.ndim != 1:
        raise TrainingError("labels must be a 1-D integer array")
    if labels.min(initial=0) < 0 or labels.max(initial=0) >= num_classes:
        raise TrainingError(
            f"labels out of range for {num_classes} classes"
        )
    eye = np.zeros((labels.size, num_classes))
    eye[np.arange(labels.size), labels] = 1.0
    return Tensor.from_array(eye)


def cross_entropy(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Mean cross-entropy between row logits and integer labels."""
    if logits.ndim != 2:
        raise TrainingError("cross_entropy expects (batch, classes) logits")
    targets = one_hot(labels, logits.shape[1])
    return -(log_softmax(logits) * targets).sum(axis=1).mean()


def mse_loss(prediction: Tensor, target: Tensor) -> Tensor:
    """Mean squared error."""
    diff = prediction - target
    return (diff * diff).mean()
