"""The Heaviside step with surrogate gradients.

The spike decision ``S = Theta(H - V_th)`` (paper equation (2)) has zero
gradient almost everywhere, so surrogate-gradient training replaces the
backward pass with a smooth pseudo-derivative while keeping the exact step
in the forward pass.  These are the two surrogates commonly used by
SpikingJelly-trained networks.
"""

from __future__ import annotations

import numpy as np

from repro.autograd.tensor import Tensor
from repro.errors import ConfigurationError


class SigmoidSurrogate:
    """Backward: derivative of ``sigmoid(alpha * x)``."""

    def __init__(self, alpha: float = 4.0):
        if alpha <= 0:
            raise ConfigurationError("surrogate alpha must be positive")
        self.alpha = alpha

    def gradient(self, x: np.ndarray) -> np.ndarray:
        s = 1.0 / (1.0 + np.exp(-np.clip(self.alpha * x, -60.0, 60.0)))
        return self.alpha * s * (1.0 - s)


class ArctanSurrogate:
    """Backward: derivative of ``(1/pi) * arctan(pi * alpha * x / 2)``."""

    def __init__(self, alpha: float = 2.0):
        if alpha <= 0:
            raise ConfigurationError("surrogate alpha must be positive")
        self.alpha = alpha

    def gradient(self, x: np.ndarray) -> np.ndarray:
        return (self.alpha / 2.0) / (
            1.0 + (np.pi * self.alpha * x / 2.0) ** 2
        )


def heaviside(x: Tensor, surrogate=None) -> Tensor:
    """Exact step forward; surrogate pseudo-derivative backward.

    Args:
        x: Pre-threshold values (typically ``membrane - V_th``).
        surrogate: A surrogate object with a ``gradient(ndarray)`` method;
            defaults to :class:`ArctanSurrogate`.
    """
    surrogate = surrogate or ArctanSurrogate()
    out_data = (x.data >= 0.0).astype(np.float64)

    def backward(grad):
        return ((x, grad * surrogate.gradient(x.data)),)

    return x._make(out_data, (x,), backward, "heaviside")
