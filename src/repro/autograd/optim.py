"""Gradient-descent optimisers over :class:`~repro.autograd.tensor.Tensor`
parameters.  Adam matches the paper's training setup (section 6: "We use
adam as the optimizer, with a learning rate of 1e-3")."""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from repro.autograd.tensor import Tensor
from repro.errors import ConfigurationError, TrainingError


class Optimizer:
    """Base optimiser: holds parameters, zeroes and applies gradients."""

    def __init__(self, parameters: Iterable[Tensor], lr: float):
        self.parameters: List[Tensor] = list(parameters)
        if not self.parameters:
            raise ConfigurationError("optimizer needs at least one parameter")
        if lr <= 0:
            raise ConfigurationError("learning rate must be positive")
        if any(not p.requires_grad for p in self.parameters):
            raise ConfigurationError(
                "all optimised parameters must require gradients"
            )
        self.lr = lr

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    def _grads(self) -> List[np.ndarray]:
        grads = []
        for p in self.parameters:
            if p.grad is None:
                raise TrainingError(
                    "parameter has no gradient; call backward() before step()"
                )
            grads.append(p.grad)
        return grads


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, parameters: Iterable[Tensor], lr: float = 0.01,
                 momentum: float = 0.0):
        super().__init__(parameters, lr)
        if not 0.0 <= momentum < 1.0:
            raise ConfigurationError("momentum must be in [0, 1)")
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for p, v, g in zip(self.parameters, self._velocity, self._grads()):
            if self.momentum:
                v *= self.momentum
                v += g
                update = v
            else:
                update = g
            p.data -= self.lr * update


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2017) -- the paper's optimiser."""

    def __init__(
        self,
        parameters: Iterable[Tensor],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
    ):
        super().__init__(parameters, lr)
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ConfigurationError("betas must be in [0, 1)")
        self.beta1, self.beta2, self.eps = beta1, beta2, eps
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        b1, b2 = self.beta1, self.beta2
        bias1 = 1.0 - b1 ** self._t
        bias2 = 1.0 - b2 ** self._t
        for p, m, v, g in zip(self.parameters, self._m, self._v, self._grads()):
            m *= b1
            m += (1.0 - b1) * g
            v *= b2
            v += (1.0 - b2) * g * g
            m_hat = m / bias1
            v_hat = v / bias2
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
