"""Reverse-mode automatic differentiation on numpy.

A compact autodiff engine standing in for the PyTorch substrate that
SpikingJelly (the paper's SNN framework) runs on.  It provides exactly what
surrogate-gradient SNN training needs: broadcast-aware tensor arithmetic,
matmul, reductions, activations, the Heaviside step with configurable
surrogate gradients, softmax losses, and SGD/Adam optimisers.

Example::

    from repro.autograd import Tensor

    w = Tensor.randn(3, 2, requires_grad=True, seed=0)
    x = Tensor.from_array([[1.0, 2.0, 3.0]])
    loss = (x @ w).sum()
    loss.backward()
    assert w.grad.shape == (3, 2)
"""

from repro.autograd.tensor import Tensor, concatenate, no_grad, stack
from repro.autograd.functional import (
    cross_entropy,
    log_softmax,
    mse_loss,
    one_hot,
    softmax,
)
from repro.autograd.surrogate import (
    ArctanSurrogate,
    SigmoidSurrogate,
    heaviside,
)
from repro.autograd.optim import SGD, Adam, Optimizer

__all__ = [
    "Tensor",
    "no_grad",
    "concatenate",
    "stack",
    "cross_entropy",
    "log_softmax",
    "mse_loss",
    "one_hot",
    "softmax",
    "ArctanSurrogate",
    "SigmoidSurrogate",
    "heaviside",
    "SGD",
    "Adam",
    "Optimizer",
]
