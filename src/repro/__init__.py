"""SUSHI reproduction: a superconducting SFQ neuromorphic chip in Python.

This package reproduces *SUSHI: Ultra-High-Speed and Ultra-Low-Power
Neuromorphic Chip Using Superconducting Single-Flux-Quantum Circuits*
(Liu et al., MICRO 2023), end to end:

* :mod:`repro.rsfq` -- discrete-event simulator of RSFQ standard cells
  (JTL/SPL/CB/DFF/NDRO/TFF) with Table 1 timing-constraint checking;
* :mod:`repro.neuro` -- the SUSHI architecture: state controllers, NPEs
  (SC-chain ripple counters holding the membrane in flux states),
  pulse-gain weight structures, and the mesh chip, each in behavioural and
  gate-level form;
* :mod:`repro.autograd` / :mod:`repro.snn` -- a from-scratch SNN training
  stack (reverse-mode autodiff, IF neurons, surrogate gradients, Poisson
  coding, Adam, XNOR binarization);
* :mod:`repro.ssnn` -- the SSNN methodology: synapse reordering/bucketing,
  the bit-slice method, pulse-stream encoding, the chip runtime, and the
  compile-once serving pipeline (compiled plans, plan cache, persistent
  shared-memory inference pool);
* :mod:`repro.serve` -- the adaptive micro-batching inference server
  (see docs/SERVING.md);
* :mod:`repro.resources` / :mod:`repro.baselines` -- calibrated resource,
  power and throughput models plus TrueNorth/Tianjic baselines;
* :mod:`repro.data` -- synthetic MNIST/Fashion stand-in datasets;
* :mod:`repro.harness` -- one experiment runner per paper table/figure.

Quickstart::

    from repro import (SpikingClassifier, Trainer, TrainerConfig,
                       binarize_network, SushiRuntime, load_digits)

    data = load_digits(train_size=500, test_size=100)
    model = SpikingClassifier.mlp(hidden_size=64, binary_aware=True)
    Trainer(model, TrainerConfig(epochs=5)).fit(
        data.train_images, data.train_labels)
    network = binarize_network(model)
    # ... encode spikes and run them on the chip model via SushiRuntime.
"""

from repro.data import Dataset, load_digits, load_fashion
from repro.neuro import (
    BehavioralChip,
    BehavioralNPE,
    ChipConfig,
    GateLevelChip,
    GateLevelNPE,
    Polarity,
)
from repro.resources import (
    PerformanceModel,
    PowerModel,
    estimate_resources,
)
from repro.snn import (
    SpikingClassifier,
    Trainer,
    TrainerConfig,
    accuracy,
    binarize_network,
    consistency,
    quantize_network,
)
from repro.serve import InferenceServer
from repro.ssnn import (
    CompiledNetwork,
    InferencePool,
    PlanCache,
    SushiRuntime,
    compile_network,
    encode_inference,
    plan_network,
)

__version__ = "1.1.0"

__all__ = [
    "Dataset",
    "load_digits",
    "load_fashion",
    "BehavioralChip",
    "BehavioralNPE",
    "ChipConfig",
    "GateLevelChip",
    "GateLevelNPE",
    "Polarity",
    "PerformanceModel",
    "PowerModel",
    "estimate_resources",
    "SpikingClassifier",
    "Trainer",
    "TrainerConfig",
    "accuracy",
    "binarize_network",
    "consistency",
    "quantize_network",
    "SushiRuntime",
    "encode_inference",
    "plan_network",
    "CompiledNetwork",
    "PlanCache",
    "compile_network",
    "InferencePool",
    "InferenceServer",
    "__version__",
]
