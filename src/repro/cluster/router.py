"""Failure-aware request routing across pool nodes.

:class:`ClusterRouter` owns the node roster and the consistent-hash
ring, and turns "run this row block somewhere" into a concrete node
choice with three guarantees:

1. **Plan affinity.**  The default affinity key is the compiled plan's
   :func:`~repro.ssnn.compile.network_fingerprint` combined with a
   content digest of the row block, so identical requests route to the
   same node (warm caches, stable shard behaviour) while the key
   population spreads evenly (see :mod:`repro.cluster.ring`).
2. **Failure-aware selection.**  The affinity owner is used only while
   *healthy* (reachable and breaker not open); otherwise the dispatch
   falls through the ring's preference order, and when no healthy node
   exists, to the **least-loaded** reachable node (an open-breaker node
   still answers bit-identically via its serial path).
3. **Exactly-once re-dispatch.**  A node that fails *during* execution
   (dead or partitioned mid-call -- :class:`NodeUnavailableError`) is
   evicted or quarantined and the request is re-dispatched **once** to
   the next healthy node.  If that also fails -- or no node is left --
   the router answers serially from its own plan reference.  Every
   path returns exactly ``compiled.forward_rows(rows)``; node failure
   can add latency, never wrong answers.

Membership lifecycle: :meth:`join` (ring insert), :meth:`leave`
(drain-before-retire: ring removal first so no new work arrives, then
wait for in-flight, then retire), :meth:`evict` (abrupt removal for
dead nodes, pool reaped in the background) and :meth:`probe_all`
(health sweep: partitioned nodes are *quarantined* -- out of the ring
but kept on the roster so a healed partition rejoins; dead nodes are
evicted).  Every ring change increments the ``rebalances`` counter
exported on ``/metrics``.
"""

from __future__ import annotations

import hashlib
import threading
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.cluster.node import ACTIVE, DEAD, NodeUnavailableError, PoolNode
from repro.cluster.ring import ConsistentHashRing
from repro.serve.metrics import MetricFamily
from repro.ssnn.compile import CompiledNetwork

CLUSTER_SCHEMA = "repro.cluster/v1"


class ClusterUnavailableError(RuntimeError):
    """No node answered and the router has no serial fallback plan."""


class ClusterRouter:
    """Consistent-hash dispatch with health-based fallback and retry.

    Args:
        compiled: The plan the cluster serves; also the router's serial
            last-resort executor, so answers survive total node loss.
        replicas: Virtual points per node on the hash ring.
    """

    def __init__(self, compiled: CompiledNetwork, *, replicas: int = 64):
        self.compiled = compiled
        self._ring = ConsistentHashRing(replicas=replicas)
        self._nodes: Dict[str, PoolNode] = {}
        self._lock = threading.Lock()
        # Dispatch counters (all monotonic).
        self.dispatches = 0
        self.affinity_hits = 0
        self.fallbacks = 0
        self.retries = 0
        self.serial_fallbacks = 0
        # Membership counters.
        self.rebalances = 0
        self.evictions = 0
        self.quarantines = 0
        self.rejoins = 0

    # -- membership ----------------------------------------------------------

    def join(self, node: PoolNode) -> PoolNode:
        """Add ``node`` to the roster and the ring (idempotent)."""
        with self._lock:
            if node.node_id in self._nodes:
                return node
            self._nodes[node.node_id] = node
            self._ring.add(node.node_id)
            self.rebalances += 1
        return node

    def leave(self, node_id: str, timeout: float = 30.0) -> bool:
        """Graceful removal: de-ring first (no new work), drain
        in-flight calls, retire the pool, drop from the roster.
        Returns ``True`` when the drain completed inside ``timeout``."""
        with self._lock:
            node = self._nodes.get(node_id)
            if node is None:
                return True
            if node_id in self._ring:
                self._ring.remove(node_id)
                self.rebalances += 1
        drained = node.drain(timeout=timeout)
        node.retire()
        with self._lock:
            self._nodes.pop(node_id, None)
        return drained

    def evict(self, node_id: str) -> None:
        """Abrupt removal of a dead node: out of the ring immediately;
        the node object stays on the roster (state ``dead``) for
        observability and its pool is reaped in the background."""
        with self._lock:
            node = self._nodes.get(node_id)
            if node is None:
                return
            if node_id in self._ring:
                self._ring.remove(node_id)
                self.rebalances += 1
            self.evictions += 1
        threading.Thread(
            target=node.retire, name=f"reap-{node_id}", daemon=True
        ).start()

    def probe_all(self) -> Dict[str, bool]:
        """Health sweep: quarantine unreachable nodes (out of the ring,
        kept on the roster), rejoin healed ones, evict the dead.
        Returns ``{node_id: reachable}``."""
        with self._lock:
            roster = list(self._nodes.items())
        verdicts: Dict[str, bool] = {}
        for node_id, node in roster:
            reachable = node.probe()
            verdicts[node_id] = reachable
            with self._lock:
                in_ring = node_id in self._ring
                if reachable and not in_ring and node.state == ACTIVE:
                    self._ring.add(node_id)
                    self.rebalances += 1
                    self.rejoins += 1
                elif not reachable and in_ring:
                    self._ring.remove(node_id)
                    self.rebalances += 1
                    if node.state == DEAD:
                        self.evictions += 1
                    else:
                        self.quarantines += 1
            if node.state == DEAD:
                threading.Thread(
                    target=node.retire, name=f"reap-{node_id}", daemon=True,
                ).start()
        return verdicts

    def shutdown(self) -> None:
        """Retire every node (test/CLI teardown)."""
        with self._lock:
            roster = list(self._nodes.values())
            self._nodes.clear()
            for node_id in self._ring.node_ids:
                self._ring.remove(node_id)
        for node in roster:
            node.retire()

    # -- accessors -----------------------------------------------------------

    def node(self, node_id: str) -> Optional[PoolNode]:
        with self._lock:
            return self._nodes.get(node_id)

    def node_ids(self) -> Tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._nodes))

    def routable_nodes(self) -> List[PoolNode]:
        """Nodes currently accepting new dispatches."""
        with self._lock:
            return [n for n in self._nodes.values() if n.dispatchable]

    def alive_count(self) -> int:
        return len(self.routable_nodes())

    # -- dispatch ------------------------------------------------------------

    def affinity_key(self, rows: np.ndarray) -> str:
        """Plan-affine content key: fingerprint + row-block digest."""
        digest = hashlib.sha256(
            np.ascontiguousarray(rows, dtype=np.float64).tobytes()
        ).hexdigest()[:16]
        return f"{self.compiled.fingerprint}:{digest}"

    def _select(
        self, key: str, exclude: Tuple[str, ...] = ()
    ) -> Tuple[Optional[PoolNode], bool]:
        """Pick the execution node for ``key``.

        Returns ``(node, affine)``: the first *healthy* node in ring
        preference order (``affine`` when it is the key's owner), else
        the least-loaded merely-*dispatchable* node, else ``None``
        (caller answers serially).
        """
        with self._lock:
            preference = self._ring.preference(key)
            candidates = [
                self._nodes[node_id]
                for node_id in preference
                if node_id in self._nodes and node_id not in exclude
            ]
            healthy = [n for n in candidates if n.healthy]
            if healthy:
                node = healthy[0]
                return node, bool(preference) and (
                    node.node_id == preference[0]
                )
            dispatchable = [
                n for n in self._nodes.values()
                if n.dispatchable and n.node_id not in exclude
            ]
            if dispatchable:
                return min(dispatchable, key=lambda n: n.load()), False
            return None, False

    def dispatch(
        self, rows: np.ndarray, key: Optional[str] = None
    ) -> Tuple[np.ndarray, int, int]:
        """Execute ``rows`` on the cluster; bit-identical to serial
        ``compiled.forward_rows`` in every failure combination."""
        rows = np.ascontiguousarray(rows, dtype=np.float64)
        if rows.ndim != 2 or rows.shape[1] != self.compiled.in_features:
            raise ConfigurationError(
                f"expected (batch, {self.compiled.in_features}) rows, "
                f"got {rows.shape}"
            )
        if key is None:
            key = self.affinity_key(rows)
        with self._lock:
            self.dispatches += 1
        failed: List[str] = []
        # First choice + exactly one re-dispatch, then serial.
        for attempt in range(2):
            node, affine = self._select(key, exclude=tuple(failed))
            if node is None:
                break
            try:
                result = node.infer_rows(rows)
            except NodeUnavailableError:
                failed.append(node.node_id)
                self._note_unavailable(node)
                with self._lock:
                    self.retries += 1
                continue
            with self._lock:
                if affine:
                    self.affinity_hits += 1
                else:
                    self.fallbacks += 1
            return result
        with self._lock:
            self.serial_fallbacks += 1
        return self.compiled.forward_rows(rows)

    def _note_unavailable(self, node: PoolNode) -> None:
        """A node failed during execution: take it out of rotation --
        quarantine if partitioned (it may heal), evict if dead."""
        with self._lock:
            in_ring = node.node_id in self._ring
            if in_ring:
                self._ring.remove(node.node_id)
                self.rebalances += 1
            if node.state == DEAD:
                self.evictions += 1
            elif in_ring:
                self.quarantines += 1
        if node.state == DEAD:
            threading.Thread(
                target=node.retire, name=f"reap-{node.node_id}", daemon=True,
            ).start()

    # -- observability -------------------------------------------------------

    def stats(self) -> Dict:
        """Cluster-wide snapshot (schema ``repro.cluster/v1``)."""
        with self._lock:
            nodes = dict(self._nodes)
            counters = {
                "dispatches": self.dispatches,
                "affinity_hits": self.affinity_hits,
                "fallbacks": self.fallbacks,
                "retries": self.retries,
                "serial_fallbacks": self.serial_fallbacks,
                "rebalances": self.rebalances,
                "evictions": self.evictions,
                "quarantines": self.quarantines,
                "rejoins": self.rejoins,
            }
            ring_ids = set(self._ring.node_ids)
        states: Dict[str, int] = {}
        per_node = {}
        for node_id, node in sorted(nodes.items()):
            states[node.state] = states.get(node.state, 0) + 1
            per_node[node_id] = {
                "state": node.state,
                "partitioned": node.partitioned,
                "in_ring": node_id in ring_ids,
                "breaker": node.breaker.state,
                "workers_alive": node.alive_workers(),
                "restarts": node.restarts(),
                "inflight": node.load(),
                "dispatches": node.metrics.requests,
            }
        return {
            "schema": CLUSTER_SCHEMA,
            "plan": self.compiled.fingerprint,
            "nodes_total": len(nodes),
            "nodes_routable": sum(
                1 for n in nodes.values() if n.dispatchable
            ),
            "node_states": states,
            "counters": counters,
            "per_node": per_node,
        }

    def metric_families(self, namespace: str = "sushi") -> List[MetricFamily]:
        """Cluster gauges/counters for Prometheus text exposition --
        appended to the gateway's ``/metrics`` (see docs/CLUSTER.md)."""
        from repro.serve.metrics import BREAKER_STATES

        snap = self.stats()
        n = namespace
        state_samples = [
            ({"state": state}, snap["node_states"].get(state, 0))
            for state in (ACTIVE, "draining", "retired", DEAD)
        ]
        breaker_samples = []
        workers_samples = []
        inflight_samples = []
        dispatch_samples = []
        for node_id, entry in snap["per_node"].items():
            for state in BREAKER_STATES:
                breaker_samples.append((
                    {"node": node_id, "state": state},
                    1.0 if entry["breaker"] == state else 0.0,
                ))
            workers_samples.append(({"node": node_id},
                                    entry["workers_alive"]))
            inflight_samples.append(({"node": node_id}, entry["inflight"]))
            dispatch_samples.append(({"node": node_id},
                                     entry["dispatches"]))
        counters = snap["counters"]
        return [
            (f"{n}_cluster_nodes", "gauge",
             "Cluster nodes by lifecycle state", state_samples),
            (f"{n}_cluster_nodes_routable", "gauge",
             "Nodes currently accepting dispatches",
             [(None, snap["nodes_routable"])]),
            (f"{n}_cluster_node_breaker_state", "gauge",
             "Per-node circuit breaker state (one-hot)",
             breaker_samples or [(None, 0)]),
            (f"{n}_cluster_node_workers_alive", "gauge",
             "Per-node live pool workers",
             workers_samples or [(None, 0)]),
            (f"{n}_cluster_node_inflight", "gauge",
             "Per-node row blocks executing now",
             inflight_samples or [(None, 0)]),
            (f"{n}_cluster_node_dispatches_total", "counter",
             "Per-node row blocks dispatched",
             dispatch_samples or [(None, 0)]),
            (f"{n}_cluster_dispatches_total", "counter",
             "Row blocks dispatched through the router",
             [(None, counters["dispatches"])]),
            (f"{n}_cluster_affinity_hits_total", "counter",
             "Dispatches served by the consistent-hash owner",
             [(None, counters["affinity_hits"])]),
            (f"{n}_cluster_fallbacks_total", "counter",
             "Dispatches routed around an unhealthy affinity owner",
             [(None, counters["fallbacks"])]),
            (f"{n}_cluster_retries_total", "counter",
             "Requests re-dispatched after a node failed mid-call",
             [(None, counters["retries"])]),
            (f"{n}_cluster_serial_fallbacks_total", "counter",
             "Row blocks answered serially by the router itself",
             [(None, counters["serial_fallbacks"])]),
            (f"{n}_cluster_rebalances_total", "counter",
             "Consistent-hash ring membership changes",
             [(None, counters["rebalances"])]),
            (f"{n}_cluster_evictions_total", "counter",
             "Dead nodes removed from rotation",
             [(None, counters["evictions"])]),
            (f"{n}_cluster_quarantines_total", "counter",
             "Partitioned nodes taken out of the ring",
             [(None, counters["quarantines"])]),
            (f"{n}_cluster_rejoins_total", "counter",
             "Healed nodes re-inserted into the ring",
             [(None, counters["rejoins"])]),
        ]

    def __repr__(self) -> str:
        with self._lock:
            total = len(self._nodes)
        return (f"<ClusterRouter nodes={total} "
                f"routable={self.alive_count()} "
                f"dispatches={self.dispatches} retries={self.retries} "
                f"plan={self.compiled.fingerprint[:12]}>")
