"""One cluster node: a private supervised pool + breaker + gauges.

A :class:`PoolNode` is the unit the cluster scales and kills: an
independent :class:`~repro.ssnn.pool.InferencePool` process group (its
shared-memory segment names embed the pool instance, so namespaces
never collide across nodes), guarded by the node's *own*
:class:`~repro.serve.breaker.CircuitBreaker` and observed through its
own :class:`~repro.serve.metrics.MetricsRecorder` -- the same
supervision surface :class:`~repro.serve.server.InferenceServer` wraps
around a single pool, replicated per node.

Execution contract: :meth:`PoolNode.infer_rows` is bit-identical to
serial :meth:`CompiledNetwork.forward_rows` in every reachable state --
the pool path inherits the PR 5 exactly-once shard ledger, breaker-open
and poison-quarantined blocks run serially on the node, and a node that
cannot answer **raises** :class:`NodeUnavailableError` instead of ever
returning a degraded answer.  The router's retry logic
(:mod:`repro.cluster.router`) leans on that: an unavailable node loses
the request, never corrupts it.

Lifecycle::

    active --drain()--> draining --retire()--> retired
       \\--kill()--> dead (chaos: abrupt host death, answers lost)

``draining`` stops *new* dispatches (the router checks
:attr:`dispatchable`) while in-flight calls finish; :meth:`drain`
blocks until the last one resolves -- the scale-down handshake.
:meth:`kill` models a dead host: the worker processes are SIGKILLed,
the node flag flips immediately, and any in-flight call raises (its
answer died with the host) so the router re-dispatches it.
:meth:`partition` models a network split: the node is healthy but
unreachable -- probes fail and dispatches raise -- until
:meth:`heal_partition`.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.serve.breaker import CircuitBreaker
from repro.serve.metrics import MetricsRecorder, ServerStats
from repro.ssnn.compile import CompiledNetwork
from repro.ssnn.pool import InferencePool, PoisonBatchError

ACTIVE = "active"
DRAINING = "draining"
RETIRED = "retired"
DEAD = "dead"


class NodeUnavailableError(RuntimeError):
    """The node cannot answer (dead, partitioned, retired).

    The request itself is intact -- the router re-dispatches it to a
    healthy node exactly once (see
    :meth:`repro.cluster.router.ClusterRouter.dispatch`).
    """


class PoolNode:
    """One independent pool "machine" behind the cluster router.

    Args:
        node_id: Stable identity on the consistent-hash ring.
        compiled: The plan this node serves (all nodes of a cluster
            share one plan object in-process; each pool worker gets its
            own pickled copy).
        workers: Pool worker processes; ``0``/``1`` serve serially in
            the caller's process (cheap nodes for routing-only tests).
        breaker: Node-local circuit breaker (default thresholds when
            omitted; inject a fake-clock breaker in tests).
        start_method / result_timeout_s / chaos_hook: Forwarded to the
            node's :class:`~repro.ssnn.pool.InferencePool`.
    """

    _DEGRADE_ERRORS = (ImportError, OSError, PermissionError, RuntimeError)

    def __init__(
        self,
        node_id: str,
        compiled: CompiledNetwork,
        *,
        workers: int = 2,
        breaker: Optional[CircuitBreaker] = None,
        start_method: Optional[str] = None,
        result_timeout_s: float = 60.0,
        chaos_hook: Optional[Callable] = None,
    ):
        if workers < 0:
            raise ConfigurationError("workers must be >= 0")
        self.node_id = node_id
        self.compiled = compiled
        self.workers = workers
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        self.metrics = MetricsRecorder()
        self._lock = threading.Lock()
        self._drained = threading.Condition(self._lock)
        self._state = ACTIVE
        self._partitioned = False
        self._inflight = 0
        self._pool: Optional[InferencePool] = None
        if workers > 1:
            try:
                self._pool = InferencePool(
                    compiled,
                    workers=workers,
                    start_method=start_method,
                    result_timeout_s=result_timeout_s,
                    chaos_hook=chaos_hook,
                )
            except self._DEGRADE_ERRORS:
                self._pool = None  # serve serially; the node stays up

    # -- state ---------------------------------------------------------------

    @property
    def state(self) -> str:
        return self._state

    @property
    def partitioned(self) -> bool:
        return self._partitioned

    @property
    def dispatchable(self) -> bool:
        """May the router send *new* work here right now?"""
        return (self._state == ACTIVE and not self._partitioned)

    @property
    def healthy(self) -> bool:
        """Dispatchable and not degraded (breaker not open) -- the
        router's first-choice filter; a node with an open breaker still
        answers correctly (serial fallback) but should shed affinity to
        nodes whose pools are whole."""
        return self.dispatchable and self.breaker.state != "open"

    def load(self) -> int:
        """Row blocks currently executing here (least-loaded metric)."""
        return self._inflight

    def probe(self) -> bool:
        """Reachability probe: can the router still talk to this node?

        ``False`` for dead, retired and partitioned nodes.  Pool worker
        deaths do *not* fail the probe -- the pool resurrects its own
        workers on the next call (PR 5), and breaker state is reported
        separately through :meth:`stats`.
        """
        return self._state in (ACTIVE, DRAINING) and not self._partitioned

    # -- execution -----------------------------------------------------------

    def infer_rows(self, rows: np.ndarray) -> Tuple[np.ndarray, int, int]:
        """Serve one row block, bit-identical to serial
        ``compiled.forward_rows`` -- or raise
        :class:`NodeUnavailableError` without consuming the request."""
        with self._lock:
            self._check_available()
            self._inflight += 1
        self.metrics.record_submit()
        start = time.monotonic()
        try:
            result = self._forward(rows)
            # A node that died mid-call lost its answer with the host:
            # report unavailable so the router re-dispatches, rather
            # than returning a result "from" a dead machine.
            self._check_available()
            self.metrics.record_batch(
                rows.shape[0], result[2],
                [(time.monotonic() - start) * 1000.0],
            )
            return result
        except NodeUnavailableError:
            self.metrics.record_failure()
            raise
        finally:
            with self._lock:
                self._inflight -= 1
                self._drained.notify_all()

    def _check_available(self) -> None:
        if self._state == DEAD:
            raise NodeUnavailableError(f"node {self.node_id} is dead")
        if self._state == RETIRED:
            raise NodeUnavailableError(f"node {self.node_id} is retired")
        if self._partitioned:
            raise NodeUnavailableError(
                f"node {self.node_id} is partitioned from the router"
            )

    def _forward(self, rows: np.ndarray) -> Tuple[np.ndarray, int, int]:
        """The breaker-guarded pool path with serial fallback -- the
        same failure semantics as ``InferenceServer._forward``, scoped
        to this node."""
        pool = self._pool
        if pool is not None and not pool.closed and self.breaker.allow():
            try:
                result = pool.infer_rows(rows)
            except PoisonBatchError:
                self.breaker.record_success()
                self.metrics.record_poison()
            except self._DEGRADE_ERRORS:
                if self._state == DEAD:
                    raise NodeUnavailableError(
                        f"node {self.node_id} died mid-call"
                    )
                self.breaker.record_failure()
                self.metrics.record_pool_failure()
            else:
                self.breaker.record_success()
                return result
        return self.compiled.forward_rows(rows)

    # -- lifecycle -----------------------------------------------------------

    def drain(self, timeout: float = 30.0) -> bool:
        """Stop accepting new dispatches and wait for in-flight calls.
        Idempotent; returns ``True`` once the node is quiescent."""
        with self._lock:
            if self._state == ACTIVE:
                self._state = DRAINING
            deadline = time.monotonic() + timeout
            while self._inflight > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._drained.wait(timeout=remaining)
            return True

    def retire(self) -> None:
        """Shut the node down cleanly (drain first for zero loss).
        Idempotent; a dead node can also be retired (reaps the pool)."""
        with self._lock:
            if self._state == RETIRED:
                return
            if self._state != DEAD:
                self._state = RETIRED
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.close()

    def kill(self) -> None:
        """Chaos: abrupt whole-node death (host power-off).  Worker
        processes are SIGKILLed, in-flight answers are lost (their
        calls raise :class:`NodeUnavailableError`), and the node never
        serves again.  Call :meth:`retire` afterwards to reap the pool
        resources."""
        self._state = DEAD
        pool = self._pool
        if pool is not None:
            for proc in list(pool._procs):
                try:
                    proc.kill()
                except Exception:
                    pass

    def partition(self) -> None:
        """Chaos: the node becomes unreachable (probes and dispatches
        fail) while its processes stay healthy."""
        self._partitioned = True

    def heal_partition(self) -> None:
        self._partitioned = False

    # -- observability -------------------------------------------------------

    def alive_workers(self) -> int:
        pool = self._pool
        return pool.alive_workers() if pool is not None else 0

    def restarts(self) -> int:
        pool = self._pool
        return pool.restarts if pool is not None else 0

    def stats(self) -> ServerStats:
        pool = self._pool
        return self.metrics.snapshot(
            breaker_state=self.breaker.state,
            workers_configured=(self.workers if pool is not None else 0),
            workers_alive=self.alive_workers(),
            worker_restarts=self.restarts(),
            queue_depth=self._inflight,
        )

    def health(self) -> Dict:
        """Point-in-time node health (``repro.cluster.node/v1``)."""
        return {
            "schema": "repro.cluster.node/v1",
            "node_id": self.node_id,
            "state": self._state,
            "partitioned": self._partitioned,
            "dispatchable": self.dispatchable,
            "healthy": self.healthy,
            "inflight": self._inflight,
            "breaker": self.breaker.snapshot().to_dict(),
            "stats": self.stats().to_dict(),
        }

    def __enter__(self) -> "PoolNode":
        return self

    def __exit__(self, *exc) -> None:
        self.retire()

    def __repr__(self) -> str:
        mode = (f"pool[{self.workers}]" if self._pool is not None
                else "serial")
        return (f"<PoolNode {self.node_id} {self._state} {mode} "
                f"breaker={self.breaker.state} "
                f"inflight={self._inflight}>")
