"""Consistent-hash ring for plan-affine request routing.

The cluster routes requests by *affinity key* -- the compiled plan's
:func:`~repro.ssnn.compile.network_fingerprint` combined with a
per-request discriminator (see
:meth:`repro.cluster.router.ClusterRouter.affinity_key`) -- so repeated
requests for the same plan/content land on the same node while the key
population spreads evenly across the cluster.  Classic construction:
every node owns ``replicas`` virtual points on a 2^64 ring (SHA-256 of
``"{node_id}#{i}"``); a key hashes to a point and is owned by the first
node point clockwise from it.

The two properties the hypothesis suite
(``tests/cluster/test_ring_property.py``) pins:

* **Balance** -- with enough virtual replicas, every node's share of a
  large key population stays within a constant factor of the fair
  share ``1/len(nodes)``.
* **Minimal remapping** -- adding a node only moves keys *onto* the new
  node (every other key keeps its owner); removing a node only moves
  the keys it owned.  This is what makes node join/leave/drain cheap:
  a scale event invalidates affinity for ``~1/N`` of the key space
  instead of reshuffling everything.

Thread safety: mutation (:meth:`add` / :meth:`remove`) and lookup
(:meth:`route` / :meth:`preference`) are guarded by one lock; lookups
are a bisect over a sorted point list (O(log(nodes * replicas))).
"""

from __future__ import annotations

import bisect
import hashlib
import threading
from typing import Iterable, List, Optional, Tuple

from repro.errors import ConfigurationError


def _point(value: str) -> int:
    """Stable 64-bit ring coordinate of an arbitrary string."""
    digest = hashlib.sha256(value.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class ConsistentHashRing:
    """Virtual-replica consistent-hash ring over string node ids.

    Args:
        replicas: Virtual points per node.  More replicas means better
            balance at a small lookup/memory cost; 64 keeps the max
            node share within ~2x fair share for realistic cluster
            sizes (pinned by the property tests).
        nodes: Optional initial node ids.
    """

    def __init__(self, replicas: int = 64,
                 nodes: Optional[Iterable[str]] = None):
        if replicas < 1:
            raise ConfigurationError("replicas must be >= 1")
        self.replicas = int(replicas)
        self._lock = threading.Lock()
        self._points: List[int] = []         # sorted ring coordinates
        self._owners: List[str] = []         # node id per coordinate
        self._nodes: set = set()
        for node_id in nodes or ():
            self.add(node_id)

    # -- membership ----------------------------------------------------------

    def add(self, node_id: str) -> None:
        """Insert ``node_id``'s virtual points (idempotent)."""
        with self._lock:
            if node_id in self._nodes:
                return
            self._nodes.add(node_id)
            for i in range(self.replicas):
                point = _point(f"{node_id}#{i}")
                index = bisect.bisect_left(self._points, point)
                # Ties are astronomically unlikely (64-bit SHA prefix)
                # but must stay deterministic: order by node id.
                while (index < len(self._points)
                       and self._points[index] == point
                       and self._owners[index] < node_id):
                    index += 1
                self._points.insert(index, point)
                self._owners.insert(index, node_id)

    def remove(self, node_id: str) -> None:
        """Remove ``node_id``'s virtual points (idempotent)."""
        with self._lock:
            if node_id not in self._nodes:
                return
            self._nodes.discard(node_id)
            keep = [
                (point, owner)
                for point, owner in zip(self._points, self._owners)
                if owner != node_id
            ]
            self._points = [point for point, _ in keep]
            self._owners = [owner for _, owner in keep]

    def __contains__(self, node_id: str) -> bool:
        with self._lock:
            return node_id in self._nodes

    def __len__(self) -> int:
        with self._lock:
            return len(self._nodes)

    @property
    def node_ids(self) -> Tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._nodes))

    # -- lookup --------------------------------------------------------------

    def route(self, key: str) -> str:
        """The node owning ``key`` (first point clockwise).  Raises
        :class:`ConfigurationError` on an empty ring."""
        with self._lock:
            if not self._points:
                raise ConfigurationError("consistent-hash ring is empty")
            index = bisect.bisect_right(self._points, _point(key))
            if index == len(self._points):
                index = 0  # wrap around
            return self._owners[index]

    def preference(self, key: str, count: Optional[int] = None) -> List[str]:
        """Distinct node ids in ring order starting at ``key``'s owner.

        The first entry is the affinity owner; the rest are the natural
        fallback order (the nodes that would inherit the key if earlier
        entries left the ring).  ``count`` bounds the list (default:
        every node).
        """
        with self._lock:
            if not self._points:
                return []
            want = len(self._nodes) if count is None else min(
                count, len(self._nodes)
            )
            ordered: List[str] = []
            seen = set()
            start = bisect.bisect_right(self._points, _point(key))
            for offset in range(len(self._points)):
                owner = self._owners[(start + offset) % len(self._points)]
                if owner not in seen:
                    seen.add(owner)
                    ordered.append(owner)
                    if len(ordered) >= want:
                        break
            return ordered

    def __repr__(self) -> str:
        return (f"<ConsistentHashRing nodes={len(self._nodes)} "
                f"replicas={self.replicas}>")
