"""Cluster-backed inference server: the gateway-compatible facade.

:class:`ClusterServer` subclasses
:class:`~repro.serve.server.InferenceServer` and replaces the single
pool behind ``_forward`` with a :class:`~repro.cluster.router
.ClusterRouter` over N :class:`~repro.cluster.node.PoolNode` process
groups.  Everything above the forward boundary -- request coalescing,
deadlines, futures, admission control, the HTTP gateway -- is inherited
unchanged, so ``python -m repro serve --nodes 4`` is the one-machine
stack scaled out with zero gateway changes:

* :meth:`readiness` additionally requires at least one routable node
  (the gateway's ``/readyz`` flips 503 when the whole cluster is gone,
  even though the router could still answer serially).
* :meth:`health` grows a ``"cluster"`` section (router counters,
  per-node states) and, when autoscaling is on, an ``"autoscaler"``
  section with the decision trajectory.
* :meth:`cluster_families` exposes the cluster-wide Prometheus gauges
  (nodes by state, per-node breaker one-hot, rebalance count); the
  gateway appends them to ``/metrics`` by duck-typing this hook.

A background supervisor thread (``supervise_interval_s``) runs the
router's health sweep -- quarantining partitioned nodes, rejoining
healed ones, evicting the dead -- and, when an
:class:`~repro.cluster.autoscaler.AutoscalerConfig` is supplied, the
autoscaler's :meth:`~repro.cluster.autoscaler.Autoscaler.tick`.  Chaos
scenarios and tests set ``supervise_interval_s=0`` and drive both
explicitly for determinism.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.cluster.autoscaler import Autoscaler, AutoscalerConfig
from repro.cluster.node import PoolNode
from repro.cluster.router import ClusterRouter
from repro.serve.metrics import MetricFamily
from repro.serve.server import InferenceServer


class ClusterServer(InferenceServer):
    """Micro-batching server whose forward path is a node cluster.

    Args:
        network / compiled / chip_n / sc_per_npe / reorder / batch_max /
            deadline_ms / plan_cache / queue_max / breaker: As for
            :class:`InferenceServer`.  The inherited breaker guards
            nothing here (each node carries its own); it stays closed
            so admission control keeps working unmodified.
        nodes: Initial cluster size (spawned on :meth:`start`).
        node_workers: Pool worker processes **per node**; ``0``/``1``
            makes serial nodes (cheap, still exercises routing).
        replicas: Virtual points per node on the consistent-hash ring.
        autoscaler_config: Enable autoscaling with this policy; the
            default ``None`` keeps cluster size manual.
        supervise_interval_s: Period of the background probe/autoscale
            sweep; ``0`` disables the thread (tests drive
            ``router.probe_all()`` / ``autoscaler.tick()`` directly).
    """

    def __init__(
        self,
        network=None,
        *,
        compiled=None,
        chip_n: int = 16,
        sc_per_npe: int = 10,
        reorder: bool = True,
        batch_max: int = 512,
        deadline_ms: float = 2.0,
        nodes: int = 2,
        node_workers: int = 2,
        replicas: int = 64,
        autoscaler_config: Optional[AutoscalerConfig] = None,
        supervise_interval_s: float = 0.25,
        plan_cache="default",
        queue_max: int = 65536,
        breaker=None,
    ):
        if nodes < 1:
            raise ConfigurationError("nodes must be >= 1")
        if node_workers < 0:
            raise ConfigurationError("node_workers must be >= 0")
        if supervise_interval_s < 0:
            raise ConfigurationError("supervise_interval_s must be >= 0")
        super().__init__(
            network,
            compiled=compiled,
            chip_n=chip_n,
            sc_per_npe=sc_per_npe,
            reorder=reorder,
            batch_max=batch_max,
            deadline_ms=deadline_ms,
            workers=0,  # no server-level pool; nodes own the pools
            plan_cache=plan_cache,
            queue_max=queue_max,
            breaker=breaker,
        )
        self.initial_nodes = nodes
        self.node_workers = node_workers
        self.supervise_interval_s = supervise_interval_s
        self.router = ClusterRouter(self.compiled, replicas=replicas)
        self._node_seq = 0
        self.autoscaler: Optional[Autoscaler] = None
        if autoscaler_config is not None:
            self.autoscaler = Autoscaler(
                self.router, self.spawn_node, config=autoscaler_config
            )
        self._supervisor: Optional[threading.Thread] = None
        self._supervisor_stop = threading.Event()

    # -- topology ------------------------------------------------------------

    def spawn_node(self, node_id: Optional[str] = None) -> PoolNode:
        """Build (but do not join) one node with this server's pool
        configuration -- also the autoscaler's node factory."""
        if node_id is None:
            node_id = f"node-{self._node_seq}"
        self._node_seq += 1
        return PoolNode(
            node_id, self.compiled, workers=self.node_workers
        )

    def add_node(self, node_id: Optional[str] = None) -> PoolNode:
        """Spawn and join one node (manual scale-up)."""
        return self.router.join(self.spawn_node(node_id))

    def remove_node(self, node_id: str, timeout: float = 30.0) -> bool:
        """Drain-then-retire one node (manual scale-down)."""
        return self.router.leave(node_id, timeout=timeout)

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "ClusterServer":
        if self._running:
            return self
        while self.router.alive_count() < self.initial_nodes:
            self.add_node()
        super().start()
        if self.supervise_interval_s > 0:
            self._supervisor_stop.clear()
            self._supervisor = threading.Thread(
                target=self._supervise_loop,
                name="sushi-cluster-supervisor",
                daemon=True,
            )
            self._supervisor.start()
        return self

    def stop(self, drain: bool = True, timeout: float = 30.0) -> None:
        self._supervisor_stop.set()
        supervisor, self._supervisor = self._supervisor, None
        if supervisor is not None:
            supervisor.join(timeout=timeout)
        super().stop(drain=drain, timeout=timeout)
        self.router.shutdown()

    def _supervise_loop(self) -> None:
        while not self._supervisor_stop.wait(self.supervise_interval_s):
            try:
                self.router.probe_all()
                if self.autoscaler is not None:
                    self.autoscaler.tick()
            except Exception:  # pragma: no cover - defensive
                continue

    # -- forward boundary ----------------------------------------------------

    def _forward(self, rows: np.ndarray):
        return self.router.dispatch(rows)

    # -- observability -------------------------------------------------------

    def readiness(self) -> bool:
        """Ready only while the dispatcher accepts *and* at least one
        node is routable -- losing the whole cluster flips ``/readyz``
        even though dispatch would still answer serially."""
        return super().readiness() and self.router.alive_count() >= 1

    def health(self) -> Dict:
        health = super().health()
        health["mode"] = f"cluster[{self.router.alive_count()}]"
        health["cluster"] = self.router.stats()
        if self.autoscaler is not None:
            health["autoscaler"] = self.autoscaler.stats()
        return health

    def cluster_families(self, namespace: str = "sushi"
                         ) -> List[MetricFamily]:
        """Cluster-wide metric families -- the gateway appends these to
        ``/metrics`` when its backend exposes this hook."""
        families = self.router.metric_families(namespace)
        if self.autoscaler is not None:
            families.extend([
                (f"{namespace}_cluster_scale_ups_total", "counter",
                 "Autoscaler scale-up actions",
                 [(None, self.autoscaler.scale_ups)]),
                (f"{namespace}_cluster_scale_downs_total", "counter",
                 "Autoscaler scale-down actions",
                 [(None, self.autoscaler.scale_downs)]),
            ])
        return families

    def __repr__(self) -> str:
        state = "running" if self._running else "stopped"
        return (f"<ClusterServer {state} "
                f"nodes={self.router.alive_count()} "
                f"node_workers={self.node_workers} "
                f"autoscaler={'on' if self.autoscaler else 'off'} "
                f"plan={self.compiled.fingerprint[:12]}>")
