"""Cluster serving layer: sharded pool nodes behind smart dispatch.

SUSHI scales by replicating constrained NPEs behind a mesh; this
package mirrors that shape in software.  N :class:`PoolNode` "machines"
(independent supervised :class:`~repro.ssnn.pool.InferencePool` process
groups, each with a private shm namespace, circuit breaker and gauges)
sit behind a :class:`ClusterRouter` dispatching by consistent-hash plan
affinity (:class:`ConsistentHashRing`) with least-loaded fallback,
exactly-once failure retry and a serial last resort -- so node death,
partition and scale events cost latency, never answers.  An optional
:class:`Autoscaler` resizes the cluster from the serving gauges, and
:class:`ClusterServer` packages the whole thing behind the same
interface the HTTP gateway already speaks.  See ``docs/CLUSTER.md``.
"""

from repro.cluster.autoscaler import (
    SCALE_DOWN,
    SCALE_UP,
    Autoscaler,
    AutoscalerConfig,
)
from repro.cluster.node import (
    ACTIVE,
    DEAD,
    DRAINING,
    RETIRED,
    NodeUnavailableError,
    PoolNode,
)
from repro.cluster.ring import ConsistentHashRing
from repro.cluster.router import (
    CLUSTER_SCHEMA,
    ClusterRouter,
    ClusterUnavailableError,
)
from repro.cluster.service import ClusterServer

__all__ = [
    "ACTIVE",
    "DEAD",
    "DRAINING",
    "RETIRED",
    "SCALE_DOWN",
    "SCALE_UP",
    "CLUSTER_SCHEMA",
    "Autoscaler",
    "AutoscalerConfig",
    "ClusterRouter",
    "ClusterServer",
    "ClusterUnavailableError",
    "ConsistentHashRing",
    "NodeUnavailableError",
    "PoolNode",
]
