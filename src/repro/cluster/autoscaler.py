"""Gauge-driven cluster autoscaling with hysteresis and cooldown.

The :class:`Autoscaler` closes the loop between the serving gauges the
stack already exports (queue depth and p95 latency from
:class:`~repro.serve.metrics.ServerStats`) and the router's node
lifecycle: sustained pressure spawns nodes (up to ``max_nodes``),
sustained idleness drains-then-retires them (down to ``min_nodes``).

Three guard rails keep it from flapping:

* **Hysteresis** -- a scale decision needs ``hysteresis`` *consecutive*
  breaching evaluations; a single hot tick does nothing.
* **Cooldown** -- after any action the scaler holds still for
  ``cooldown_s`` regardless of gauges, giving the new topology time to
  absorb the load shift (breach streaks keep accumulating meanwhile).
* **Drain-before-retire** -- scale-down goes through
  :meth:`ClusterRouter.leave`: the victim leaves the hash ring first
  (no new work), finishes its in-flight row blocks, then retires.  No
  answer is ever lost to a scale-down.

The evaluation clock is injectable, so tests (and the scale-storm chaos
scenario) drive :meth:`tick` with a fake clock and scripted gauges --
the decision trajectory is fully deterministic.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.errors import ConfigurationError
from repro.cluster.node import PoolNode
from repro.cluster.router import ClusterRouter

SCALE_UP = "scale-up"
SCALE_DOWN = "scale-down"


@dataclass(frozen=True)
class AutoscalerConfig:
    """Policy knobs (defaults sized for the demo workloads).

    Attributes:
        min_nodes / max_nodes: Cluster size bounds (1..8 mirrors the
            ISSUE's 1->8 scale-under-load scenario).
        scale_up_queue_depth: Mean routable-node queue depth at or
            above which a tick counts toward scaling up.
        scale_up_latency_ms: p95 latency (ms) at or above which a tick
            counts toward scaling up (either trigger suffices).
        scale_down_queue_depth / scale_down_latency_ms: Both must be at
            or below these for a tick to count toward scaling down --
            the gap between up and down thresholds is the dead band.
        hysteresis: Consecutive breaching ticks required to act.
        cooldown_s: Quiet period after any action.
        drain_timeout_s: Bound on the scale-down drain handshake.
    """

    min_nodes: int = 1
    max_nodes: int = 8
    scale_up_queue_depth: float = 8.0
    scale_up_latency_ms: float = 250.0
    scale_down_queue_depth: float = 1.0
    scale_down_latency_ms: float = 50.0
    hysteresis: int = 2
    cooldown_s: float = 10.0
    drain_timeout_s: float = 30.0

    def __post_init__(self):
        if self.min_nodes < 1:
            raise ConfigurationError("min_nodes must be >= 1")
        if self.max_nodes < self.min_nodes:
            raise ConfigurationError("max_nodes must be >= min_nodes")
        if self.hysteresis < 1:
            raise ConfigurationError("hysteresis must be >= 1")
        if self.cooldown_s < 0 or self.drain_timeout_s < 0:
            raise ConfigurationError("timeouts must be >= 0")
        if self.scale_down_queue_depth > self.scale_up_queue_depth:
            raise ConfigurationError(
                "scale_down_queue_depth must not exceed scale_up_queue_depth"
            )
        if self.scale_down_latency_ms > self.scale_up_latency_ms:
            raise ConfigurationError(
                "scale_down_latency_ms must not exceed scale_up_latency_ms"
            )


class Autoscaler:
    """Drives node join/leave from serving gauges.

    Args:
        router: The cluster to resize.
        node_factory: ``node_factory(node_id) -> PoolNode`` -- how the
            scaler spawns capacity (the :class:`ClusterServer` wires a
            factory that clones its pool configuration).
        config: Policy; defaults above.
        clock: Monotonic-seconds callable (injectable for tests).
    """

    def __init__(
        self,
        router: ClusterRouter,
        node_factory: Callable[[str], PoolNode],
        config: Optional[AutoscalerConfig] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.router = router
        self.node_factory = node_factory
        self.config = config if config is not None else AutoscalerConfig()
        self._clock = clock
        self._seq = 0
        self._spawned: List[str] = []  # join order, for LIFO unwind
        self._up_streak = 0
        self._down_streak = 0
        self._last_action_at: Optional[float] = None
        self.scale_ups = 0
        self.scale_downs = 0
        self.ticks = 0
        self.events: List[Dict] = []

    # -- gauge sourcing ------------------------------------------------------

    def observed_gauges(self) -> Dict[str, float]:
        """Default gauges from the router: mean in-flight depth per
        routable node plus the worst per-node p95 latency."""
        nodes = self.router.routable_nodes()
        if not nodes:
            return {"queue_depth": 0.0, "latency_ms_p95": 0.0}
        total_inflight = sum(n.load() for n in nodes)
        worst_p95 = max(n.stats().latency_ms_p95 for n in nodes)
        return {
            "queue_depth": total_inflight / len(nodes),
            "latency_ms_p95": worst_p95,
        }

    # -- decision loop -------------------------------------------------------

    def tick(
        self,
        queue_depth: Optional[float] = None,
        latency_ms_p95: Optional[float] = None,
    ) -> Optional[str]:
        """One evaluation.  Gauges default to :meth:`observed_gauges`;
        tests and the chaos storm pass them explicitly.  Returns
        ``"scale-up"``, ``"scale-down"`` or ``None``."""
        cfg = self.config
        if queue_depth is None or latency_ms_p95 is None:
            observed = self.observed_gauges()
            if queue_depth is None:
                queue_depth = observed["queue_depth"]
            if latency_ms_p95 is None:
                latency_ms_p95 = observed["latency_ms_p95"]
        self.ticks += 1

        hot = (queue_depth >= cfg.scale_up_queue_depth
               or latency_ms_p95 >= cfg.scale_up_latency_ms)
        cold = (queue_depth <= cfg.scale_down_queue_depth
                and latency_ms_p95 <= cfg.scale_down_latency_ms)
        if hot:
            self._up_streak += 1
            self._down_streak = 0
        elif cold:
            self._down_streak += 1
            self._up_streak = 0
        else:
            self._up_streak = 0
            self._down_streak = 0

        now = self._clock()
        if (self._last_action_at is not None
                and now - self._last_action_at < cfg.cooldown_s):
            return None

        nodes = self.router.alive_count()
        if self._up_streak >= cfg.hysteresis and nodes < cfg.max_nodes:
            return self._scale_up(now, queue_depth, latency_ms_p95)
        if self._down_streak >= cfg.hysteresis and nodes > cfg.min_nodes:
            return self._scale_down(now, queue_depth, latency_ms_p95)
        return None

    def _scale_up(self, now: float, queue_depth: float,
                  latency_ms_p95: float) -> str:
        before = self.router.alive_count()
        self._seq += 1
        node = self.node_factory(f"scale-{self._seq}")
        self.router.join(node)
        self._spawned.append(node.node_id)
        self.scale_ups += 1
        self._record(SCALE_UP, now, before, queue_depth, latency_ms_p95,
                     node.node_id)
        return SCALE_UP

    def _scale_down(self, now: float, queue_depth: float,
                    latency_ms_p95: float) -> str:
        routable = self.router.routable_nodes()
        before = len(routable)
        # Victim: among the least-loaded nodes, unwind the autoscaler's
        # own spawns newest-first (LIFO) so the operator-provisioned
        # seed nodes survive; only if no spawn qualifies fall back to
        # the largest node id for determinism.
        min_load = min(n.load() for n in routable)
        candidates = {n.node_id: n for n in routable
                      if n.load() == min_load}
        victim = None
        for node_id in reversed(self._spawned):
            if node_id in candidates:
                victim = candidates[node_id]
                break
        if victim is None:
            victim = candidates[max(candidates)]
        if victim.node_id in self._spawned:
            self._spawned.remove(victim.node_id)
        self.router.leave(victim.node_id,
                          timeout=self.config.drain_timeout_s)
        self.scale_downs += 1
        self._record(SCALE_DOWN, now, before, queue_depth, latency_ms_p95,
                     victim.node_id)
        return SCALE_DOWN

    def _record(self, action: str, now: float, before: int,
                queue_depth: float, latency_ms_p95: float,
                node_id: str) -> None:
        self._up_streak = 0
        self._down_streak = 0
        self._last_action_at = now
        self.events.append({
            "action": action,
            "node": node_id,
            "nodes_before": before,
            "nodes_after": self.router.alive_count(),
            "queue_depth": round(float(queue_depth), 3),
            "latency_ms_p95": round(float(latency_ms_p95), 3),
        })

    # -- observability -------------------------------------------------------

    def stats(self) -> Dict:
        return {
            "schema": "repro.cluster.autoscaler/v1",
            "config": {
                "min_nodes": self.config.min_nodes,
                "max_nodes": self.config.max_nodes,
                "hysteresis": self.config.hysteresis,
                "cooldown_s": self.config.cooldown_s,
            },
            "ticks": self.ticks,
            "scale_ups": self.scale_ups,
            "scale_downs": self.scale_downs,
            "events": list(self.events),
        }

    def __repr__(self) -> str:
        return (f"<Autoscaler nodes={self.router.alive_count()} "
                f"ups={self.scale_ups} downs={self.scale_downs} "
                f"ticks={self.ticks}>")
