"""Tests for the synthetic MNIST/Fashion stand-in generators."""

import numpy as np
import pytest

from repro.data import load_digits, load_fashion
from repro.data.datasets import IMAGE_SIZE, class_names
from repro.errors import ConfigurationError


class TestGeneration:
    def test_shapes_and_ranges(self):
        data = load_digits(train_size=50, test_size=20, seed=0)
        assert data.train_images.shape == (50, IMAGE_SIZE, IMAGE_SIZE)
        assert data.test_images.shape == (20, IMAGE_SIZE, IMAGE_SIZE)
        assert data.train_images.min() >= 0.0
        assert data.train_images.max() <= 1.0
        assert data.train_labels.dtype == np.int64

    def test_deterministic_per_seed(self):
        a = load_digits(train_size=20, test_size=10, seed=3)
        b = load_digits(train_size=20, test_size=10, seed=3)
        np.testing.assert_array_equal(a.train_images, b.train_images)
        np.testing.assert_array_equal(a.train_labels, b.train_labels)

    def test_different_seeds_differ(self):
        a = load_digits(train_size=20, test_size=10, seed=1)
        b = load_digits(train_size=20, test_size=10, seed=2)
        assert not np.array_equal(a.train_images, b.train_images)

    def test_all_classes_present(self):
        data = load_digits(train_size=300, test_size=100, seed=0)
        assert set(np.unique(data.train_labels)) == set(range(10))

    def test_size_validation(self):
        with pytest.raises(ConfigurationError):
            load_digits(train_size=5, test_size=100)

    def test_fashion_generates(self):
        data = load_fashion(train_size=40, test_size=20, seed=0)
        assert data.name == "fashion"
        assert data.train_images.shape[1:] == (IMAGE_SIZE, IMAGE_SIZE)

    def test_class_names(self):
        assert class_names("digits")[3] == "3"
        assert class_names("fashion")[1] == "trouser"
        assert len(class_names("fashion")) == 10


def nearest_centroid_accuracy(data) -> float:
    """Test accuracy of a nearest-centroid classifier fit on the train
    split -- a cheap learnability probe."""
    train = data.train_images.reshape(len(data.train_images), -1)
    test = data.test_images.reshape(len(data.test_images), -1)
    centroids = np.stack([
        train[data.train_labels == c].mean(axis=0) for c in range(10)
    ])
    distances = np.linalg.norm(
        test[:, None, :] - centroids[None, :, :], axis=2
    )
    return float((distances.argmin(axis=1) == data.test_labels).mean())


class TestSeparability:
    def test_digits_are_learnable(self):
        """Class structure must be learnable: even a nearest-centroid
        classifier beats chance by a wide margin."""
        data = load_digits(train_size=400, test_size=200, seed=0)
        assert nearest_centroid_accuracy(data) > 0.5

    def test_fashion_is_harder_than_digits(self):
        """The Fashion stand-in must be the harder dataset (as in the
        paper: 88.9% vs 98.65% for the full SNN)."""
        digits = load_digits(train_size=400, test_size=200, seed=0)
        fashion = load_fashion(train_size=400, test_size=200, seed=0)
        digit_acc = nearest_centroid_accuracy(digits)
        fashion_acc = nearest_centroid_accuracy(fashion)
        assert fashion_acc > 0.2  # still learnable
        assert fashion_acc < digit_acc
