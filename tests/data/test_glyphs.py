"""Tests for the glyph bitmaps underlying the synthetic datasets."""

import numpy as np

from repro.data.glyphs import DIGIT_GLYPHS, FASHION_CLASS_NAMES, FASHION_GLYPHS


class TestGlyphs:
    def test_ten_of_each(self):
        assert len(DIGIT_GLYPHS) == 10
        assert len(FASHION_GLYPHS) == 10
        assert len(FASHION_CLASS_NAMES) == 10

    def test_digit_glyphs_share_shape(self):
        shapes = {glyph.shape for glyph in DIGIT_GLYPHS}
        assert shapes == {(7, 5)}

    def test_fashion_glyphs_share_shape(self):
        shapes = {glyph.shape for glyph in FASHION_GLYPHS}
        assert shapes == {(14, 10)}

    def test_glyphs_are_binary_and_nonempty(self):
        for glyph in DIGIT_GLYPHS + FASHION_GLYPHS:
            assert set(np.unique(glyph)) <= {0.0, 1.0}
            assert glyph.sum() > 0

    def test_digit_glyphs_are_pairwise_distinct(self):
        for i in range(10):
            for j in range(i + 1, 10):
                assert not np.array_equal(DIGIT_GLYPHS[i], DIGIT_GLYPHS[j])

    def test_fashion_glyphs_are_pairwise_distinct(self):
        for i in range(10):
            for j in range(i + 1, 10):
                assert not np.array_equal(FASHION_GLYPHS[i],
                                          FASHION_GLYPHS[j])

    def test_trouser_has_two_legs(self):
        """Structural sanity of a known silhouette: the trouser's lower
        rows have a gap between two columns of fabric."""
        trouser = FASHION_GLYPHS[FASHION_CLASS_NAMES.index("trouser")]
        bottom = trouser[-1]
        transitions = int(np.abs(np.diff(bottom)).sum())
        assert transitions >= 4  # up-down-up-down: two separate legs
