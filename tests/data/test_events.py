"""Tests for the synthetic event-stream (moving-bar) dataset."""

import numpy as np
import pytest

from repro.data.events import (
    DIRECTION_NAMES,
    DIRECTIONS,
    EventDataset,
    load_moving_bars,
)
from repro.errors import ConfigurationError


class TestMovingBars:
    def test_shapes_and_binary_values(self):
        data = load_moving_bars(train_size=30, test_size=10, side=8,
                                steps=6, seed=0)
        assert data.train_events.shape == (30, 6, 8, 8)
        assert data.test_events.shape == (10, 6, 8, 8)
        assert set(np.unique(data.train_events)) <= {0.0, 1.0}
        assert data.num_classes == 4
        assert data.time_steps == 6
        assert data.frame_size == 8

    def test_deterministic_per_seed(self):
        a = load_moving_bars(train_size=10, test_size=5, seed=4)
        b = load_moving_bars(train_size=10, test_size=5, seed=4)
        np.testing.assert_array_equal(a.train_events, b.train_events)

    def test_all_directions_present(self):
        data = load_moving_bars(train_size=100, test_size=10, seed=1)
        assert set(np.unique(data.train_labels)) == {0, 1, 2, 3}

    def test_bar_actually_moves_in_labelled_direction(self):
        data = load_moving_bars(train_size=60, test_size=10, noise=0.0,
                                side=8, steps=6, seed=2)
        for movie, label in zip(data.train_events[:20],
                                data.train_labels[:20]):
            dy, dx = DIRECTIONS[DIRECTION_NAMES[label]]
            # Centroid of events drifts along the labelled axis.
            coords0 = np.argwhere(movie[0] > 0).mean(axis=0)
            coords1 = np.argwhere(movie[3] > 0).mean(axis=0)
            drift = coords1 - coords0
            if dx:
                assert np.sign(drift[1]) == np.sign(dx)
            else:
                assert np.sign(drift[0]) == np.sign(dy)

    def test_noise_adds_spurious_events(self):
        clean = load_moving_bars(train_size=20, test_size=5, noise=0.0,
                                 seed=3)
        noisy = load_moving_bars(train_size=20, test_size=5, noise=0.1,
                                 seed=3)
        assert noisy.train_events.sum() != clean.train_events.sum()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            load_moving_bars(side=2)
        with pytest.raises(ConfigurationError):
            load_moving_bars(steps=1)
        with pytest.raises(ConfigurationError):
            load_moving_bars(noise=0.7)


class TestEventClassifier:
    def test_stateful_model_learns_direction(self):
        from repro.snn import Linear, Sequential, Trainer, TrainerConfig
        from repro.snn.model import EventSpikingClassifier
        from repro.snn.neurons import IFNode

        data = load_moving_bars(train_size=200, test_size=60, side=6,
                                steps=6, seed=5)
        network = Sequential(
            Linear(36, 32, seed=0), IFNode(),
            Linear(32, 4, seed=1), IFNode(),
        )
        model = EventSpikingClassifier(network, time_steps=6)
        Trainer(model, TrainerConfig(epochs=15, batch_size=32,
                                     learning_rate=5e-3)).fit(
            data.train_events, data.train_labels
        )
        acc = (model.predict(data.test_events) == data.test_labels).mean()
        assert acc > 0.8

    def test_shape_validation(self):
        from repro.snn import Linear, Sequential
        from repro.snn.model import EventSpikingClassifier
        from repro.snn.neurons import IFNode

        model = EventSpikingClassifier(
            Sequential(Linear(36, 4), IFNode()), time_steps=6
        )
        with pytest.raises(ConfigurationError):
            model.forward(np.zeros((2, 36)))
        with pytest.raises(ConfigurationError):
            model.forward(np.zeros((2, 5, 6, 6)))  # wrong step count

    def test_raster_shape(self):
        from repro.snn import Linear, Sequential
        from repro.snn.model import EventSpikingClassifier
        from repro.snn.neurons import IFNode

        model = EventSpikingClassifier(
            Sequential(Linear(16, 3), IFNode()), time_steps=4
        )
        raster = model.spike_raster(np.zeros((2, 4, 4, 4)))
        assert raster.shape == (4, 2, 3)
