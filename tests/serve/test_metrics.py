"""Edge-case tests for serving metrics and Prometheus exposition.

Covers the corners the gateway depends on: a zero-request snapshot must
not divide by zero, a single latency sample pins every percentile, and
the bounded latency window truncates oldest-first.
"""

import re

import pytest

from repro.serve.metrics import (
    BREAKER_STATES,
    MetricsRecorder,
    ServerStats,
    _percentile,
    render_prometheus,
    server_stats_families,
)


class TestPercentile:
    def test_empty_is_zero(self):
        assert _percentile([], 0.5) == 0.0

    def test_single_sample_is_every_percentile(self):
        for q in (0.0, 0.5, 0.95, 1.0):
            assert _percentile([7.5], q) == 7.5

    def test_nearest_rank(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0]
        assert _percentile(values, 0.0) == 1.0
        assert _percentile(values, 0.5) == 3.0
        assert _percentile(values, 1.0) == 5.0


class TestSnapshotEdges:
    def test_zero_request_snapshot(self):
        """A fresh recorder snapshots all-zero without dividing by
        zero (uptime, mean_batch, percentiles)."""
        stats = MetricsRecorder().snapshot()
        assert stats.requests == 0
        assert stats.completed == 0
        assert stats.mean_batch == 0.0
        assert stats.latency_ms_p50 == 0.0
        assert stats.latency_ms_max == 0.0
        assert stats.fps == 0.0
        assert stats.sops == 0.0
        assert stats.pending == 0

    def test_single_sample_percentiles_collapse(self):
        recorder = MetricsRecorder()
        recorder.record_submit()
        recorder.record_batch(1, synops=10, latencies_ms=[3.5])
        stats = recorder.snapshot()
        assert stats.latency_ms_p50 == 3.5
        assert stats.latency_ms_p95 == 3.5
        assert stats.latency_ms_max == 3.5
        assert stats.mean_batch == 1.0

    def test_latency_window_truncates_oldest(self):
        recorder = MetricsRecorder(latency_window=8)
        recorder.record_submit(20)
        # 20 latencies through a window of 8: only the newest 8
        # (values 12..19) survive for percentiles.
        recorder.record_batch(
            20, synops=0, latencies_ms=[float(i) for i in range(20)]
        )
        stats = recorder.snapshot()
        assert len(recorder._latencies) == 8
        assert stats.latency_ms_p50 == 16.0  # median of 12..19
        assert stats.latency_ms_max == 19.0
        # Counters are NOT windowed -- all 20 completions counted.
        assert stats.completed == 20

    def test_pending_never_negative(self):
        recorder = MetricsRecorder()
        # Resolutions without a matching submit (e.g. direct batch
        # accounting in tests) must clamp instead of going negative.
        recorder.record_batch(3, synops=0, latencies_ms=[1.0, 1.0, 1.0])
        assert recorder.snapshot().pending == 0

    def test_every_resolution_kind_reduces_pending(self):
        recorder = MetricsRecorder()
        recorder.record_submit(4)
        recorder.record_batch(1, synops=0, latencies_ms=[1.0])
        recorder.record_failure()
        recorder.record_expired()
        recorder.record_cancelled()
        assert recorder.snapshot().pending == 0

    def test_to_dict_round_trips_every_field(self):
        stats = MetricsRecorder().snapshot(
            breaker_state="open", queue_depth=3
        )
        payload = stats.to_dict()
        assert payload["breaker_state"] == "open"
        assert payload["queue_depth"] == 3
        # to_dict is the monitoring wire contract: every dataclass
        # field must appear.
        assert set(payload) == set(ServerStats.__dataclass_fields__)


PROM_LINE = re.compile(
    r"^([A-Za-z_:][A-Za-z0-9_:]*)(?:\{(.*)\})?\s+(-?[0-9.e+E-]+)$"
)


class TestPrometheusExposition:
    def test_render_counters_and_gauges(self):
        text = render_prometheus([
            ("x_total", "counter", "Help text", [(None, 3)]),
            ("y", "gauge", "A gauge", [(None, 1.5)]),
        ])
        assert "# HELP x_total Help text" in text
        assert "# TYPE x_total counter" in text
        assert "\nx_total 3\n" in text
        assert "\ny 1.5\n" in text

    def test_labels_sorted_and_escaped(self):
        text = render_prometheus([
            ("z", "gauge", "h",
             [({"b": 'say "hi"\n', "a": "x\\y"}, 1)]),
        ])
        assert r'z{a="x\\y",b="say \"hi\"\n"} 1' in text

    def test_every_line_parses(self):
        stats = MetricsRecorder().snapshot(breaker_state="half-open")
        text = render_prometheus(server_stats_families(stats))
        assert text.endswith("\n")
        for line in text.strip().splitlines():
            if line.startswith("#"):
                assert line.startswith(("# HELP ", "# TYPE "))
            else:
                assert PROM_LINE.match(line), line

    def test_breaker_state_is_one_hot(self):
        for active in BREAKER_STATES:
            stats = MetricsRecorder().snapshot(breaker_state=active)
            text = render_prometheus(server_stats_families(stats))
            for state in BREAKER_STATES:
                want = "1" if state == active else "0"
                assert (f'sushi_server_breaker_state{{state="{state}"}} '
                        f"{want}") in text

    def test_namespace_override(self):
        stats = MetricsRecorder().snapshot()
        text = render_prometheus(
            server_stats_families(stats, namespace="acme")
        )
        assert "acme_server_requests_total 0" in text
        assert "sushi_" not in text

    def test_counter_families_use_total_suffix(self):
        stats = MetricsRecorder().snapshot()
        for name, mtype, _help, _samples in server_stats_families(stats):
            if mtype == "counter":
                assert name.endswith("_total"), name
