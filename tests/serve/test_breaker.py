"""Unit tests for the serving circuit breaker (:mod:`repro.serve.breaker`).

A fake injectable clock makes every transition deterministic: no
sleeps, no timing slack.
"""

import pytest

from repro.errors import ConfigurationError
from repro.serve import BreakerSnapshot, CircuitBreaker


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture()
def clock():
    return FakeClock()


@pytest.fixture()
def breaker(clock):
    return CircuitBreaker(
        failure_threshold=3, reset_timeout_s=5.0, clock=clock
    )


class TestClosed:
    def test_starts_closed_and_allows(self, breaker):
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_success_resets_the_streak(self, breaker):
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"  # streak never reached 3

    def test_consecutive_failures_trip_open(self, breaker):
        for _ in range(3):
            assert breaker.state == "closed"
            breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()


class TestOpenAndHalfOpen:
    def _trip(self, breaker):
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state == "open"

    def test_open_blocks_until_timeout(self, breaker, clock):
        self._trip(breaker)
        clock.advance(4.999)
        assert not breaker.allow()
        clock.advance(0.002)
        assert breaker.state == "half-open"
        assert breaker.allow()  # the probe

    def test_probe_budget_is_enforced(self, clock):
        breaker = CircuitBreaker(
            failure_threshold=1, reset_timeout_s=1.0,
            half_open_probes=2, clock=clock,
        )
        breaker.record_failure()
        clock.advance(1.5)
        assert breaker.allow()
        assert breaker.allow()
        assert not breaker.allow()  # budget of 2 spent, results pending

    def test_half_open_success_closes(self, breaker, clock):
        self._trip(breaker)
        clock.advance(6.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_half_open_failure_reopens_and_restarts_cooldown(
        self, breaker, clock
    ):
        self._trip(breaker)
        clock.advance(6.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        clock.advance(4.0)  # cool-down restarted: still open
        assert not breaker.allow()
        clock.advance(1.5)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"


class TestSnapshotAndValidation:
    def test_snapshot_counts_transitions(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure()
        clock.advance(2.0)
        snap = breaker.snapshot()
        assert isinstance(snap, BreakerSnapshot)
        assert snap.state == "open"
        assert snap.opens == 1
        assert snap.closes == 0
        assert snap.open_for_s == pytest.approx(2.0)
        assert ("closed", "open") in snap.transitions
        clock.advance(4.0)
        assert breaker.allow()
        breaker.record_success()
        snap = breaker.snapshot()
        assert snap.closes == 1
        assert snap.probes == 1
        assert snap.to_dict()["state"] == "closed"

    def test_full_cycle_transition_log(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure()
        clock.advance(6.0)
        breaker.allow()
        breaker.record_success()
        assert breaker.snapshot().transitions == (
            ("closed", "open"),
            ("open", "half-open"),
            ("half-open", "closed"),
        )

    def test_validates_configuration(self):
        with pytest.raises(ConfigurationError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ConfigurationError):
            CircuitBreaker(reset_timeout_s=0)
        with pytest.raises(ConfigurationError):
            CircuitBreaker(half_open_probes=0)

    def test_repr_mentions_state(self, breaker):
        assert "closed" in repr(breaker)


# -- property-based model check ----------------------------------------------
#
# Drive the breaker with arbitrary allow/success/failure/advance
# sequences on a step clock and check it against a tiny reference model
# of the documented three-state machine.  Whatever hypothesis throws at
# it, the breaker must never record an undocumented transition and the
# snapshot must reflect the last event.

from hypothesis import given, settings, strategies as st

VALID_TRANSITIONS = {
    ("closed", "open"),
    ("open", "half-open"),
    ("half-open", "closed"),
    ("half-open", "open"),
}

OPS = st.lists(
    st.one_of(
        st.just(("allow",)),
        st.just(("success",)),
        st.just(("failure",)),
        st.tuples(st.just("advance"),
                  st.sampled_from([0.1, 1.0, 4.9, 5.0, 7.5])),
    ),
    max_size=60,
)


class _ModelBreaker:
    """Reference implementation of the documented semantics."""

    def __init__(self, threshold, timeout, probes, clock):
        self.threshold = threshold
        self.timeout = timeout
        self.probe_budget = probes
        self.clock = clock
        self.state = "closed"
        self.consec = 0
        self.opened_at = None
        self.probes_in_flight = 0

    def allow(self):
        if self.state == "closed":
            return True
        if self.state == "open":
            if self.clock() - self.opened_at < self.timeout:
                return False
            self.state = "half-open"
            self.probes_in_flight = 0
        if self.probes_in_flight < self.probe_budget:
            self.probes_in_flight += 1
            return True
        return False

    def success(self):
        self.consec = 0
        if self.state == "half-open":
            self.state = "closed"
            self.probes_in_flight = 0
            self.opened_at = None

    def failure(self):
        self.consec += 1
        if self.state == "half-open":
            self.state = "open"
            self.opened_at = self.clock()
            self.probes_in_flight = 0
        elif self.state == "closed" and self.consec >= self.threshold:
            self.state = "open"
            self.opened_at = self.clock()

    def effective_state(self):
        if (self.state == "open"
                and self.clock() - self.opened_at >= self.timeout):
            return "half-open"
        return self.state


class TestBreakerProperties:
    @settings(deadline=None, max_examples=200)
    @given(
        ops=OPS,
        threshold=st.integers(min_value=1, max_value=4),
        probes=st.integers(min_value=1, max_value=3),
    )
    def test_matches_reference_model(self, ops, threshold, probes):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=threshold, reset_timeout_s=5.0,
            half_open_probes=probes, clock=clock,
        )
        model = _ModelBreaker(threshold, 5.0, probes, clock)
        for op in ops:
            if op[0] == "allow":
                assert breaker.allow() == model.allow()
            elif op[0] == "success":
                breaker.record_success()
                model.success()
                assert breaker.snapshot().consecutive_failures == 0
            elif op[0] == "failure":
                breaker.record_failure()
                model.failure()
                assert breaker.snapshot().consecutive_failures >= 1
            else:
                clock.advance(op[1])
            snap = breaker.snapshot()
            # Raw state agrees with the model; the state property
            # additionally applies the open -> half-open clock.
            assert snap.state == model.state
            assert breaker.state == model.effective_state()
            assert snap.consecutive_failures == model.consec

    @settings(deadline=None, max_examples=200)
    @given(ops=OPS, threshold=st.integers(min_value=1, max_value=4))
    def test_never_records_an_invalid_transition(self, ops, threshold):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=threshold, reset_timeout_s=5.0,
            clock=clock,
        )
        for op in ops:
            if op[0] == "allow":
                breaker.allow()
            elif op[0] == "success":
                breaker.record_success()
            elif op[0] == "failure":
                breaker.record_failure()
            else:
                clock.advance(op[1])
        snap = breaker.snapshot()
        for transition in snap.transitions:
            assert transition in VALID_TRANSITIONS, transition
        # The retained window is contiguous: each hop starts where the
        # previous one ended.
        for prev, nxt in zip(snap.transitions, snap.transitions[1:]):
            assert prev[1] == nxt[0]
        # While the ring has not overflowed, the lifetime counters
        # agree with the retained log exactly.
        if len(snap.transitions) < 32:
            assert snap.opens == sum(
                1 for t in snap.transitions if t[1] == "open"
            )
            assert snap.closes == sum(
                1 for t in snap.transitions if t[1] == "closed"
            )
        assert snap.state in ("closed", "open", "half-open")
