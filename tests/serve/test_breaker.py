"""Unit tests for the serving circuit breaker (:mod:`repro.serve.breaker`).

A fake injectable clock makes every transition deterministic: no
sleeps, no timing slack.
"""

import pytest

from repro.errors import ConfigurationError
from repro.serve import BreakerSnapshot, CircuitBreaker


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture()
def clock():
    return FakeClock()


@pytest.fixture()
def breaker(clock):
    return CircuitBreaker(
        failure_threshold=3, reset_timeout_s=5.0, clock=clock
    )


class TestClosed:
    def test_starts_closed_and_allows(self, breaker):
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_success_resets_the_streak(self, breaker):
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"  # streak never reached 3

    def test_consecutive_failures_trip_open(self, breaker):
        for _ in range(3):
            assert breaker.state == "closed"
            breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()


class TestOpenAndHalfOpen:
    def _trip(self, breaker):
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state == "open"

    def test_open_blocks_until_timeout(self, breaker, clock):
        self._trip(breaker)
        clock.advance(4.999)
        assert not breaker.allow()
        clock.advance(0.002)
        assert breaker.state == "half-open"
        assert breaker.allow()  # the probe

    def test_probe_budget_is_enforced(self, clock):
        breaker = CircuitBreaker(
            failure_threshold=1, reset_timeout_s=1.0,
            half_open_probes=2, clock=clock,
        )
        breaker.record_failure()
        clock.advance(1.5)
        assert breaker.allow()
        assert breaker.allow()
        assert not breaker.allow()  # budget of 2 spent, results pending

    def test_half_open_success_closes(self, breaker, clock):
        self._trip(breaker)
        clock.advance(6.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_half_open_failure_reopens_and_restarts_cooldown(
        self, breaker, clock
    ):
        self._trip(breaker)
        clock.advance(6.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        clock.advance(4.0)  # cool-down restarted: still open
        assert not breaker.allow()
        clock.advance(1.5)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"


class TestSnapshotAndValidation:
    def test_snapshot_counts_transitions(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure()
        clock.advance(2.0)
        snap = breaker.snapshot()
        assert isinstance(snap, BreakerSnapshot)
        assert snap.state == "open"
        assert snap.opens == 1
        assert snap.closes == 0
        assert snap.open_for_s == pytest.approx(2.0)
        assert ("closed", "open") in snap.transitions
        clock.advance(4.0)
        assert breaker.allow()
        breaker.record_success()
        snap = breaker.snapshot()
        assert snap.closes == 1
        assert snap.probes == 1
        assert snap.to_dict()["state"] == "closed"

    def test_full_cycle_transition_log(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure()
        clock.advance(6.0)
        breaker.allow()
        breaker.record_success()
        assert breaker.snapshot().transitions == (
            ("closed", "open"),
            ("open", "half-open"),
            ("half-open", "closed"),
        )

    def test_validates_configuration(self):
        with pytest.raises(ConfigurationError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ConfigurationError):
            CircuitBreaker(reset_timeout_s=0)
        with pytest.raises(ConfigurationError):
            CircuitBreaker(half_open_probes=0)

    def test_repr_mentions_state(self, breaker):
        assert "closed" in repr(breaker)
