"""Tests for the micro-batching inference server (:mod:`repro.serve`).

Serving is a latency/throughput transform only: every request's answer
must be bit-identical to running its spike train alone through
:class:`~repro.ssnn.runtime.SushiRuntime`.  The tests pin that, plus the
coalescing behaviour (batch_max, shape isolation), the lifecycle
(start/stop/drain), validation, metrics and the pool-backed path.
"""

import queue
import time
from concurrent.futures import TimeoutError as FutureTimeoutError

import numpy as np
import pytest

from repro.errors import ConfigurationError, DeadlineExceededError
from repro.harness import random_binarized_network, random_spike_trains
from repro.serve import CircuitBreaker, InferenceServer, ServerStats
from repro.ssnn import PoisonBatchError, SushiRuntime, compile_network

CHIP_N = 4
SC = 8


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(41)
    network = random_binarized_network(rng, sizes=(11, 8, 5), sc_per_npe=SC)
    trains = random_spike_trains(rng, 4, 24, 11)
    return network, trains


def expected_results(network, trains):
    runtime = SushiRuntime(chip_n=CHIP_N, sc_per_npe=SC, plan_cache=None)
    return runtime.infer(network, trains)


class TestServingEquivalence:
    def test_answers_match_the_runtime(self, workload):
        network, trains = workload
        want = expected_results(network, trains)
        with InferenceServer(
            network, chip_n=CHIP_N, sc_per_npe=SC, plan_cache=None,
            deadline_ms=5.0,
        ) as server:
            futures = [
                server.submit(trains[:, b, :])
                for b in range(trains.shape[1])
            ]
            results = [f.result(timeout=30.0) for f in futures]
        for b, res in enumerate(results):
            assert np.array_equal(
                res.output_raster, want.output_raster[:, b, :]
            )
            assert np.array_equal(res.rates, want.rates[b])
            assert res.prediction == int(want.predictions[b])
            assert res.steps == trains.shape[0]
            assert res.latency_ms >= 0.0
            assert 1 <= res.batch_size <= trains.shape[1]

    def test_accepts_precompiled_artifact(self, workload):
        network, trains = workload
        compiled = compile_network(network, CHIP_N, SC)
        with InferenceServer(compiled=compiled, deadline_ms=0.0) as server:
            res = server.infer(trains[:, 0, :])
        want = expected_results(network, trains[:, :1, :])
        assert np.array_equal(res.output_raster, want.output_raster[:, 0, :])

    def test_three_dim_single_sample_train_is_squeezed(self, workload):
        network, trains = workload
        with InferenceServer(
            network, chip_n=CHIP_N, sc_per_npe=SC, plan_cache=None,
            deadline_ms=0.0,
        ) as server:
            a = server.infer(trains[:, 0, :])
            b = server.infer(trains[:, 0:1, :])
        assert np.array_equal(a.output_raster, b.output_raster)

    def test_pool_backed_serving_matches(self, workload):
        network, trains = workload
        want = expected_results(network, trains)
        with InferenceServer(
            network, chip_n=CHIP_N, sc_per_npe=SC, plan_cache=None,
            workers=2, deadline_ms=20.0, batch_max=trains.shape[1],
        ) as server:
            futures = [
                server.submit(trains[:, b, :])
                for b in range(trains.shape[1])
            ]
            results = [f.result(timeout=30.0) for f in futures]
        for b, res in enumerate(results):
            assert np.array_equal(
                res.output_raster, want.output_raster[:, b, :]
            )


class TestCoalescing:
    def test_batch_max_bounds_coalescing(self, workload):
        network, trains = workload
        with InferenceServer(
            network, chip_n=CHIP_N, sc_per_npe=SC, plan_cache=None,
            batch_max=4, deadline_ms=50.0,
        ) as server:
            futures = [
                server.submit(trains[:, b % trains.shape[1], :])
                for b in range(12)
            ]
            results = [f.result(timeout=30.0) for f in futures]
            stats = server.stats()
        assert all(r.batch_size <= 4 for r in results)
        assert stats.samples == 12
        assert stats.batches >= 3

    def test_mixed_shapes_never_share_a_batch(self, workload):
        network, trains = workload
        short = trains[:2, 0, :]
        long = trains[:, 1, :]
        want_short = expected_results(network, trains[:2, 1:2, :])
        with InferenceServer(
            network, chip_n=CHIP_N, sc_per_npe=SC, plan_cache=None,
            batch_max=64, deadline_ms=30.0,
        ) as server:
            futures = [
                server.submit(short), server.submit(long),
                server.submit(short), server.submit(long),
            ]
            results = [f.result(timeout=30.0) for f in futures]
        assert results[0].steps == 2 and results[1].steps == trains.shape[0]
        # A short and a long request can never ride together.
        for res in results:
            assert res.batch_size <= 2
        check = expected_results(network, short[:, None, :])
        assert np.array_equal(
            results[2].output_raster, check.output_raster[:, 0, :]
        )
        del want_short


class TestLifecycleAndValidation:
    def test_constructor_validation(self, workload):
        network, _ = workload
        compiled = compile_network(network, CHIP_N, SC)
        with pytest.raises(ConfigurationError):
            InferenceServer()
        with pytest.raises(ConfigurationError):
            InferenceServer(network, compiled=compiled)
        with pytest.raises(ConfigurationError):
            InferenceServer(network, batch_max=0, plan_cache=None)
        with pytest.raises(ConfigurationError):
            InferenceServer(network, deadline_ms=-1.0, plan_cache=None)
        with pytest.raises(ConfigurationError):
            InferenceServer(network, workers=-1, plan_cache=None)

    def test_submit_requires_running_server(self, workload):
        network, trains = workload
        server = InferenceServer(
            network, chip_n=CHIP_N, sc_per_npe=SC, plan_cache=None
        )
        with pytest.raises(ConfigurationError):
            server.submit(trains[:, 0, :])

    def test_rejects_wrong_width(self, workload):
        network, trains = workload
        with InferenceServer(
            network, chip_n=CHIP_N, sc_per_npe=SC, plan_cache=None
        ) as server:
            with pytest.raises(ConfigurationError):
                server.submit(np.zeros((3, network.in_features + 1)))
            with pytest.raises(ConfigurationError):
                server.submit(np.zeros(network.in_features))

    def test_stop_drains_queued_requests(self, workload):
        network, trains = workload
        server = InferenceServer(
            network, chip_n=CHIP_N, sc_per_npe=SC, plan_cache=None,
            deadline_ms=1.0,
        ).start()
        futures = [server.submit(trains[:, b, :]) for b in range(6)]
        server.stop(drain=True)
        for future in futures:
            assert future.result(timeout=5.0).steps == trains.shape[0]

    def test_stop_without_drain_fails_pending(self, workload):
        network, trains = workload
        server = InferenceServer(
            network, chip_n=CHIP_N, sc_per_npe=SC, plan_cache=None,
            deadline_ms=200.0, batch_max=4096,
        ).start()
        futures = [server.submit(trains[:, b, :]) for b in range(8)]
        server.stop(drain=False)
        outcomes = []
        for future in futures:
            try:
                future.result(timeout=10.0)
                outcomes.append("ok")
            except ConfigurationError:
                outcomes.append("failed")
        # Every request resolved one way or the other; none hang.
        assert len(outcomes) == 8

    def test_restart_after_stop(self, workload):
        network, trains = workload
        server = InferenceServer(
            network, chip_n=CHIP_N, sc_per_npe=SC, plan_cache=None,
            deadline_ms=0.0,
        )
        server.start()
        server.stop()
        server.start()
        try:
            res = server.infer(trains[:, 0, :])
            assert res.steps == trains.shape[0]
        finally:
            server.stop()


class TestMetrics:
    def test_stats_accumulate(self, workload):
        network, trains = workload
        with InferenceServer(
            network, chip_n=CHIP_N, sc_per_npe=SC, plan_cache=None,
            deadline_ms=2.0,
        ) as server:
            for b in range(5):
                server.infer(trains[:, b, :])
            stats = server.stats()
        assert isinstance(stats, ServerStats)
        assert stats.requests == 5
        assert stats.completed == 5
        assert stats.samples == 5
        assert stats.failed == 0
        assert stats.batches >= 1
        assert stats.mean_batch > 0
        assert stats.latency_ms_p50 >= 0.0
        assert stats.latency_ms_max >= stats.latency_ms_p95 >= 0.0
        assert stats.fps > 0
        assert stats.synaptic_ops > 0
        assert stats.sops > 0
        payload = stats.to_dict()
        assert payload["requests"] == 5
        assert set(payload) >= {
            "fps", "sops", "latency_ms_p50", "mean_batch",
        }

    def test_repr_shows_mode(self, workload):
        network, _ = workload
        server = InferenceServer(
            network, chip_n=CHIP_N, sc_per_npe=SC, plan_cache=None
        )
        assert "stopped" in repr(server)
        with server:
            assert "running" in repr(server)


class _StubPool:
    """Pool-shaped stand-in: a scripted sequence of behaviours per call
    (``"fail"`` raises RuntimeError, ``"poison"`` raises
    PoisonBatchError, ``"ok"`` computes serially)."""

    def __init__(self, compiled, script):
        self.compiled = compiled
        self.script = list(script)
        self.calls = 0
        self.closed = False
        self.workers = 2
        self.restarts = 0

    def infer_rows(self, rows):
        self.calls += 1
        action = self.script.pop(0) if self.script else "ok"
        if action == "fail":
            raise RuntimeError("stub: injected pool failure")
        if action == "poison":
            raise PoisonBatchError("stub: quarantined row block")
        return self.compiled.forward_rows(rows)

    def alive_workers(self):
        return self.workers

    def close(self):
        self.closed = True


class _StepClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestRobustness:
    def test_deadline_expired_request_fails_at_dispatch(self, workload):
        network, trains = workload
        train = trains[:, 0, :]
        with InferenceServer(
            network, chip_n=CHIP_N, sc_per_npe=SC, plan_cache=None,
            deadline_ms=0.0,
        ) as server:
            original = server._forward

            def slow_forward(rows):
                time.sleep(0.15)
                return original(rows)

            server._forward = slow_forward
            blocker = server.submit(train)
            doomed = server.submit(train, deadline_ms=1.0)
            assert blocker.result(timeout=30.0).steps == trains.shape[0]
            with pytest.raises(DeadlineExceededError):
                doomed.result(timeout=30.0)
            stats = server.stats()
        assert stats.expired == 1
        assert stats.completed == 1
        assert stats.pending == 0

    def test_rejects_nonpositive_deadline(self, workload):
        network, trains = workload
        with InferenceServer(
            network, chip_n=CHIP_N, sc_per_npe=SC, plan_cache=None,
        ) as server:
            with pytest.raises(ConfigurationError):
                server.submit(trains[:, 0, :], deadline_ms=0.0)

    def test_infer_timeout_cancels_the_orphan(self, workload):
        """A timed-out infer() must not leave its request executing
        later: the future is cancelled and skipped at dispatch."""
        network, trains = workload
        train = trains[:, 0, :]
        with InferenceServer(
            network, chip_n=CHIP_N, sc_per_npe=SC, plan_cache=None,
            deadline_ms=0.0,
        ) as server:
            original = server._forward

            def slow_forward(rows):
                time.sleep(0.15)
                return original(rows)

            server._forward = slow_forward
            blocker = server.submit(train)
            with pytest.raises(FutureTimeoutError):
                server.infer(train, timeout=0.02)
            blocker.result(timeout=30.0)
            server._forward = original
            # Give the dispatcher a beat to skip the cancelled orphan.
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                stats = server.stats()
                if stats.cancelled == 1:
                    break
                time.sleep(0.01)
        assert stats.cancelled == 1
        assert stats.completed == 1  # only the blocker ever executed
        assert stats.pending == 0

    def test_pool_failure_counts_toward_breaker_then_opens(self, workload):
        """Consecutive pool failures open the breaker; answers stay
        correct (serial fallback) and the pool is kept, not released."""
        network, trains = workload
        train = trains[:, 0, :]
        want = expected_results(network, trains[:, :1, :])
        clock = _StepClock()
        breaker = CircuitBreaker(
            failure_threshold=2, reset_timeout_s=5.0, clock=clock
        )
        server = InferenceServer(
            network, chip_n=CHIP_N, sc_per_npe=SC, plan_cache=None,
            deadline_ms=0.0, breaker=breaker,
        )
        server.start()
        try:
            stub = _StubPool(
                server.compiled, ["fail", "fail", "ok"]
            )
            server._pool = stub
            for _ in range(2):
                res = server.infer(train, timeout=30.0)
                assert np.array_equal(
                    res.output_raster, want.output_raster[:, 0, :]
                )
            assert breaker.state == "open"
            assert server._pool is stub  # kept, not released
            # While open the pool is skipped entirely.
            server.infer(train, timeout=30.0)
            assert stub.calls == 2
            stats = server.stats()
            assert stats.pool_failures == 2
            assert stats.breaker_state == "open"
            # Cool-down: the half-open probe closes the breaker.
            clock.now += 6.0
            res = server.infer(train, timeout=30.0)
            assert np.array_equal(
                res.output_raster, want.output_raster[:, 0, :]
            )
            assert breaker.state == "closed"
            assert stub.calls == 3
        finally:
            server.stop()

    def test_poison_batch_is_breaker_success(self, workload):
        network, trains = workload
        train = trains[:, 0, :]
        want = expected_results(network, trains[:, :1, :])
        server = InferenceServer(
            network, chip_n=CHIP_N, sc_per_npe=SC, plan_cache=None,
            deadline_ms=0.0,
            breaker=CircuitBreaker(failure_threshold=1),
        )
        server.start()
        try:
            stub = _StubPool(server.compiled, ["poison", "ok"])
            server._pool = stub
            res = server.infer(train, timeout=30.0)
            assert np.array_equal(
                res.output_raster, want.output_raster[:, 0, :]
            )
            # threshold=1: a single *failure* would have opened it.
            assert server.breaker.state == "closed"
            stats = server.stats()
            assert stats.poison_batches == 1
            assert stats.pool_failures == 0
            server.infer(train, timeout=30.0)
            assert stub.calls == 2  # the pool is still in rotation
        finally:
            server.stop()

    def test_health_readiness_and_stats_gauges(self, workload):
        network, trains = workload
        server = InferenceServer(
            network, chip_n=CHIP_N, sc_per_npe=SC, plan_cache=None,
            deadline_ms=0.0,
        )
        assert not server.readiness()
        server.start()
        try:
            assert server.readiness()
            server.infer(trains[:, 0, :], timeout=30.0)
            health = server.health()
            assert health["schema"] == "repro.serve.health/v1"
            assert health["running"] and health["ready"]
            assert health["mode"] == "serial"
            assert health["breaker"]["state"] == "closed"
            assert health["stats"]["completed"] == 1
            stats = server.stats()
            assert stats.breaker_state == "closed"
            assert stats.workers_alive == 0  # serial mode
            assert stats.queue_depth == 0
        finally:
            server.stop()
        assert not server.readiness()

    def test_pool_backed_health_reports_workers(self, workload):
        network, trains = workload
        with InferenceServer(
            network, chip_n=CHIP_N, sc_per_npe=SC, plan_cache=None,
            workers=2, deadline_ms=0.0,
        ) as server:
            if server._pool is None:
                pytest.skip("pool unavailable on this platform")
            server.infer(trains[:, 0, :], timeout=30.0)
            stats = server.stats()
            assert stats.workers_configured == 2
            assert stats.workers_alive == 2
            assert stats.worker_restarts == 0

    def test_drain_stops_intake_and_settles(self, workload):
        network, trains = workload
        server = InferenceServer(
            network, chip_n=CHIP_N, sc_per_npe=SC, plan_cache=None,
            deadline_ms=1.0,
        ).start()
        futures = [server.submit(trains[:, b, :]) for b in range(6)]
        assert server.drain(timeout=30.0)
        for future in futures:
            assert future.result(timeout=5.0).steps == trains.shape[0]
        assert server.stats().pending == 0
        with pytest.raises(ConfigurationError):
            server.submit(trains[:, 0, :])
        assert not server.readiness()
        server.stop()

    def test_drain_is_idempotent(self, workload):
        network, trains = workload
        server = InferenceServer(
            network, chip_n=CHIP_N, sc_per_npe=SC, plan_cache=None,
            deadline_ms=0.0,
        ).start()
        future = server.submit(trains[:, 0, :])
        assert server.drain(timeout=30.0)
        assert future.result(timeout=5.0).steps == trains.shape[0]
        # Repeated drains settle instantly and stay True.
        for _ in range(3):
            start = time.monotonic()
            assert server.drain(timeout=30.0)
            assert time.monotonic() - start < 1.0
        with pytest.raises(ConfigurationError):
            server.submit(trains[:, 0, :])
        server.stop()

    def test_concurrent_drains_with_inflight_infer(self, workload):
        """Several threads drain while requests are still executing:
        every drain must report True and every accepted request must
        resolve -- no strands, no crashes."""
        import threading

        network, trains = workload
        server = InferenceServer(
            network, chip_n=CHIP_N, sc_per_npe=SC, plan_cache=None,
            deadline_ms=1.0,
        ).start()
        original = server._forward

        def slow_forward(rows):
            time.sleep(0.05)
            return original(rows)

        server._forward = slow_forward
        try:
            futures = [server.submit(trains[:, b % 4, :])
                       for b in range(8)]
            verdicts = []

            def drainer():
                verdicts.append(server.drain(timeout=30.0))

            threads = [threading.Thread(target=drainer)
                       for _ in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30.0)
            assert verdicts == [True] * 4
            for future in futures:
                assert future.result(timeout=5.0).steps == trains.shape[0]
            assert server.stats().pending == 0
        finally:
            server._forward = original
            server.stop()

    def test_drain_waits_for_a_submit_caught_mid_admission(self, workload):
        """Regression: a submit that passed the accepting-check but has
        not yet enqueued its request must not be stranded by a
        concurrent drain().  The enqueue is stalled deterministically;
        drain must block on the in-flight admission, then both resolve."""
        import threading

        network, trains = workload
        server = InferenceServer(
            network, chip_n=CHIP_N, sc_per_npe=SC, plan_cache=None,
            deadline_ms=0.0,
        ).start()
        entered = threading.Event()
        release = threading.Event()
        original_put = server._queue.put

        def stalled_put(item, timeout=None):
            entered.set()
            assert release.wait(timeout=10.0)
            return original_put(item, timeout=timeout)

        server._queue.put = stalled_put
        try:
            holder: dict = {}

            def submitter():
                holder["future"] = server.submit(trains[:, 0, :])

            submit_thread = threading.Thread(target=submitter)
            submit_thread.start()
            assert entered.wait(timeout=10.0)

            drain_verdict: dict = {}

            def drainer():
                drain_verdict["settled"] = server.drain(timeout=30.0)

            drain_thread = threading.Thread(target=drainer)
            drain_thread.start()
            # The admission is mid-handshake: drain must NOT settle.
            drain_thread.join(timeout=0.3)
            assert drain_thread.is_alive(), \
                "drain returned while a submit was mid-admission"

            release.set()
            submit_thread.join(timeout=10.0)
            drain_thread.join(timeout=30.0)
            assert drain_verdict["settled"] is True
            result = holder["future"].result(timeout=10.0)
            assert result.steps == trains.shape[0]
            assert server.stats().pending == 0
        finally:
            server._queue.put = original_put
            server.stop()
