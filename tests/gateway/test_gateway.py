"""Integration tests for the HTTP gateway over a live ephemeral port.

Every test drives a real gateway (asyncio listener on 127.0.0.1:0)
fronting a real :class:`InferenceServer`, over real sockets via
``http.client``.  The acceptance contract pinned here: over-limit
tenants get **429**, the breaker-open path gets **503**, expired
deadlines get **504** -- each with the matching typed
``sushi_gateway_rejections_total`` counter in ``/metrics``.
"""

import json
import re
import time
from contextlib import contextmanager
from http.client import HTTPConnection

import numpy as np
import pytest

from repro.gateway import (
    AdmissionController,
    ApiKeyAuthenticator,
    Gateway,
    Tenant,
)
from repro.harness import random_binarized_network
from repro.serve import CircuitBreaker, InferenceServer
from repro.ssnn import compile_network

CHIP_N = 4
SC = 8

TENANTS = (
    Tenant(name="alpha", api_key="key-alpha", rate_per_s=1000, burst=500),
    Tenant(name="tiny", api_key="key-tiny", rate_per_s=0.0, burst=2),
)


@pytest.fixture(scope="module")
def compiled():
    rng = np.random.default_rng(41)
    network = random_binarized_network(rng, sizes=(11, 8, 5), sc_per_npe=SC)
    return compile_network(network, CHIP_N, SC)


@pytest.fixture(scope="module")
def train():
    rng = np.random.default_rng(7)
    return (rng.random((12, 11)) < 0.3).astype(float)


@contextmanager
def live_gateway(compiled, *, deadline_ms=0.0, breaker=None,
                 queue_limit=1024, max_body_bytes=1 << 20):
    server = InferenceServer(
        compiled=compiled, deadline_ms=deadline_ms, breaker=breaker
    ).start()
    gateway = Gateway(
        server,
        authenticator=ApiKeyAuthenticator(TENANTS),
        admission=AdmissionController(server, queue_limit=queue_limit),
        max_body_bytes=max_body_bytes,
    )
    try:
        with gateway:
            yield gateway
    finally:
        server.stop()


def call(gateway, method, path, *, key=None, body=None, timeout=15.0):
    """One HTTP round trip; returns (status, parsed-or-raw body)."""
    conn = HTTPConnection("127.0.0.1", gateway.port, timeout=timeout)
    try:
        headers = {}
        if key is not None:
            headers["X-API-Key"] = key
        payload = (json.dumps(body).encode() if isinstance(body, dict)
                   else body)
        conn.request(method, path, body=payload, headers=headers)
        response = conn.getresponse()
        raw = response.read()
        if response.headers.get_content_type() == "application/json":
            return response.status, json.loads(raw)
        return response.status, raw.decode()
    finally:
        conn.close()


def infer(gateway, train, *, key="key-alpha", deadline_ms=None):
    body = {"spike_train": train.astype(int).tolist()}
    if deadline_ms is not None:
        body["deadline_ms"] = deadline_ms
    return call(gateway, "POST", "/infer", key=key, body=body)


_PROM_LINE = re.compile(
    r"^([A-Za-z_:][A-Za-z0-9_:]*)(?:\{(.*)\})?\s+(-?[0-9.e+E-]+)$"
)


def scrape(gateway):
    """GET /metrics and parse the exposition into {(name, labels): value}."""
    status, text = call(gateway, "GET", "/metrics")
    assert status == 200
    samples = {}
    for line in text.splitlines():
        if line.startswith("#"):
            assert line.startswith(("# HELP ", "# TYPE "))
            continue
        match = _PROM_LINE.match(line)
        assert match, f"unparsable exposition line: {line!r}"
        name, labels, value = match.groups()
        samples[(name, labels or "")] = float(value)
    return samples


def rejection_count(samples, code):
    return samples.get(
        ("sushi_gateway_rejections_total", f'code="{code}"'), 0.0
    )


class TestHappyPath:
    def test_authenticated_infer_round_trip(self, compiled, train):
        with live_gateway(compiled) as gateway:
            status, payload = infer(gateway, train)
        assert status == 200
        assert payload["schema"] == "repro.gateway.infer/v1"
        assert payload["tenant"] == "alpha"
        assert payload["steps"] == 12
        # The served answer is the backend's answer -- the gateway is a
        # transport, never a transform.
        rates = np.asarray(payload["rates"])
        assert rates.shape == (5,)
        assert payload["prediction"] == int(rates.argmax())

    def test_healthz_readyz_and_metrics(self, compiled, train):
        with live_gateway(compiled) as gateway:
            status, health = call(gateway, "GET", "/healthz")
            assert status == 200
            assert health["schema"] == "repro.gateway/v1"
            assert health["backend"]["schema"] == "repro.serve.health/v1"
            assert call(gateway, "GET", "/readyz")[0] == 200
            infer(gateway, train)
            samples = scrape(gateway)
        assert samples[("sushi_server_completed_total", "")] == 1.0
        assert samples[
            ("sushi_gateway_requests_total",
             'path="/infer",status="200"')
        ] == 1.0
        assert samples[
            ("sushi_server_breaker_state", 'state="closed"')
        ] == 1.0
        # The RSFQ trace-replay counters ride along on the same scrape
        # (process-wide totals; see docs/ENGINE.md "Trace compilation").
        for counter in ("sushi_trace_replays_total",
                        "sushi_trace_fallbacks_total",
                        "sushi_trace_cache_hits_total",
                        "sushi_trace_cache_misses_total",
                        "sushi_trace_records_total"):
            assert (counter, "") in samples
        # ... as do the design-space explorer counters (process-wide
        # totals; see docs/EXPLORER.md "Observability").
        for counter in ("sushi_explore_sweeps_total",
                        "sushi_explore_points_evaluated_total",
                        "sushi_explore_point_cache_hits_total",
                        "sushi_explore_infeasible_points_total",
                        "sushi_explore_trace_probe_fallbacks_total"):
            assert (counter, "") in samples

    def test_keep_alive_serves_multiple_requests(self, compiled, train):
        with live_gateway(compiled) as gateway:
            conn = HTTPConnection("127.0.0.1", gateway.port, timeout=15)
            try:
                body = json.dumps(
                    {"spike_train": train.astype(int).tolist()}
                ).encode()
                for _ in range(3):
                    conn.request("POST", "/infer", body=body,
                                 headers={"X-API-Key": "key-alpha"})
                    assert conn.getresponse().read() is not None
            finally:
                conn.close()
            samples = scrape(gateway)
        assert samples[("sushi_gateway_connections_total", "")] >= 1.0
        assert samples[
            ("sushi_gateway_requests_total",
             'path="/infer",status="200"')
        ] == 3.0


class TestValidationAndRouting:
    def test_missing_key_401(self, compiled, train):
        with live_gateway(compiled) as gateway:
            status, payload = infer(gateway, train, key=None)
            samples = scrape(gateway)
        assert status == 401
        assert payload["error"]["code"] == "missing_api_key"
        assert rejection_count(samples, "missing_api_key") == 1.0

    def test_unknown_key_401(self, compiled, train):
        with live_gateway(compiled) as gateway:
            status, payload = infer(gateway, train, key="wrong")
        assert status == 401
        assert payload["error"]["code"] == "invalid_api_key"

    def test_unknown_path_404(self, compiled):
        with live_gateway(compiled) as gateway:
            status, payload = call(gateway, "GET", "/nope")
        assert status == 404
        assert payload["error"]["code"] == "not_found"

    def test_wrong_method_405(self, compiled):
        with live_gateway(compiled) as gateway:
            status, payload = call(gateway, "GET", "/infer",
                                   key="key-alpha")
        assert status == 405
        assert payload["error"]["code"] == "method_not_allowed"

    def test_bad_json_400(self, compiled):
        with live_gateway(compiled) as gateway:
            status, payload = call(gateway, "POST", "/infer",
                                   key="key-alpha", body=b"not json")
        assert status == 400
        assert payload["error"]["code"] == "bad_request"

    def test_wrong_width_400(self, compiled):
        with live_gateway(compiled) as gateway:
            status, payload = call(
                gateway, "POST", "/infer", key="key-alpha",
                body={"spike_train": [[1, 0]]},
            )
        assert status == 400
        assert payload["error"]["code"] == "invalid_train"

    def test_oversized_body_413(self, compiled, train):
        with live_gateway(compiled, max_body_bytes=64) as gateway:
            status, payload = infer(gateway, train)
        assert status == 413
        assert payload["error"]["code"] == "payload_too_large"


class TestLoadShedding:
    def test_over_limit_tenant_429_with_counter(self, compiled, train):
        """Acceptance: over-limit tenants get 429 + rate_limited
        counter; the polite tenant is unaffected."""
        with live_gateway(compiled) as gateway:
            outcomes = [infer(gateway, train, key="key-tiny")[0]
                        for _ in range(5)]
            polite_status, _ = infer(gateway, train, key="key-alpha")
            _, last_body = infer(gateway, train, key="key-tiny")
            samples = scrape(gateway)
        assert outcomes == [200, 200, 429, 429, 429]
        assert polite_status == 200
        assert last_body["error"]["code"] == "rate_limited"
        assert rejection_count(samples, "rate_limited") == 4.0
        assert samples[
            ("sushi_gateway_tenant_requests_total",
             'status="429",tenant="tiny"')
        ] == 4.0

    def test_breaker_open_503_with_counter(self, compiled, train):
        """Acceptance: while the pool breaker is open the gateway sheds
        at the edge with a typed 503."""
        breaker = CircuitBreaker(failure_threshold=1,
                                 reset_timeout_s=300.0)
        with live_gateway(compiled, breaker=breaker) as gateway:
            assert infer(gateway, train)[0] == 200  # healthy first
            breaker.record_failure()
            assert breaker.state == "open"
            statuses = [infer(gateway, train)[0] for _ in range(3)]
            _, body = infer(gateway, train)
            samples = scrape(gateway)
        assert statuses == [503, 503, 503]
        assert body["error"]["code"] == "breaker_open"
        assert rejection_count(samples, "breaker_open") == 4.0
        assert samples[
            ("sushi_server_breaker_state", 'state="open"')
        ] == 1.0

    def test_expired_deadline_504_with_counter(self, compiled, train):
        """Acceptance: a request whose deadline_ms lapses while queued
        gets 504 + deadline_exceeded counter (and the backend counts it
        as expired, not failed)."""
        with live_gateway(compiled) as gateway:
            server = gateway.server
            original = server._forward

            def held_forward(rows):
                time.sleep(0.6)
                return original(rows)

            server._forward = held_forward
            try:
                import threading

                results = {}

                def blocker():
                    results["blocker"] = infer(gateway, train)

                thread = threading.Thread(target=blocker)
                thread.start()
                time.sleep(0.2)  # dispatcher is now inside held_forward
                status, payload = infer(gateway, train, deadline_ms=1.0)
                thread.join(timeout=30)
            finally:
                server._forward = original
            samples = scrape(gateway)
        assert results["blocker"][0] == 200
        assert status == 504
        assert payload["error"]["code"] == "deadline_exceeded"
        assert rejection_count(samples, "deadline_exceeded") == 1.0
        assert samples[("sushi_server_expired_total", "")] == 1.0
        assert samples[("sushi_server_failed_total", "")] == 0.0

    def test_queue_full_503(self, compiled, train):
        with live_gateway(compiled, queue_limit=1) as gateway:
            server = gateway.server
            original = server._forward

            def held_forward(rows):
                time.sleep(0.6)
                return original(rows)

            server._forward = held_forward
            try:
                import threading

                thread = threading.Thread(
                    target=lambda: infer(gateway, train)
                )
                thread.start()
                time.sleep(0.2)
                # Fill the coalescing queue past the admission bound
                # behind the blocked dispatcher.
                queued = server.submit(train)
                status, payload = infer(gateway, train)
                thread.join(timeout=30)
                queued.result(timeout=30)
            finally:
                server._forward = original
            samples = scrape(gateway)
        assert status == 503
        assert payload["error"]["code"] == "queue_full"
        assert rejection_count(samples, "queue_full") == 1.0


class TestDrainLifecycle:
    def test_drain_endpoint_settles_and_flips_readiness(
        self, compiled, train
    ):
        with live_gateway(compiled) as gateway:
            assert infer(gateway, train)[0] == 200
            status, payload = call(gateway, "POST", "/drain",
                                   key="key-alpha", body=b"")
            assert status == 200
            assert payload["drained"] is True
            assert call(gateway, "GET", "/readyz")[0] == 503
            status, payload = infer(gateway, train)
            assert status == 503
            assert payload["error"]["code"] == "not_ready"
            # Liveness stays green: /healthz answers while not ready.
            assert call(gateway, "GET", "/healthz")[0] == 200

    def test_drain_requires_auth(self, compiled):
        with live_gateway(compiled) as gateway:
            status, payload = call(gateway, "POST", "/drain", body=b"")
        assert status == 401
        assert payload["error"]["code"] == "missing_api_key"
