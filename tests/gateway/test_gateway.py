"""Integration tests for the HTTP gateway over a live ephemeral port.

Every test drives a real gateway (asyncio listener on 127.0.0.1:0)
fronting a real :class:`InferenceServer`, over real sockets via
``http.client``.  The acceptance contract pinned here: over-limit
tenants get **429**, the breaker-open path gets **503**, expired
deadlines get **504** -- each with the matching typed
``sushi_gateway_rejections_total`` counter in ``/metrics``.
"""

import json
import re
import threading
import time
from contextlib import contextmanager
from http.client import HTTPConnection

import numpy as np
import pytest

from repro.gateway import (
    AdmissionController,
    ApiKeyAuthenticator,
    Gateway,
    Tenant,
)
from repro.harness import random_binarized_network
from repro.serve import CircuitBreaker, InferenceServer
from repro.ssnn import compile_network

CHIP_N = 4
SC = 8

TENANTS = (
    Tenant(name="alpha", api_key="key-alpha", rate_per_s=1000, burst=500),
    Tenant(name="tiny", api_key="key-tiny", rate_per_s=0.0, burst=2),
    Tenant(name="batch", api_key="key-batch", rate_per_s=1000, burst=500,
           priority=2),
)


@pytest.fixture(scope="module")
def compiled():
    rng = np.random.default_rng(41)
    network = random_binarized_network(rng, sizes=(11, 8, 5), sc_per_npe=SC)
    return compile_network(network, CHIP_N, SC)


@pytest.fixture(scope="module")
def train():
    rng = np.random.default_rng(7)
    return (rng.random((12, 11)) < 0.3).astype(float)


@contextmanager
def live_gateway(compiled, *, deadline_ms=0.0, breaker=None,
                 queue_limit=1024, shed_queue_depth=None,
                 max_body_bytes=1 << 20):
    server = InferenceServer(
        compiled=compiled, deadline_ms=deadline_ms, breaker=breaker
    ).start()
    gateway = Gateway(
        server,
        authenticator=ApiKeyAuthenticator(TENANTS),
        admission=AdmissionController(
            server, queue_limit=queue_limit,
            shed_queue_depth=shed_queue_depth,
        ),
        max_body_bytes=max_body_bytes,
    )
    try:
        with gateway:
            yield gateway
    finally:
        server.stop()


def call_full(gateway, method, path, *, key=None, body=None, timeout=15.0,
              headers=None):
    """One HTTP round trip; returns (status, body, response headers)."""
    conn = HTTPConnection("127.0.0.1", gateway.port, timeout=timeout)
    try:
        send_headers = dict(headers or {})
        if key is not None:
            send_headers["X-API-Key"] = key
        payload = (json.dumps(body).encode() if isinstance(body, dict)
                   else body)
        conn.request(method, path, body=payload, headers=send_headers)
        response = conn.getresponse()
        raw = response.read()
        parsed = (json.loads(raw)
                  if response.headers.get_content_type()
                  == "application/json" else raw.decode())
        return response.status, parsed, dict(response.headers)
    finally:
        conn.close()


def call(gateway, method, path, *, key=None, body=None, timeout=15.0):
    """One HTTP round trip; returns (status, parsed-or-raw body)."""
    status, payload, _ = call_full(gateway, method, path, key=key,
                                   body=body, timeout=timeout)
    return status, payload


def _wait_for(predicate, timeout_s=5.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.005)
    raise AssertionError("timed out waiting for gateway test condition")


def infer(gateway, train, *, key="key-alpha", deadline_ms=None):
    body = {"spike_train": train.astype(int).tolist()}
    if deadline_ms is not None:
        body["deadline_ms"] = deadline_ms
    return call(gateway, "POST", "/infer", key=key, body=body)


_PROM_LINE = re.compile(
    r"^([A-Za-z_:][A-Za-z0-9_:]*)(?:\{(.*)\})?\s+(-?[0-9.e+E-]+)$"
)


def scrape(gateway):
    """GET /metrics and parse the exposition into {(name, labels): value}."""
    status, text = call(gateway, "GET", "/metrics")
    assert status == 200
    samples = {}
    for line in text.splitlines():
        if line.startswith("#"):
            assert line.startswith(("# HELP ", "# TYPE "))
            continue
        match = _PROM_LINE.match(line)
        assert match, f"unparsable exposition line: {line!r}"
        name, labels, value = match.groups()
        samples[(name, labels or "")] = float(value)
    return samples


def rejection_count(samples, code):
    return samples.get(
        ("sushi_gateway_rejections_total", f'code="{code}"'), 0.0
    )


class TestHappyPath:
    def test_authenticated_infer_round_trip(self, compiled, train):
        with live_gateway(compiled) as gateway:
            status, payload = infer(gateway, train)
        assert status == 200
        assert payload["schema"] == "repro.gateway.infer/v1"
        assert payload["tenant"] == "alpha"
        assert payload["steps"] == 12
        # The served answer is the backend's answer -- the gateway is a
        # transport, never a transform.
        rates = np.asarray(payload["rates"])
        assert rates.shape == (5,)
        assert payload["prediction"] == int(rates.argmax())

    def test_healthz_readyz_and_metrics(self, compiled, train):
        with live_gateway(compiled) as gateway:
            status, health = call(gateway, "GET", "/healthz")
            assert status == 200
            assert health["schema"] == "repro.gateway/v1"
            assert health["backend"]["schema"] == "repro.serve.health/v1"
            assert call(gateway, "GET", "/readyz")[0] == 200
            infer(gateway, train)
            samples = scrape(gateway)
        assert samples[("sushi_server_completed_total", "")] == 1.0
        assert samples[
            ("sushi_gateway_requests_total",
             'path="/infer",status="200"')
        ] == 1.0
        assert samples[
            ("sushi_server_breaker_state", 'state="closed"')
        ] == 1.0
        # The RSFQ trace-replay counters ride along on the same scrape
        # (process-wide totals; see docs/ENGINE.md "Trace compilation").
        for counter in ("sushi_trace_replays_total",
                        "sushi_trace_fallbacks_total",
                        "sushi_trace_cache_hits_total",
                        "sushi_trace_cache_misses_total",
                        "sushi_trace_records_total"):
            assert (counter, "") in samples
        # ... as do the design-space explorer counters (process-wide
        # totals; see docs/EXPLORER.md "Observability").
        for counter in ("sushi_explore_sweeps_total",
                        "sushi_explore_points_evaluated_total",
                        "sushi_explore_point_cache_hits_total",
                        "sushi_explore_infeasible_points_total",
                        "sushi_explore_trace_probe_fallbacks_total"):
            assert (counter, "") in samples

    def test_keep_alive_serves_multiple_requests(self, compiled, train):
        with live_gateway(compiled) as gateway:
            conn = HTTPConnection("127.0.0.1", gateway.port, timeout=15)
            try:
                body = json.dumps(
                    {"spike_train": train.astype(int).tolist()}
                ).encode()
                for _ in range(3):
                    conn.request("POST", "/infer", body=body,
                                 headers={"X-API-Key": "key-alpha"})
                    assert conn.getresponse().read() is not None
            finally:
                conn.close()
            samples = scrape(gateway)
        assert samples[("sushi_gateway_connections_total", "")] >= 1.0
        assert samples[
            ("sushi_gateway_requests_total",
             'path="/infer",status="200"')
        ] == 3.0


class TestValidationAndRouting:
    def test_missing_key_401(self, compiled, train):
        with live_gateway(compiled) as gateway:
            status, payload = infer(gateway, train, key=None)
            samples = scrape(gateway)
        assert status == 401
        assert payload["error"]["code"] == "missing_api_key"
        assert rejection_count(samples, "missing_api_key") == 1.0

    def test_unknown_key_401(self, compiled, train):
        with live_gateway(compiled) as gateway:
            status, payload = infer(gateway, train, key="wrong")
        assert status == 401
        assert payload["error"]["code"] == "invalid_api_key"

    def test_unknown_path_404(self, compiled):
        with live_gateway(compiled) as gateway:
            status, payload = call(gateway, "GET", "/nope")
        assert status == 404
        assert payload["error"]["code"] == "not_found"

    def test_wrong_method_405(self, compiled):
        with live_gateway(compiled) as gateway:
            status, payload = call(gateway, "GET", "/infer",
                                   key="key-alpha")
        assert status == 405
        assert payload["error"]["code"] == "method_not_allowed"

    def test_bad_json_400(self, compiled):
        with live_gateway(compiled) as gateway:
            status, payload = call(gateway, "POST", "/infer",
                                   key="key-alpha", body=b"not json")
        assert status == 400
        assert payload["error"]["code"] == "bad_request"

    def test_wrong_width_400(self, compiled):
        with live_gateway(compiled) as gateway:
            status, payload = call(
                gateway, "POST", "/infer", key="key-alpha",
                body={"spike_train": [[1, 0]]},
            )
        assert status == 400
        assert payload["error"]["code"] == "invalid_train"

    def test_oversized_body_413(self, compiled, train):
        with live_gateway(compiled, max_body_bytes=64) as gateway:
            status, payload = infer(gateway, train)
        assert status == 413
        assert payload["error"]["code"] == "payload_too_large"


class TestLoadShedding:
    def test_over_limit_tenant_429_with_counter(self, compiled, train):
        """Acceptance: over-limit tenants get 429 + rate_limited
        counter; the polite tenant is unaffected."""
        with live_gateway(compiled) as gateway:
            outcomes = [infer(gateway, train, key="key-tiny")[0]
                        for _ in range(5)]
            polite_status, _ = infer(gateway, train, key="key-alpha")
            _, last_body, last_headers = call_full(
                gateway, "POST", "/infer", key="key-tiny",
                body={"spike_train": train.astype(int).tolist()},
            )
            samples = scrape(gateway)
        assert outcomes == [200, 200, 429, 429, 429]
        assert polite_status == 200
        assert last_body["error"]["code"] == "rate_limited"
        # Burst-only bucket (rate 0) never refills: the Retry-After
        # hint falls back to the fixed 60s "come back much later".
        assert last_headers["Retry-After"] == "60"
        assert rejection_count(samples, "rate_limited") == 4.0
        assert samples[
            ("sushi_gateway_tenant_requests_total",
             'status="429",tenant="tiny"')
        ] == 4.0

    def test_breaker_open_503_with_counter(self, compiled, train):
        """Acceptance: while the pool breaker is open the gateway sheds
        at the edge with a typed 503."""
        breaker = CircuitBreaker(failure_threshold=1,
                                 reset_timeout_s=300.0)
        with live_gateway(compiled, breaker=breaker) as gateway:
            assert infer(gateway, train)[0] == 200  # healthy first
            breaker.record_failure()
            assert breaker.state == "open"
            statuses = [infer(gateway, train)[0] for _ in range(3)]
            _, body, headers = call_full(
                gateway, "POST", "/infer", key="key-alpha",
                body={"spike_train": train.astype(int).tolist()},
            )
            samples = scrape(gateway)
        assert statuses == [503, 503, 503]
        assert body["error"]["code"] == "breaker_open"
        # Retry-After is the breaker's remaining cooldown, rounded up.
        assert 290 <= int(headers["Retry-After"]) <= 300
        assert rejection_count(samples, "breaker_open") == 4.0
        assert samples[
            ("sushi_server_breaker_state", 'state="open"')
        ] == 1.0

    def test_expired_deadline_504_with_counter(self, compiled, train):
        """Acceptance: a request whose deadline_ms lapses while queued
        gets 504 + deadline_exceeded counter (and the backend counts it
        as expired, not failed)."""
        with live_gateway(compiled) as gateway:
            server = gateway.server
            original = server._forward

            def held_forward(rows):
                time.sleep(0.6)
                return original(rows)

            server._forward = held_forward
            try:
                import threading

                results = {}

                def blocker():
                    results["blocker"] = infer(gateway, train)

                thread = threading.Thread(target=blocker)
                thread.start()
                time.sleep(0.2)  # dispatcher is now inside held_forward
                status, payload = infer(gateway, train, deadline_ms=1.0)
                thread.join(timeout=30)
            finally:
                server._forward = original
            samples = scrape(gateway)
        assert results["blocker"][0] == 200
        assert status == 504
        assert payload["error"]["code"] == "deadline_exceeded"
        assert rejection_count(samples, "deadline_exceeded") == 1.0
        assert samples[("sushi_server_expired_total", "")] == 1.0
        assert samples[("sushi_server_failed_total", "")] == 0.0

    def test_queue_full_503(self, compiled, train):
        with live_gateway(compiled, queue_limit=1) as gateway:
            server = gateway.server
            original = server._forward

            def held_forward(rows):
                time.sleep(0.6)
                return original(rows)

            server._forward = held_forward
            try:
                import threading

                thread = threading.Thread(
                    target=lambda: infer(gateway, train)
                )
                thread.start()
                time.sleep(0.2)
                # Fill the coalescing queue past the admission bound
                # behind the blocked dispatcher.
                queued = server.submit(train)
                status, payload = infer(gateway, train)
                thread.join(timeout=30)
                queued.result(timeout=30)
            finally:
                server._forward = original
            samples = scrape(gateway)
        assert status == 503
        assert payload["error"]["code"] == "queue_full"
        assert rejection_count(samples, "queue_full") == 1.0


class TestPriorityShedding:
    def test_batch_priority_sheds_overloaded_while_critical_admitted(
        self, compiled, train
    ):
        """Shed-before-queue: past the soft watermark, priority-2
        traffic gets 503 ``overloaded`` (Retry-After: 1) while
        priority-0 traffic still fills the remaining headroom."""
        with live_gateway(compiled, queue_limit=8,
                          shed_queue_depth=1) as gateway:
            server = gateway.server
            release = threading.Event()
            original = server._forward

            def held_forward(rows):
                release.wait(15.0)
                return original(rows)

            server._forward = held_forward
            try:
                results = {}

                def alpha_request(tag):
                    results[tag] = infer(gateway, train)

                blocker = threading.Thread(target=alpha_request,
                                           args=("blocker",))
                blocker.start()
                _wait_for(lambda: server.stats().pending >= 1)
                # One queued row puts depth at the shed watermark.
                queued = server.submit(train)
                _wait_for(lambda: server.queue_depth() >= 1)
                status, body, headers = call_full(
                    gateway, "POST", "/infer", key="key-batch",
                    body={"spike_train": train.astype(int).tolist()},
                )
                # Critical traffic is still admitted past the
                # watermark (it blocks until the dispatcher resumes).
                second = threading.Thread(target=alpha_request,
                                          args=("critical",))
                second.start()
                _wait_for(lambda: server.stats().pending >= 3)
                release.set()
                blocker.join(timeout=30)
                second.join(timeout=30)
                queued.result(timeout=30)
            finally:
                release.set()
                server._forward = original
            samples = scrape(gateway)
        assert status == 503
        assert body["error"]["code"] == "overloaded"
        assert headers["Retry-After"] == "1"
        assert results["blocker"][0] == 200
        assert results["critical"][0] == 200
        assert rejection_count(samples, "overloaded") == 1.0
        assert samples[
            ("sushi_shed_requests_total",
             'code="overloaded",priority="2"')
        ] == 1.0


class TestIdempotency:
    def test_same_key_replays_without_recomputing(self, compiled, train):
        body = {"spike_train": train.astype(int).tolist()}
        with live_gateway(compiled) as gateway:
            first = call_full(gateway, "POST", "/infer", key="key-alpha",
                              body=body,
                              headers={"Idempotency-Key": "retry-1"})
            second = call_full(gateway, "POST", "/infer", key="key-alpha",
                               body=body,
                               headers={"Idempotency-Key": "retry-1"})
            fresh = call_full(gateway, "POST", "/infer", key="key-alpha",
                              body=body,
                              headers={"Idempotency-Key": "retry-2"})
            # The backend bumps `completed` a beat after resolving the
            # response future, so poll rather than read-once.
            _wait_for(lambda: gateway.server.stats().completed >= 2)
            completed = gateway.server.stats().completed
            samples = scrape(gateway)
        assert first[0] == second[0] == fresh[0] == 200
        assert "X-Idempotent-Replay" not in first[2]
        assert second[2]["X-Idempotent-Replay"] == "true"
        assert "X-Idempotent-Replay" not in fresh[2]
        # The replay is byte-for-byte the original answer, and the
        # backend computed once per distinct key.
        assert second[1] == first[1]
        assert completed == 2
        assert samples[
            ("sushi_gateway_idempotent_replays_total", 'tenant="alpha"')
        ] == 1.0

    def test_keys_are_tenant_scoped(self, compiled, train):
        body = {"spike_train": train.astype(int).tolist()}
        with live_gateway(compiled) as gateway:
            alpha = call_full(gateway, "POST", "/infer", key="key-alpha",
                              body=body,
                              headers={"Idempotency-Key": "shared"})
            batch = call_full(gateway, "POST", "/infer", key="key-batch",
                              body=body,
                              headers={"Idempotency-Key": "shared"})
            _wait_for(lambda: gateway.server.stats().completed >= 2)
            completed = gateway.server.stats().completed
        assert alpha[0] == batch[0] == 200
        # Same raw key, different tenants: no cross-tenant replay.
        assert "X-Idempotent-Replay" not in batch[2]
        assert completed == 2


class TestMetricsFamilies:
    def test_client_and_shed_families_are_exported(self, compiled, train):
        with live_gateway(compiled) as gateway:
            statuses = [infer(gateway, train, key="key-tiny")[0]
                        for _ in range(3)]
            samples = scrape(gateway)
        assert statuses == [200, 200, 429]
        names = {name for name, _ in samples}
        # Every client counter surfaces as its own family (the values
        # are process-wide totals, so only presence is asserted here).
        from repro.gateway.client import CLIENT_COUNTER_FIELDS
        for field in CLIENT_COUNTER_FIELDS:
            assert f"sushi_client_{field}_total" in names
        assert samples[
            ("sushi_shed_requests_total",
             'code="rate_limited",priority="1"')
        ] == 1.0


class TestCloseWithInflight:
    def test_close_lets_inflight_keepalive_request_complete(
        self, compiled, train
    ):
        """``Gateway.close()`` mid-response: the event-loop thread
        drains in-flight handler tasks before the loop closes, so a
        request already accepted on a keep-alive connection still gets
        its 200 over the live socket."""
        server = InferenceServer(compiled=compiled).start()
        gateway = Gateway(
            server,
            authenticator=ApiKeyAuthenticator(TENANTS),
            admission=AdmissionController(server),
        ).run_in_thread()
        release = threading.Event()
        original = server._forward

        def held_forward(rows):
            release.wait(15.0)
            return original(rows)

        server._forward = held_forward
        conn = HTTPConnection("127.0.0.1", gateway.port, timeout=30)
        results = {}
        try:
            body = json.dumps(
                {"spike_train": train.astype(int).tolist()}
            ).encode()

            def request():
                conn.request("POST", "/infer", body=body,
                             headers={"X-API-Key": "key-alpha"})
                response = conn.getresponse()
                results["status"] = response.status
                results["payload"] = json.loads(response.read())

            reader = threading.Thread(target=request)
            reader.start()
            _wait_for(lambda: server.stats().pending >= 1)
            closer = threading.Thread(target=gateway.close)
            closer.start()
            time.sleep(0.05)  # close is now waiting on the handler
            release.set()
            reader.join(timeout=30)
            closer.join(timeout=30)
            assert not closer.is_alive()
        finally:
            release.set()
            server._forward = original
            conn.close()
            gateway.close()
            server.stop()
        assert results["status"] == 200
        assert results["payload"]["tenant"] == "alpha"
        rates = np.asarray(results["payload"]["rates"])
        assert results["payload"]["prediction"] == int(rates.argmax())


class TestDrainLifecycle:
    def test_drain_endpoint_settles_and_flips_readiness(
        self, compiled, train
    ):
        with live_gateway(compiled) as gateway:
            assert infer(gateway, train)[0] == 200
            status, payload = call(gateway, "POST", "/drain",
                                   key="key-alpha", body=b"")
            assert status == 200
            assert payload["drained"] is True
            assert call(gateway, "GET", "/readyz")[0] == 503
            status, payload = infer(gateway, train)
            assert status == 503
            assert payload["error"]["code"] == "not_ready"
            # Liveness stays green: /healthz answers while not ready.
            assert call(gateway, "GET", "/healthz")[0] == 200

    def test_drain_requires_auth(self, compiled):
        with live_gateway(compiled) as gateway:
            status, payload = call(gateway, "POST", "/drain", body=b"")
        assert status == 401
        assert payload["error"]["code"] == "missing_api_key"
