"""Unit tests for per-tenant API-key authentication."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.gateway.auth import (
    API_KEY_HEADER,
    ApiKeyAuthenticator,
    Tenant,
    demo_tenants,
)
from repro.gateway.protocol import ProtocolError


class TestTenant:
    def test_defaults(self):
        tenant = Tenant(name="t", api_key="k")
        assert tenant.rate_per_s == 100.0
        assert tenant.burst == 100

    @pytest.mark.parametrize("kwargs", [
        {"name": "", "api_key": "k"},
        {"name": "t", "api_key": ""},
        {"name": "t", "api_key": "k", "rate_per_s": -1},
        {"name": "t", "api_key": "k", "burst": 0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            Tenant(**kwargs)

    def test_zero_rate_is_a_valid_burst_only_contract(self):
        assert Tenant(name="t", api_key="k", rate_per_s=0.0).rate_per_s == 0


class TestAuthenticator:
    def test_authenticates_by_header(self):
        auth = ApiKeyAuthenticator.from_tenants(
            Tenant(name="a", api_key="ka"), Tenant(name="b", api_key="kb")
        )
        assert auth.authenticate({API_KEY_HEADER: "kb"}).name == "b"

    def test_missing_key_is_401(self):
        auth = ApiKeyAuthenticator.from_tenants(
            Tenant(name="a", api_key="ka")
        )
        with pytest.raises(ProtocolError) as exc:
            auth.authenticate({})
        assert exc.value.status == 401
        assert exc.value.code == "missing_api_key"

    def test_unknown_key_is_401(self):
        auth = ApiKeyAuthenticator.from_tenants(
            Tenant(name="a", api_key="ka")
        )
        with pytest.raises(ProtocolError) as exc:
            auth.authenticate({API_KEY_HEADER: "wrong"})
        assert exc.value.status == 401
        assert exc.value.code == "invalid_api_key"

    def test_duplicate_keys_rejected(self):
        with pytest.raises(ConfigurationError):
            ApiKeyAuthenticator.from_tenants(
                Tenant(name="a", api_key="same"),
                Tenant(name="b", api_key="same"),
            )

    def test_empty_tenant_set_rejected(self):
        with pytest.raises(ConfigurationError):
            ApiKeyAuthenticator([])

    def test_lookup(self):
        auth = ApiKeyAuthenticator.from_tenants(
            Tenant(name="a", api_key="ka")
        )
        assert auth.lookup("ka").name == "a"
        assert auth.lookup("nope") is None

    def test_from_json_file(self, tmp_path):
        path = tmp_path / "tenants.json"
        path.write_text(json.dumps([
            {"name": "x", "api_key": "kx", "rate_per_s": 5, "burst": 2},
            {"name": "y", "api_key": "ky"},
        ]))
        auth = ApiKeyAuthenticator.from_json_file(path)
        assert {t.name for t in auth.tenants} == {"x", "y"}
        assert auth.lookup("kx").burst == 2

    def test_from_json_file_rejects_non_list(self, tmp_path):
        path = tmp_path / "tenants.json"
        path.write_text('{"name": "x"}')
        with pytest.raises(ConfigurationError):
            ApiKeyAuthenticator.from_json_file(path)

    def test_demo_tenants_cover_the_loadgen_contract(self):
        auth = ApiKeyAuthenticator(demo_tenants())
        burst_tenant = auth.lookup("demo-key-burst")
        # The deterministic tenant-skew scenario depends on this
        # burst-only contract; changing it invalidates BENCH_gateway.
        assert burst_tenant.rate_per_s == 0.0
        assert burst_tenant.burst == 10
