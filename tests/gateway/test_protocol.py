"""Unit tests for the gateway wire protocol (HTTP framing + JSON)."""

import asyncio
import json

import numpy as np
import pytest

from repro.gateway.protocol import (
    ERROR_CODES,
    ProtocolError,
    error_body,
    infer_response_body,
    parse_infer_request,
    read_request,
    render_response,
)


def parse(raw: bytes, **kwargs):
    """Feed raw bytes to read_request through a StreamReader."""
    async def run():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader, **kwargs)

    return asyncio.run(run())


class TestHttpParsing:
    def test_parses_post_with_body(self):
        raw = (b"POST /infer?x=1 HTTP/1.1\r\n"
               b"Host: localhost\r\n"
               b"X-API-Key: k\r\n"
               b"Content-Length: 4\r\n"
               b"\r\nabcd")
        req = parse(raw)
        assert req.method == "POST"
        assert req.path == "/infer"
        assert req.query == "x=1"
        assert req.headers["x-api-key"] == "k"
        assert req.body == b"abcd"
        assert req.keep_alive

    def test_connection_close_header(self):
        raw = (b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n")
        assert not parse(raw).keep_alive

    def test_clean_eof_returns_none(self):
        assert parse(b"") is None

    def test_malformed_request_line(self):
        with pytest.raises(ProtocolError) as exc:
            parse(b"NOT-HTTP\r\n\r\n")
        assert exc.value.status == 400
        assert exc.value.code == "bad_request"

    def test_malformed_header(self):
        with pytest.raises(ProtocolError):
            parse(b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n")

    def test_post_without_length_is_411(self):
        with pytest.raises(ProtocolError) as exc:
            parse(b"POST /infer HTTP/1.1\r\n\r\n")
        assert exc.value.status == 411
        assert exc.value.code == "length_required"

    def test_chunked_encoding_rejected(self):
        raw = (b"POST /infer HTTP/1.1\r\n"
               b"Transfer-Encoding: chunked\r\n\r\n")
        with pytest.raises(ProtocolError) as exc:
            parse(raw)
        assert exc.value.status == 411

    def test_oversized_body_is_413(self):
        raw = (b"POST /infer HTTP/1.1\r\n"
               b"Content-Length: 1000\r\n\r\n" + b"x" * 1000)
        with pytest.raises(ProtocolError) as exc:
            parse(raw, max_body_bytes=100)
        assert exc.value.status == 413
        assert exc.value.code == "payload_too_large"

    def test_truncated_body_is_400(self):
        raw = (b"POST /infer HTTP/1.1\r\n"
               b"Content-Length: 10\r\n\r\nabc")
        with pytest.raises(ProtocolError) as exc:
            parse(raw)
        assert exc.value.status == 400


class TestResponses:
    def test_render_response_frame(self):
        frame = render_response(200, b'{"a":1}')
        head, _, body = frame.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 200 OK\r\n")
        assert b"Content-Length: 7" in head
        assert b"Connection: keep-alive" in head
        assert body == b'{"a":1}'

    def test_close_and_extra_headers(self):
        frame = render_response(
            429, b"{}", keep_alive=False,
            extra_headers=(("Retry-After", "1"),),
        )
        assert b"Connection: close" in frame
        assert b"Retry-After: 1" in frame

    def test_error_body_is_typed(self):
        payload = json.loads(error_body("rate_limited", "slow down"))
        assert payload["schema"] == "repro.gateway.error/v1"
        assert payload["error"]["code"] == "rate_limited"
        assert payload["error"]["message"] == "slow down"

    def test_error_body_rejects_unknown_code(self):
        with pytest.raises(ValueError):
            error_body("made-up-code", "nope")

    def test_protocol_error_rejects_unknown_code(self):
        with pytest.raises(ValueError):
            ProtocolError(400, "made-up-code", "nope")

    def test_every_error_code_is_stable(self):
        # The set the loadgen and tests assert against; shrinking it is
        # a breaking wire-contract change.
        assert set(ERROR_CODES) >= {
            "rate_limited", "queue_full", "breaker_open",
            "deadline_exceeded", "missing_api_key", "invalid_api_key",
            "invalid_train", "not_ready",
        }


class TestInferPayload:
    def body(self, **payload) -> bytes:
        return json.dumps(payload).encode()

    def test_valid_payload(self):
        train = [[0, 1, 0], [1, 0, 1]]
        req = parse_infer_request(
            self.body(spike_train=train, deadline_ms=25), in_features=3
        )
        assert req.spike_train.shape == (2, 3)
        assert req.spike_train.dtype == np.float64
        assert req.deadline_ms == 25.0

    def test_deadline_optional(self):
        req = parse_infer_request(
            self.body(spike_train=[[1, 0]]), in_features=2
        )
        assert req.deadline_ms is None

    def test_not_json(self):
        with pytest.raises(ProtocolError) as exc:
            parse_infer_request(b"not json{", in_features=2)
        assert exc.value.code == "bad_request"

    def test_non_object_body(self):
        with pytest.raises(ProtocolError) as exc:
            parse_infer_request(b"[1,2]", in_features=2)
        assert exc.value.code == "bad_request"

    def test_missing_train(self):
        with pytest.raises(ProtocolError) as exc:
            parse_infer_request(self.body(deadline_ms=5), in_features=2)
        assert exc.value.code == "invalid_train"

    def test_ragged_train(self):
        with pytest.raises(ProtocolError) as exc:
            parse_infer_request(
                self.body(spike_train=[[1, 0], [1]]), in_features=2
            )
        assert exc.value.code == "invalid_train"

    def test_wrong_width(self):
        with pytest.raises(ProtocolError) as exc:
            parse_infer_request(
                self.body(spike_train=[[1, 0, 1]]), in_features=2
            )
        assert exc.value.code == "invalid_train"
        assert "3" in exc.value.message

    def test_non_binary_entries(self):
        with pytest.raises(ProtocolError) as exc:
            parse_infer_request(
                self.body(spike_train=[[0.5, 1.0]]), in_features=2
            )
        assert exc.value.code == "invalid_train"

    @pytest.mark.parametrize("deadline", [0, -1, "soon", True])
    def test_bad_deadline(self, deadline):
        with pytest.raises(ProtocolError) as exc:
            parse_infer_request(
                self.body(spike_train=[[1, 0]], deadline_ms=deadline),
                in_features=2,
            )
        assert exc.value.code == "invalid_deadline"

    def test_infer_response_roundtrip(self):
        class FakeResult:
            prediction = 2
            rates = np.array([0.1, 0.2, 0.7])
            latency_ms = 1.23456
            batch_size = 4
            steps = 24

        payload = json.loads(infer_response_body(FakeResult(), "t-a"))
        assert payload["schema"] == "repro.gateway.infer/v1"
        assert payload["prediction"] == 2
        assert payload["rates"] == [0.1, 0.2, 0.7]
        assert payload["latency_ms"] == 1.235
        assert payload["tenant"] == "t-a"


class TestDocsContract:
    def test_gateway_docs_error_table_matches_error_codes(self):
        """docs/GATEWAY.md's error table is part of the wire contract:
        every code in ERROR_CODES must be documented there, and the
        docs must not advertise codes the gateway cannot emit."""
        import re
        from pathlib import Path

        docs = (Path(__file__).resolve().parents[2] / "docs"
                / "GATEWAY.md").read_text()
        start = docs.index("| HTTP | `code`")
        table = docs[start:].split("\n\n")[0]
        documented = set()
        for line in table.splitlines()[2:]:  # skip header + separator
            cells = line.split("|")
            assert len(cells) >= 4, f"malformed table row: {line!r}"
            documented.update(re.findall(r"`([a-z_]+)`", cells[2]))
        assert documented == set(ERROR_CODES), (
            f"docs table vs ERROR_CODES: missing from docs "
            f"{set(ERROR_CODES) - documented}, stale in docs "
            f"{documented - set(ERROR_CODES)}"
        )
