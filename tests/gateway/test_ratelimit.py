"""Unit tests for token buckets and backend admission control.

An injectable step clock makes every refill deterministic; the
admission controller is exercised against a stub server so each
rejection reason is pinned in isolation.
"""

import pytest

from repro.errors import ConfigurationError
from repro.gateway.auth import Tenant
from repro.gateway.ratelimit import (
    AdmissionController,
    RateLimiter,
    TokenBucket,
)


class StepClock:
    def __init__(self):
        self.now = 1000.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture()
def clock():
    return StepClock()


class TestTokenBucket:
    def test_burst_then_empty(self, clock):
        bucket = TokenBucket(rate_per_s=1.0, burst=3, clock=clock)
        assert [bucket.try_acquire() for _ in range(4)] == [
            True, True, True, False
        ]

    def test_refill_at_rate(self, clock):
        bucket = TokenBucket(rate_per_s=2.0, burst=2, clock=clock)
        bucket.try_acquire()
        bucket.try_acquire()
        assert not bucket.try_acquire()
        clock.advance(0.5)  # +1 token
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_refill_caps_at_burst(self, clock):
        bucket = TokenBucket(rate_per_s=100.0, burst=2, clock=clock)
        clock.advance(60.0)
        assert bucket.tokens == 2.0

    def test_zero_rate_never_refills(self, clock):
        bucket = TokenBucket(rate_per_s=0.0, burst=1, clock=clock)
        assert bucket.try_acquire()
        clock.advance(3600.0)
        assert not bucket.try_acquire()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TokenBucket(rate_per_s=-1, burst=1)
        with pytest.raises(ConfigurationError):
            TokenBucket(rate_per_s=1, burst=0)


class TestRateLimiter:
    def test_buckets_are_per_tenant(self, clock):
        limiter = RateLimiter(clock=clock)
        greedy = Tenant(name="g", api_key="kg", rate_per_s=0, burst=1)
        polite = Tenant(name="p", api_key="kp", rate_per_s=0, burst=2)
        assert limiter.allow(greedy)
        assert not limiter.allow(greedy)
        assert limiter.allow(polite)  # unaffected by g's bucket
        assert limiter.allow(polite)
        assert not limiter.allow(polite)

    def test_bucket_inspection(self, clock):
        limiter = RateLimiter(clock=clock)
        tenant = Tenant(name="t", api_key="k", rate_per_s=5, burst=7)
        assert limiter.bucket("t") is None
        limiter.allow(tenant)
        assert limiter.bucket("t").burst == 7


class _StubBreaker:
    def __init__(self, state="closed"):
        self.state = state


class _StubServer:
    def __init__(self, ready=True, breaker_state="closed", depth=0):
        self._ready = ready
        self.breaker = _StubBreaker(breaker_state)
        self._depth = depth

    def readiness(self):
        return self._ready

    def queue_depth(self):
        return self._depth


class TestAdmissionController:
    def test_admits_healthy_backend(self):
        assert AdmissionController(_StubServer()).check() is None

    def test_not_ready(self):
        controller = AdmissionController(_StubServer(ready=False))
        assert controller.check() == "not_ready"

    def test_breaker_open_sheds(self):
        controller = AdmissionController(
            _StubServer(breaker_state="open")
        )
        assert controller.check() == "breaker_open"

    def test_breaker_shedding_can_be_disabled(self):
        controller = AdmissionController(
            _StubServer(breaker_state="open"), shed_on_breaker_open=False
        )
        assert controller.check() is None

    def test_half_open_is_admitted(self):
        controller = AdmissionController(
            _StubServer(breaker_state="half-open")
        )
        assert controller.check() is None

    def test_queue_depth_bound(self):
        controller = AdmissionController(
            _StubServer(depth=5), queue_limit=5
        )
        assert controller.check() == "queue_full"
        controller = AdmissionController(
            _StubServer(depth=4), queue_limit=5
        )
        assert controller.check() is None

    def test_reason_precedence_ready_first(self):
        # A draining backend reads as not_ready even when its queue is
        # also over the bound -- the more actionable signal wins.
        controller = AdmissionController(
            _StubServer(ready=False, breaker_state="open", depth=10**6),
            queue_limit=1,
        )
        assert controller.check() == "not_ready"

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AdmissionController(_StubServer(), queue_limit=0)
