"""Unit tests for token buckets and backend admission control.

An injectable step clock makes every refill deterministic; the
admission controller is exercised against a stub server so each
rejection reason is pinned in isolation.
"""

import pytest

from repro.errors import ConfigurationError
from repro.gateway.auth import Tenant
from repro.gateway.ratelimit import (
    AdmissionController,
    RateLimiter,
    TokenBucket,
)


class StepClock:
    def __init__(self):
        self.now = 1000.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture()
def clock():
    return StepClock()


class TestTokenBucket:
    def test_burst_then_empty(self, clock):
        bucket = TokenBucket(rate_per_s=1.0, burst=3, clock=clock)
        assert [bucket.try_acquire() for _ in range(4)] == [
            True, True, True, False
        ]

    def test_refill_at_rate(self, clock):
        bucket = TokenBucket(rate_per_s=2.0, burst=2, clock=clock)
        bucket.try_acquire()
        bucket.try_acquire()
        assert not bucket.try_acquire()
        clock.advance(0.5)  # +1 token
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_refill_caps_at_burst(self, clock):
        bucket = TokenBucket(rate_per_s=100.0, burst=2, clock=clock)
        clock.advance(60.0)
        assert bucket.tokens == 2.0

    def test_zero_rate_never_refills(self, clock):
        bucket = TokenBucket(rate_per_s=0.0, burst=1, clock=clock)
        assert bucket.try_acquire()
        clock.advance(3600.0)
        assert not bucket.try_acquire()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TokenBucket(rate_per_s=-1, burst=1)
        with pytest.raises(ConfigurationError):
            TokenBucket(rate_per_s=1, burst=0)

    def test_retrograde_clock_mints_nothing(self, clock):
        """Regression: an NTP step (or rewound test clock) must not
        mint tokens, and must not move the refill watermark backwards
        -- doing so would double-count the rewound interval once the
        clock recovers, silently granting free tokens."""
        bucket = TokenBucket(rate_per_s=1.0, burst=2, clock=clock)
        bucket.try_acquire()
        bucket.try_acquire()
        assert not bucket.try_acquire()  # empty at t=1000

        clock.advance(-10.0)  # clock steps backwards
        assert not bucket.try_acquire()
        assert bucket.tokens == 0.0

        # Clock recovers to exactly where it was: still nothing --
        # the watermark never moved, so the rewound 10s don't count
        # as elapsed time.
        clock.advance(10.0)
        assert not bucket.try_acquire()
        assert bucket.tokens == 0.0

        # Genuine forward progress refills at the configured rate.
        clock.advance(1.0)
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_seconds_until_refill(self, clock):
        bucket = TokenBucket(rate_per_s=2.0, burst=2, clock=clock)
        assert bucket.seconds_until(1) == 0.0
        bucket.try_acquire()
        bucket.try_acquire()
        assert bucket.seconds_until(1) == pytest.approx(0.5)
        empty = TokenBucket(rate_per_s=0.0, burst=1, clock=clock)
        empty.try_acquire()
        assert empty.seconds_until(1) == float("inf")


class TestRateLimiter:
    def test_buckets_are_per_tenant(self, clock):
        limiter = RateLimiter(clock=clock)
        greedy = Tenant(name="g", api_key="kg", rate_per_s=0, burst=1)
        polite = Tenant(name="p", api_key="kp", rate_per_s=0, burst=2)
        assert limiter.allow(greedy)
        assert not limiter.allow(greedy)
        assert limiter.allow(polite)  # unaffected by g's bucket
        assert limiter.allow(polite)
        assert not limiter.allow(polite)

    def test_bucket_inspection(self, clock):
        limiter = RateLimiter(clock=clock)
        tenant = Tenant(name="t", api_key="k", rate_per_s=5, burst=7)
        assert limiter.bucket("t") is None
        limiter.allow(tenant)
        assert limiter.bucket("t").burst == 7

    def test_retry_after_tracks_the_refill_rate(self, clock):
        limiter = RateLimiter(clock=clock)
        tenant = Tenant(name="t", api_key="k", rate_per_s=2.0, burst=1)
        assert limiter.allow(tenant)
        assert not limiter.allow(tenant)
        # One token at 2/s: ~0.5s away (floored at 1ms, never 0).
        assert limiter.retry_after_s(tenant) == pytest.approx(0.5)
        # No bucket yet (never seen tenant): generic 1s hint.
        ghost = Tenant(name="ghost", api_key="kg", rate_per_s=1, burst=1)
        assert limiter.retry_after_s(ghost) == 1.0

    def test_retry_after_burst_only_is_finite(self, clock):
        limiter = RateLimiter(clock=clock)
        tenant = Tenant(name="b", api_key="kb", rate_per_s=0.0, burst=1)
        limiter.allow(tenant)
        assert not limiter.allow(tenant)
        # rate 0 never refills: the hint must be the fixed fallback,
        # never infinity (it becomes a Retry-After header).
        assert limiter.retry_after_s(tenant) == 60.0
        assert limiter.retry_after_s(tenant, burst_only_s=5.0) == 5.0


class _StubBreaker:
    def __init__(self, state="closed"):
        self.state = state


class _StubServer:
    def __init__(self, ready=True, breaker_state="closed", depth=0):
        self._ready = ready
        self.breaker = _StubBreaker(breaker_state)
        self._depth = depth

    def readiness(self):
        return self._ready

    def queue_depth(self):
        return self._depth


class TestAdmissionController:
    def test_admits_healthy_backend(self):
        assert AdmissionController(_StubServer()).check() is None

    def test_not_ready(self):
        controller = AdmissionController(_StubServer(ready=False))
        assert controller.check() == "not_ready"

    def test_breaker_open_sheds(self):
        controller = AdmissionController(
            _StubServer(breaker_state="open")
        )
        assert controller.check() == "breaker_open"

    def test_breaker_shedding_can_be_disabled(self):
        controller = AdmissionController(
            _StubServer(breaker_state="open"), shed_on_breaker_open=False
        )
        assert controller.check() is None

    def test_half_open_is_admitted(self):
        controller = AdmissionController(
            _StubServer(breaker_state="half-open")
        )
        assert controller.check() is None

    def test_queue_depth_bound(self):
        controller = AdmissionController(
            _StubServer(depth=5), queue_limit=5
        )
        assert controller.check() == "queue_full"
        controller = AdmissionController(
            _StubServer(depth=4), queue_limit=5
        )
        assert controller.check() is None

    def test_reason_precedence_ready_first(self):
        # A draining backend reads as not_ready even when its queue is
        # also over the bound -- the more actionable signal wins.
        controller = AdmissionController(
            _StubServer(ready=False, breaker_state="open", depth=10**6),
            queue_limit=1,
        )
        assert controller.check() == "not_ready"

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AdmissionController(_StubServer(), queue_limit=0)
        with pytest.raises(ConfigurationError):
            AdmissionController(_StubServer(), shed_queue_depth=0)


class TestShedBeforeQueue:
    def test_low_priority_sheds_at_the_soft_watermark(self):
        controller = AdmissionController(
            _StubServer(depth=4), queue_limit=10, shed_queue_depth=4,
            shed_priority=2,
        )
        assert controller.check(priority=2) == "overloaded"
        assert controller.check(priority=3) == "overloaded"
        # Higher-priority traffic still fills the remaining headroom.
        assert controller.check(priority=0) is None
        assert controller.check(priority=1) is None

    def test_below_the_watermark_everyone_is_admitted(self):
        controller = AdmissionController(
            _StubServer(depth=3), queue_limit=10, shed_queue_depth=4,
        )
        assert controller.check(priority=2) is None

    def test_queue_full_outranks_overloaded(self):
        # At the hard bound even priority-0 is shed, and the reason is
        # queue_full for every class (the queue truly is full).
        controller = AdmissionController(
            _StubServer(depth=10), queue_limit=10, shed_queue_depth=4,
        )
        assert controller.check(priority=0) == "queue_full"
        assert controller.check(priority=2) == "queue_full"

    def test_default_watermark_is_half_the_limit(self):
        controller = AdmissionController(_StubServer(), queue_limit=64)
        assert controller.shed_queue_depth == 32

    def test_retry_after_hints(self, clock):
        from repro.serve import CircuitBreaker

        breaker = CircuitBreaker(
            failure_threshold=1, reset_timeout_s=30.0, clock=clock
        )
        server = _RealBreakerServer(breaker)
        controller = AdmissionController(server)
        # Queue-pressure reasons: fixed 1s "come back soon".
        assert controller.retry_after_s("queue_full") == 1.0
        assert controller.retry_after_s("overloaded") == 1.0
        assert controller.retry_after_s("not_ready") == 1.0
        # breaker_open: the remaining cooldown on the injectable clock.
        breaker.record_failure()
        clock.advance(10.0)
        assert controller.retry_after_s("breaker_open") == \
            pytest.approx(20.0)
        # Cooldown elapsed: the hint floors at the 1ms minimum (the
        # gateway ceils it to a Retry-After of "1"), never negative.
        clock.advance(20.0)
        assert controller.retry_after_s("breaker_open") == 0.001


class _RealBreakerServer:
    """Stub backend wired to a *real* breaker on the injectable clock,
    so breaker-state transitions during the precedence tests are the
    production ones, not stub flips."""

    def __init__(self, breaker, ready=True, depth=0):
        self.breaker = breaker
        self.ready = ready
        self.depth = depth

    def readiness(self):
        return self.ready

    def queue_depth(self):
        return self.depth


class TestAdmissionPrecedenceUnderFlips:
    """The not_ready -> breaker_open race: readiness can flip between
    two admission checks (a drain or stop landing mid-request) while
    the breaker is independently opening or cooling down.  Each check
    must report the highest-precedence reason *at that instant* --
    not_ready > breaker_open > queue_full -- and the trajectory across
    the flip must follow the breaker's clock, never a stale blend."""

    def test_not_ready_wins_while_breaker_is_open(self, clock):
        from repro.serve import CircuitBreaker

        breaker = CircuitBreaker(
            failure_threshold=1, reset_timeout_s=5.0, clock=clock
        )
        server = _RealBreakerServer(breaker, ready=True)
        controller = AdmissionController(server)
        assert controller.check() is None

        breaker.record_failure()  # pool died: breaker opens
        assert controller.check() == "breaker_open"

        # A drain lands between this client's retries: readiness flips
        # mid-request and must override the (still open) breaker.
        server.ready = False
        assert controller.check() == "not_ready"

        # Drain is cancelled (restart): the open breaker surfaces again
        # -- the controller never cached the not_ready verdict.
        server.ready = True
        assert controller.check() == "breaker_open"

    def test_flip_back_lands_in_half_open_admission(self, clock):
        from repro.serve import CircuitBreaker

        breaker = CircuitBreaker(
            failure_threshold=1, reset_timeout_s=5.0, clock=clock
        )
        server = _RealBreakerServer(breaker, ready=True)
        controller = AdmissionController(server)
        breaker.record_failure()
        server.ready = False
        assert controller.check() == "not_ready"

        # While the backend was not ready the breaker cool-down ran
        # out: when readiness flips back the very next check must admit
        # (half-open probes are allowed through), not shed on a stale
        # "open" observation.
        clock.advance(5.0)
        server.ready = True
        assert breaker.state == "half-open"
        assert controller.check() is None

    def test_open_boundary_is_exact_on_the_injectable_clock(self, clock):
        from repro.serve import CircuitBreaker

        breaker = CircuitBreaker(
            failure_threshold=1, reset_timeout_s=5.0, clock=clock
        )
        server = _RealBreakerServer(breaker, ready=True)
        controller = AdmissionController(server)
        breaker.record_failure()
        clock.advance(4.999)
        assert controller.check() == "breaker_open"
        clock.advance(0.001)  # exactly reset_timeout_s
        assert controller.check() is None

    def test_queue_full_is_masked_by_both_higher_reasons(self, clock):
        from repro.serve import CircuitBreaker

        breaker = CircuitBreaker(
            failure_threshold=1, reset_timeout_s=5.0, clock=clock
        )
        server = _RealBreakerServer(breaker, ready=True, depth=100)
        controller = AdmissionController(server, queue_limit=10)
        assert controller.check() == "queue_full"
        breaker.record_failure()
        assert controller.check() == "breaker_open"
        server.ready = False
        assert controller.check() == "not_ready"
        # Unwind in reverse: each recovery reveals the next reason.
        server.ready = True
        assert controller.check() == "breaker_open"
        clock.advance(5.0)
        assert controller.check() == "queue_full"
        server.depth = 0
        assert controller.check() is None

    def test_readiness_flip_during_check_is_not_blended(self, clock):
        """A readiness probe that flips False *as it is consulted*
        (stop() landing inside the check) must yield not_ready -- the
        check reads each signal once, in precedence order, so the
        verdict matches the instant the readiness probe ran."""
        from repro.serve import CircuitBreaker

        breaker = CircuitBreaker(
            failure_threshold=1, reset_timeout_s=5.0, clock=clock
        )
        server = _RealBreakerServer(breaker, ready=True)
        controller = AdmissionController(server)

        calls = []
        original = server.readiness

        def flipping_readiness():
            verdict = original()
            calls.append(verdict)
            server.ready = False  # stop() lands right after the read
            return verdict

        server.readiness = flipping_readiness
        # First check read readiness=True before the flip: it must
        # fall through to the breaker (closed) and admit.
        assert controller.check() is None
        # Second check sees the flipped backend: not_ready.
        assert controller.check() == "not_ready"
        assert calls == [True, False]
