"""Unit tests for the resilient gateway client
(:mod:`repro.gateway.client`): retry policy math, seeded idempotency
keys, deadline propagation, retry budgets, and counter plumbing.

These run against tiny scripted socket servers (no live gateway); the
full-path behaviors ride the ``net-*`` chaos scenarios and the gateway
integration tests.
"""

import json
import socket
import threading

import pytest

from repro.errors import (
    ConfigurationError,
    DeadlineExceededError,
    RetryBudgetExceededError,
    TransportError,
)
from repro.gateway.client import (
    CLIENT_COUNTER_FIELDS,
    GLOBAL_CLIENT_COUNTERS,
    ClientResult,
    GatewayClient,
    RetryPolicy,
)

TRAIN = [[1, 0, 1], [0, 1, 0]]


class _ScriptedServer:
    """Accepts connections; each request body is captured, then the
    scripted behavior for that request index runs: ``"ok"`` answers
    200, ``"drop"`` closes without answering."""

    def __init__(self, script):
        self.script = list(script)
        self.bodies = []
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(8)
        self._listener.settimeout(0.2)
        self.port = self._listener.getsockname()[1]
        self._running = True
        self._seen = 0
        self._lock = threading.Lock()
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self):
        while self._running:
            try:
                conn, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            threading.Thread(target=self._handle, args=(conn,),
                             daemon=True).start()

    def _read_request(self, conn):
        buffer = b""
        while b"\r\n\r\n" not in buffer:
            chunk = conn.recv(65536)
            if not chunk:
                return None
            buffer += chunk
        head, _, rest = buffer.partition(b"\r\n\r\n")
        headers = {}
        for line in head.decode("latin-1").split("\r\n")[1:]:
            name, sep, value = line.partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        while len(rest) < length:
            chunk = conn.recv(65536)
            if not chunk:
                return None
            rest += chunk
        return rest[:length]

    def _handle(self, conn):
        try:
            while True:
                body = self._read_request(conn)
                if body is None:
                    return
                with self._lock:
                    index = self._seen
                    self._seen += 1
                    self.bodies.append(json.loads(body.decode("utf-8")))
                action = (self.script[index]
                          if index < len(self.script) else "ok")
                if action == "drop":
                    return
                payload = json.dumps({"seen": index}).encode("utf-8")
                conn.sendall(
                    b"HTTP/1.1 200 OK\r\nContent-Type: application/json"
                    b"\r\nContent-Length: " + str(len(payload)).encode()
                    + b"\r\n\r\n" + payload
                )
        except OSError:
            pass
        finally:
            try:
                conn.close()
            except OSError:
                pass

    def close(self):
        self._running = False
        self._listener.close()
        self._thread.join(timeout=5)


class TestRetryPolicy:
    def test_backoff_doubles_and_caps(self):
        policy = RetryPolicy(backoff_base_s=0.1, backoff_cap_s=0.5,
                             jitter=0.0)
        assert policy.backoff_s(1, 0.0) == pytest.approx(0.1)
        assert policy.backoff_s(2, 0.0) == pytest.approx(0.2)
        assert policy.backoff_s(3, 0.0) == pytest.approx(0.4)
        assert policy.backoff_s(4, 0.0) == pytest.approx(0.5)  # capped
        assert policy.backoff_s(10, 0.0) == pytest.approx(0.5)

    def test_jitter_scales_multiplicatively(self):
        policy = RetryPolicy(backoff_base_s=0.1, jitter=0.5)
        assert policy.backoff_s(1, 1.0) == pytest.approx(0.15)
        assert policy.backoff_s(1, 0.0) == pytest.approx(0.1)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_base_s=-1.0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(jitter=-0.1)
        with pytest.raises(ConfigurationError):
            RetryPolicy(budget=-1)


class TestIdempotencyKeys:
    def test_same_seed_same_stream(self):
        a = GatewayClient("127.0.0.1", 1, api_key="k", seed=7)
        b = GatewayClient("127.0.0.1", 1, api_key="k", seed=7)
        assert [a._next_idempotency_key() for _ in range(3)] == \
            [b._next_idempotency_key() for _ in range(3)]

    def test_different_seed_different_stream(self):
        a = GatewayClient("127.0.0.1", 1, api_key="k", seed=7)
        b = GatewayClient("127.0.0.1", 1, api_key="k", seed=8)
        assert a._next_idempotency_key() != b._next_idempotency_key()

    def test_keys_never_repeat_within_a_client(self):
        client = GatewayClient("127.0.0.1", 1, api_key="k")
        keys = {client._next_idempotency_key() for _ in range(100)}
        assert len(keys) == 100


class TestClientResult:
    def test_ok_is_status_200(self):
        assert ClientResult(status=200, payload={}).ok
        assert not ClientResult(status=503, payload={}).ok


class TestTransportFailures:
    def _dead_port(self):
        # Bind-then-close: nothing listens here afterwards.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        return port

    def test_transport_error_after_max_attempts(self):
        client = GatewayClient(
            "127.0.0.1", self._dead_port(), api_key="k",
            retry=RetryPolicy(max_attempts=3, backoff_base_s=0.0,
                              jitter=0.0),
        )
        with pytest.raises(TransportError) as excinfo:
            client.infer(TRAIN)
        assert excinfo.value.attempts == 3
        assert client.stats()["conn_errors"] == 3
        assert client.stats()["retries"] == 2

    def test_retry_budget_exhausts_across_requests(self):
        client = GatewayClient(
            "127.0.0.1", self._dead_port(), api_key="k",
            retry=RetryPolicy(max_attempts=10, backoff_base_s=0.0,
                              jitter=0.0, budget=3),
        )
        with pytest.raises(RetryBudgetExceededError):
            client.infer(TRAIN)
        stats = client.stats()
        assert stats["retries"] == 3
        assert stats["budget_exhausted"] == 1
        # The budget is a *lifetime* pool: the next request has no
        # permits left and fails after its first attempt.
        with pytest.raises(RetryBudgetExceededError):
            client.infer(TRAIN)
        assert client.stats()["retries"] == 3

    def test_deadline_exceeded_preempts_attempts(self):
        client = GatewayClient(
            "127.0.0.1", self._dead_port(), api_key="k",
            retry=RetryPolicy(max_attempts=1000, backoff_base_s=0.05,
                              jitter=0.0),
        )
        with pytest.raises(DeadlineExceededError):
            client.infer(TRAIN, deadline_ms=120.0)
        assert client.stats()["deadline_exceeded"] == 1
        assert client.stats()["attempts"] < 1000


class TestDeadlinePropagation:
    def test_remaining_deadline_shrinks_across_attempts(self):
        server = _ScriptedServer(["drop", "ok"])
        try:
            client = GatewayClient(
                "127.0.0.1", server.port, api_key="k",
                retry=RetryPolicy(max_attempts=3, backoff_base_s=0.02,
                                  jitter=0.0),
            )
            result = client.infer(TRAIN, deadline_ms=5000.0)
            assert result.ok and result.attempts == 2
            assert len(server.bodies) == 2
            first = server.bodies[0]["deadline_ms"]
            second = server.bodies[1]["deadline_ms"]
            assert 0 < second < first <= 5000.0
            # Both attempts carried the same idempotency payload.
            assert server.bodies[0]["spike_train"] == \
                server.bodies[1]["spike_train"] == TRAIN
            client.close()
        finally:
            server.close()

    def test_no_deadline_means_no_field(self):
        server = _ScriptedServer(["ok"])
        try:
            with GatewayClient("127.0.0.1", server.port,
                               api_key="k") as client:
                assert client.infer(TRAIN).ok
            assert "deadline_ms" not in server.bodies[0]
        finally:
            server.close()


class TestPoolAndCounters:
    def test_keep_alive_reuses_the_connection(self):
        server = _ScriptedServer([])
        try:
            with GatewayClient("127.0.0.1", server.port,
                               api_key="k") as client:
                for _ in range(4):
                    assert client.infer(TRAIN).ok
                stats = client.stats()
            assert stats["connections_opened"] == 1
            assert stats["connections_reused"] == 3
        finally:
            server.close()

    def test_counter_fields_are_complete_and_mirrored(self):
        server = _ScriptedServer([])
        try:
            before = GLOBAL_CLIENT_COUNTERS.snapshot()
            with GatewayClient("127.0.0.1", server.port,
                               api_key="k") as client:
                client.infer(TRAIN)
                stats = client.stats()
            assert set(stats) == set(CLIENT_COUNTER_FIELDS)
            after = GLOBAL_CLIENT_COUNTERS.snapshot()
            assert after["requests"] == before["requests"] + 1
            assert after["attempts"] == before["attempts"] + 1
        finally:
            server.close()

    def test_pool_size_zero_rejected_only_if_negative(self):
        with pytest.raises(ConfigurationError):
            GatewayClient("127.0.0.1", 1, api_key="k", pool_size=-1)
        GatewayClient("127.0.0.1", 1, api_key="k", pool_size=0)
