"""Tests for the closed-loop load harness.

The full quick campaign is exercised end-to-end by
``benchmarks/bench_gateway.py`` and CI; here we run the cheap
deterministic scenarios and pin the report contract the bench's
``_pinned_view`` depends on.
"""

import json

import pytest

from repro.gateway.loadgen import (
    LOADTEST_SCHEMA,
    SCENARIOS,
    format_report,
    main,
    run_loadtest,
)

# Deterministic and sleep-free: safe to run per-test.
FAST_SCENARIOS = ["tenant-skew", "breaker-open"]

REQUIRED_SCENARIO_FIELDS = {
    "name", "mode", "sent", "statuses", "expected_statuses", "passed",
    "rejections", "latency_ms_p50", "latency_ms_p99", "latency_ms_max",
    "throughput_rps", "elapsed_s",
}


@pytest.fixture(scope="module")
def report():
    return run_loadtest(quick=True, scenarios=FAST_SCENARIOS)


class TestCampaignReport:
    def test_report_schema_and_verdict(self, report):
        assert report["schema"] == LOADTEST_SCHEMA
        assert report["quick"] is True
        assert report["passed"] is True
        assert [e["name"] for e in report["scenarios"]] == FAST_SCENARIOS

    def test_scenario_entries_carry_the_bench_contract(self, report):
        for entry in report["scenarios"]:
            missing = REQUIRED_SCENARIO_FIELDS - set(entry)
            assert not missing, f"{entry['name']} missing {missing}"
            assert entry["statuses"] == entry["expected_statuses"]

    def test_tenant_skew_is_deterministic(self, report):
        entry = next(e for e in report["scenarios"]
                     if e["name"] == "tenant-skew")
        # burst=10 tenant sends 25: exactly 10 admitted, 15 shed.
        assert entry["statuses"] == {"200": 15, "429": 15}
        assert entry["rejections"] == {"rate_limited": 15}

    def test_breaker_open_sheds_everything(self, report):
        entry = next(e for e in report["scenarios"]
                     if e["name"] == "breaker-open")
        assert entry["statuses"] == {"503": 10}
        assert entry["rejections"] == {"breaker_open": 10}

    def test_totals_aggregate_scenarios(self, report):
        totals = report["totals"]
        assert totals["sent"] == sum(
            e["sent"] for e in report["scenarios"]
        )
        assert totals["statuses"]["429"] == 15
        assert totals["rejections"]["breaker_open"] == 10

    def test_workload_is_fingerprinted(self, report):
        workload = report["workload"]
        assert workload["sizes"] == [11, 8, 5]
        assert len(workload["fingerprint"]) >= 16

    def test_report_is_json_serializable(self, report):
        assert json.loads(json.dumps(report)) == report


class TestScenarioRegistry:
    def test_registry_covers_the_required_mix(self):
        # Open-loop (poisson), burst (flash-crowd), and tenant-skew
        # arrivals are the ISSUE-mandated mixes; removing one breaks
        # the committed BENCH_gateway baseline.
        assert set(SCENARIOS) >= {
            "steady-closed", "poisson-open", "flash-crowd",
            "tenant-skew", "deadline-storm", "breaker-open",
        }

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError, match="unknown scenarios"):
            run_loadtest(quick=True, scenarios=["nope"])


class TestCli:
    def test_format_report_mentions_each_scenario(self, report):
        text = format_report(report)
        assert "PASS" in text
        for name in FAST_SCENARIOS:
            assert name in text

    def test_main_writes_report_and_returns_zero(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        code = main(["--quick", "--scenario", "tenant-skew",
                     "--out", str(out)])
        assert code == 0
        captured = capsys.readouterr().out
        assert "PASS" in captured
        written = json.loads(out.read_text())
        assert written["schema"] == LOADTEST_SCHEMA
        assert written["passed"] is True


class TestProxyMode:
    def test_degraded_network_keeps_the_status_contract(self):
        """--proxy interposes the chaos proxy's benign profile
        (fragmentation + small latency spikes): the pinned status
        expectations must still hold -- resilience means degraded
        latency, never changed answers."""
        report = run_loadtest(quick=True, scenarios=["tenant-skew"],
                              proxy=True)
        assert report["passed"] is True
        assert report["proxy"] is True
        entry = report["scenarios"][0]
        assert entry["statuses"] == entry["expected_statuses"]
        assert "degraded network" in format_report(report)

    def test_proxy_off_is_recorded(self, report):
        assert report["proxy"] is False
        assert "degraded network" not in format_report(report)
