"""Unit tests for the deterministic TCP chaos proxy
(:mod:`repro.netchaos.proxy`) against a plain echo upstream.

The end-to-end behaviors (retries, replays, hedging through real
gateway traffic) live in the ``net-*`` chaos scenarios; these tests pin
the proxy primitives: fault validation, the exact fire-budget ledger,
and each fault kind's observable wire effect.
"""

import socket
import threading
import time

import pytest

from repro.errors import ConfigurationError
from repro.netchaos import FAULT_KINDS, ChaosProxy, FireLedger, NetFault


class _EchoUpstream:
    """Threaded echo server: each connection echoes bytes until EOF."""

    def __init__(self):
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(16)
        self._listener.settimeout(0.2)
        self.port = self._listener.getsockname()[1]
        self._running = True
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self):
        while self._running:
            try:
                conn, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            threading.Thread(target=self._echo, args=(conn,),
                             daemon=True).start()

    def _echo(self, conn):
        try:
            while True:
                data = conn.recv(65536)
                if not data:
                    break
                conn.sendall(data)
        except OSError:
            pass
        finally:
            try:
                conn.close()
            except OSError:
                pass

    @property
    def address(self):
        return ("127.0.0.1", self.port)

    def close(self):
        self._running = False
        self._listener.close()
        self._thread.join(timeout=5)


@pytest.fixture()
def upstream():
    server = _EchoUpstream()
    yield server
    server.close()


def _roundtrip(port, payload, timeout_s=5.0):
    with socket.create_connection(("127.0.0.1", port),
                                  timeout=timeout_s) as sock:
        sock.sendall(payload)
        got = b""
        while len(got) < len(payload):
            chunk = sock.recv(65536)
            if not chunk:
                break
            got += chunk
        return got


class TestNetFaultValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            NetFault("gamma-ray")

    def test_bad_direction_rejected(self):
        with pytest.raises(ConfigurationError):
            NetFault("latency", direction="sideways")

    def test_negative_budget_rejected(self):
        with pytest.raises(ConfigurationError):
            NetFault("latency", budget=-1)

    def test_none_budget_is_unlimited(self):
        assert NetFault("split", budget=None).budget is None

    def test_chunk_bytes_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            NetFault("split", chunk_bytes=0)

    def test_every_kind_constructs(self):
        for kind in FAULT_KINDS:
            assert NetFault(kind).kind == kind

    def test_applies_respects_direction(self):
        assert NetFault("latency", direction="down").applies("down")
        assert not NetFault("latency", direction="down").applies("up")
        assert NetFault("latency", direction="both").applies("up")
        assert NetFault("latency", direction="both").applies("down")


class TestFireLedger:
    def test_budget_is_exact(self):
        ledger = FireLedger()
        grants = [ledger.claim((0, "reset"), 3) for _ in range(10)]
        assert grants.count(True) == 3
        assert ledger.fired("reset") == 3
        assert ledger.fired() == 3

    def test_none_budget_never_exhausts(self):
        ledger = FireLedger()
        assert all(ledger.claim((0, "split"), None) for _ in range(50))
        assert ledger.fired("split") == 50

    def test_zero_budget_never_grants(self):
        ledger = FireLedger()
        assert not ledger.claim((0, "latency"), 0)
        assert ledger.fired() == 0

    def test_snapshot_keys_by_fault_index_and_kind(self):
        ledger = FireLedger()
        ledger.claim((0, "reset"), 1)
        ledger.claim((1, "latency"), 1)
        assert ledger.snapshot() == {"0:reset": 1, "1:latency": 1}


class TestPassthrough:
    def test_bytes_cross_unmodified(self, upstream):
        with ChaosProxy(upstream.address) as proxy:
            payload = bytes(range(256)) * 64
            assert _roundtrip(proxy.port, payload) == payload
            stats = proxy.stats()
            assert stats["connections"] == 1
            assert stats["fired"] == {}

    def test_split_reassembles_identically(self, upstream):
        faults = (NetFault("split", budget=None, direction="both",
                           chunk_bytes=7),)
        with ChaosProxy(upstream.address, faults, seed=5) as proxy:
            payload = b"fragmentation should be invisible to TCP" * 50
            assert _roundtrip(proxy.port, payload) == payload
            assert proxy.fired("split") == 1

    def test_slow_send_preserves_bytes(self, upstream):
        faults = (NetFault("slow-send", budget=1, direction="up",
                           chunk_bytes=32, pause_ms=1.0),)
        with ChaosProxy(upstream.address, faults) as proxy:
            payload = b"x" * 400
            assert _roundtrip(proxy.port, payload) == payload
            assert proxy.fired("slow-send") == 1


class TestFaultEffects:
    def test_latency_delays_delivery(self, upstream):
        faults = (NetFault("latency", budget=1, direction="down",
                           delay_ms=150.0),)
        with ChaosProxy(upstream.address, faults) as proxy:
            start = time.monotonic()
            assert _roundtrip(proxy.port, b"ping") == b"ping"
            assert time.monotonic() - start >= 0.14
            # Budget spent: the next connection is clean and fast.
            start = time.monotonic()
            assert _roundtrip(proxy.port, b"ping") == b"ping"
            assert time.monotonic() - start < 0.14
            assert proxy.fired("latency") == 1

    def test_throttle_paces_bytes(self, upstream):
        faults = (NetFault("throttle", budget=1, direction="down",
                           rate_bps=4096.0),)
        with ChaosProxy(upstream.address, faults) as proxy:
            payload = b"y" * 2048  # ~0.5s at 4096 B/s
            start = time.monotonic()
            assert _roundtrip(proxy.port, payload) == payload
            assert time.monotonic() - start >= 0.3

    def test_reset_aborts_with_econnreset(self, upstream):
        faults = (NetFault("reset", budget=1, direction="down",
                           after_bytes=8),)
        with ChaosProxy(upstream.address, faults) as proxy:
            with socket.create_connection(("127.0.0.1", proxy.port),
                                          timeout=5.0) as sock:
                sock.sendall(b"0123456789abcdef")
                got = b""
                with pytest.raises(ConnectionError):
                    while True:
                        chunk = sock.recv(65536)
                        if not chunk:
                            raise ConnectionError("clean EOF")
                        got += chunk
                assert len(got) <= 8
            assert proxy.fired("reset") == 1

    def test_blackhole_answers_nothing(self, upstream):
        faults = (NetFault("blackhole", budget=1, hold_s=10.0),)
        with ChaosProxy(upstream.address, faults) as proxy:
            with socket.create_connection(("127.0.0.1", proxy.port),
                                          timeout=0.2) as sock:
                sock.sendall(b"hello?")
                with pytest.raises(socket.timeout):
                    sock.recv(1)
            assert proxy.fired("blackhole") == 1
            # Second connection is past the budget: echo works.
            assert _roundtrip(proxy.port, b"back") == b"back"

    def test_budget_arms_earliest_connections(self, upstream):
        faults = (NetFault("latency", budget=2, direction="down",
                           delay_ms=120.0),)
        with ChaosProxy(upstream.address, faults) as proxy:
            elapsed = []
            for _ in range(4):
                start = time.monotonic()
                _roundtrip(proxy.port, b"t")
                elapsed.append(time.monotonic() - start)
            assert elapsed[0] >= 0.11 and elapsed[1] >= 0.11
            assert elapsed[2] < 0.11 and elapsed[3] < 0.11
            assert proxy.fired("latency") == 2


class TestLifecycle:
    def test_close_unblocks_blackholed_connections_promptly(self, upstream):
        faults = (NetFault("blackhole", budget=1, hold_s=60.0),)
        proxy = ChaosProxy(upstream.address, faults).start()
        sock = socket.create_connection(("127.0.0.1", proxy.port),
                                        timeout=5.0)
        sock.sendall(b"into the void")
        time.sleep(0.05)
        start = time.monotonic()
        proxy.close()
        assert time.monotonic() - start < 5.0
        sock.close()

    def test_close_is_idempotent(self, upstream):
        proxy = ChaosProxy(upstream.address).start()
        proxy.close()
        proxy.close()

    def test_stats_shape(self, upstream):
        with ChaosProxy(upstream.address) as proxy:
            _roundtrip(proxy.port, b"abc")
            stats = proxy.stats()
            assert set(stats) == {"connections", "bytes_up",
                                  "bytes_down", "fired"}
            # The pump threads bump byte counters after forwarding, so
            # they can lag the client's last recv by a beat.
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                stats = proxy.stats()
                if stats["bytes_up"] >= 3 and stats["bytes_down"] >= 3:
                    break
                time.sleep(0.005)
            assert stats["bytes_up"] >= 3
            assert stats["bytes_down"] >= 3
