"""Tests for reload-minimising pass reordering (section 4.2.2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.neuro.state_controller import Polarity
from repro.snn.binarize import BinarizedLayer, BinarizedNetwork
from repro.ssnn import (
    SushiRuntime,
    optimize_plan,
    plan_network,
    reload_reduction,
    verify_plan,
)
from repro.ssnn.bitslice import BitSlicePlan


def random_network(seed, sizes=(24, 16, 6), zero_frac=0.3):
    rng = np.random.default_rng(seed)
    layers = []
    for a, b in zip(sizes, sizes[1:]):
        weights = rng.choice([-1, 1], size=(a, b))
        weights[rng.random((a, b)) < zero_frac] = 0
        layers.append(BinarizedLayer(weights, rng.integers(1, 4, size=b)))
    return BinarizedNetwork(layers)


class TestOptimizePlan:
    def test_never_increases_reloads(self):
        for seed in range(5):
            plan = plan_network(random_network(seed), 4)
            stats = reload_reduction(plan)
            assert stats["after"] <= stats["before"]

    def test_reduces_reloads_on_typical_networks(self):
        plan = plan_network(random_network(11), 4)
        stats = reload_reduction(plan)
        assert stats["reduction"] > 0.0

    def test_optimised_plan_verifies(self):
        plan = plan_network(random_network(1), 5)
        optimized = optimize_plan(plan)
        verify_plan(optimized).raise_if_failed()

    def test_pass_multiset_preserved(self):
        plan = plan_network(random_network(2), 4)
        optimized = optimize_plan(plan)
        assert len(optimized.tasks) == len(plan.tasks)

        def signature(tasks):
            return sorted(
                (t.layer_index, t.out_slice, t.in_slice, t.polarity.value,
                 t.strengths.tobytes())
                for t in tasks
            )

        assert signature(optimized.tasks) == signature(plan.tasks)

    def test_polarity_phases_not_mixed(self):
        plan = plan_network(random_network(3), 4)
        optimized = optimize_plan(plan)
        by_slice = {}
        for task in optimized.tasks:
            by_slice.setdefault((task.layer_index, task.out_slice),
                                []).append(task.polarity)
        for polarities in by_slice.values():
            first_exc = polarities.index(Polarity.SET1)
            assert all(p is Polarity.SET1 for p in polarities[first_exc:])

    def test_preload_markers_rebuilt(self):
        plan = plan_network(random_network(4), 4)
        optimized = optimize_plan(plan)
        seen = set()
        for task in optimized.tasks:
            key = (task.layer_index, task.out_slice)
            if key not in seen:
                assert task.first_pass_of_out_slice
                seen.add(key)
            else:
                assert not task.first_pass_of_out_slice

    def test_inference_identical_after_optimisation(self):
        """The optimised plan computes the same network, end to end, on
        the behavioural chip."""
        net = random_network(7, sizes=(10, 8, 4))
        trains = (np.random.default_rng(0).random((3, 4, 10)) < 0.5
                  ).astype(float)
        reference = SushiRuntime(chip_n=4, sc_per_npe=8,
                                 engine="behavioral").infer(net, trains)
        # Monkeypatch: run the behavioural engine with the optimised plan
        # by verifying the plan reconstructs identical weights, then use
        # the fast engine (plan-independent semantics) as the oracle.
        plan = optimize_plan(plan_network(net, 4, 8))
        from repro.ssnn.verification import reconstruct_weights

        for i, layer in enumerate(net.layers):
            np.testing.assert_array_equal(
                reconstruct_weights(plan, i), layer.signed_weights
            )
        np.testing.assert_array_equal(reference.predictions,
                                      net.predict(trains))

    def test_empty_plan_rejected(self):
        plan = BitSlicePlan(chip_n=2, tasks=[], layer_shapes=[],
                            max_strength=1)
        with pytest.raises(ConfigurationError):
            optimize_plan(plan)

    @given(seed=st.integers(min_value=0, max_value=200),
           chip_n=st.integers(min_value=2, max_value=6))
    @settings(max_examples=15, deadline=None)
    def test_property_semantics_preserved(self, seed, chip_n):
        net = random_network(seed, sizes=(12, 8, 4))
        optimized = optimize_plan(plan_network(net, chip_n))
        report = verify_plan(optimized)
        assert report.ok, report.errors
