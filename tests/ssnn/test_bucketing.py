"""Tests for synapse reordering/bucketing and hardware-order semantics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CapacityError, ConfigurationError
from repro.neuro.state_controller import Polarity
from repro.snn.binarize import BinarizedLayer
from repro.ssnn.bucketing import (
    build_schedule,
    check_capacity,
    hardware_layer_outputs,
    premature_fire_count,
    required_capacity,
)


def layer_from(weights, thresholds):
    return BinarizedLayer(np.asarray(weights), np.asarray(thresholds))


class TestSchedule:
    def test_reordered_schedule_inhibitory_first(self):
        layer = layer_from([[1, -1], [-1, 1]], [1, 1])
        schedule = build_schedule(layer, reorder=True)
        polarities = [b.polarity for b in schedule.buckets]
        assert polarities == [Polarity.SET0, Polarity.SET1]
        assert schedule.polarity_switches() == 1

    def test_bucket_size_splits_groups(self):
        layer = layer_from(np.ones((6, 2), dtype=int), [1, 1])
        schedule = build_schedule(layer, reorder=True, bucket_size=2)
        assert len(schedule.buckets) == 6  # 3 inhibitory + 3 excitatory
        assert all(len(b.axons) <= 2 for b in schedule.buckets)

    def test_naive_schedule_interleaves_polarities(self):
        layer = layer_from([[1, -1], [-1, 1]], [1, 1])
        schedule = build_schedule(layer, reorder=False)
        assert schedule.polarity_switches() == len(schedule.buckets) - 1

    def test_negative_bucket_size_rejected(self):
        layer = layer_from([[1]], [1])
        with pytest.raises(ConfigurationError):
            build_schedule(layer, bucket_size=-1)


class TestCapacity:
    def test_required_capacity_counts_inhibition(self):
        layer = layer_from([[-1, 1], [-1, 1], [-1, -1]], [2, 3])
        # Worst neuron: threshold 3 + inhibition 3 (neuron 0 has 3 neg).
        assert required_capacity(layer) == 3 + 3

    def test_check_capacity_pass_and_fail(self):
        layer = layer_from(np.full((10, 1), -1, dtype=int), [4])
        check_capacity(layer, n_sc=4)  # needs 14 <= 16
        with pytest.raises(CapacityError):
            check_capacity(layer, n_sc=3)  # needs 14 > 8


class TestHardwareSemantics:
    def test_reordered_matches_final_sum(self):
        layer = layer_from([[1, -1], [1, 1], [-1, 1]], [2, 1])
        spikes = np.array([[1, 1, 1], [1, 0, 1], [0, 0, 0]])
        decisions, _ = hardware_layer_outputs(layer, spikes, 64, reorder=True)
        np.testing.assert_array_equal(decisions, layer.forward(spikes))

    def test_naive_order_premature_fire(self):
        """Excitation before inhibition transiently crosses the threshold:
        the hardware emits a spike the final sum would not."""
        # Axon order: +1, +1 (crosses T=2), then -2 pulls it back down.
        layer = layer_from([[1], [1], [-1], [-1]], [2])
        spikes = np.array([[1, 1, 1, 1]])
        naive, pulses = hardware_layer_outputs(layer, spikes, 64,
                                               reorder=False)
        assert naive[0, 0] == 1.0  # premature fire
        assert layer.forward(spikes)[0, 0] == 0.0  # truth: no fire
        reordered, _ = hardware_layer_outputs(layer, spikes, 64,
                                              reorder=True)
        assert reordered[0, 0] == 0.0

    def test_underflow_emits_spurious_output(self):
        """Inhibition past the counter floor emits a borrow pulse that the
        read-out cannot distinguish from a fire."""
        layer = layer_from(np.full((6, 1), -1, dtype=int), [2])
        spikes = np.ones((1, 6))
        # Capacity 4: preload 2, inhibition 6 -> wraps below zero.
        decisions, pulses = hardware_layer_outputs(layer, spikes, 4,
                                                   reorder=True)
        assert decisions[0, 0] == 1.0
        assert pulses[0, 0] >= 1
        # With adequate capacity the same stream is silent.
        ok, _ = hardware_layer_outputs(layer, spikes, 16, reorder=True)
        assert ok[0, 0] == 0.0

    def test_premature_fire_count_nonnegative_and_zero_when_no_mixed_signs(self):
        excitatory = layer_from(np.ones((4, 3), dtype=int), [2, 3, 4])
        spikes = (np.random.default_rng(0).random((8, 4)) < 0.5).astype(float)
        assert premature_fire_count(excitatory, spikes, 64) == 0

    def test_input_shape_validation(self):
        layer = layer_from([[1]], [1])
        with pytest.raises(ConfigurationError):
            hardware_layer_outputs(layer, np.ones((2, 3)), 64)
        with pytest.raises(ConfigurationError):
            hardware_layer_outputs(layer, np.ones((2, 1)), 1)

    @given(
        data=st.data(),
        n_in=st.integers(min_value=1, max_value=8),
        n_out=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=40, deadline=None)
    def test_reordered_equals_reference_given_capacity(self, data, n_in, n_out):
        """Property: with reordering and sufficient SC capacity, hardware
        streaming is exactly the final-sum IF decision (the correctness
        claim of section 5.1)."""
        weights = np.array([
            [data.draw(st.integers(min_value=-2, max_value=2))
             for _ in range(n_out)]
            for _ in range(n_in)
        ])
        thresholds = np.array([
            data.draw(st.integers(min_value=1, max_value=5))
            for _ in range(n_out)
        ])
        layer = BinarizedLayer(weights, thresholds)
        spikes = np.array([
            [data.draw(st.booleans()) for _ in range(n_in)]
            for _ in range(3)
        ], dtype=float)
        capacity = 1 << 10  # plenty
        decisions, _ = hardware_layer_outputs(layer, spikes, capacity,
                                              reorder=True)
        np.testing.assert_array_equal(decisions, layer.forward(spikes))
