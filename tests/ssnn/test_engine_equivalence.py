"""Property-based equivalence tests between the execution engines.

The batched fast engine, the per-sample reference loop and the behavioural
chip model must produce *bit-identical* spike rasters, predictions and
statistics on any valid workload -- batching and chip reuse are pure
performance transforms.  Random binarized networks and spike trains are
drawn per example (Hypothesis supplies the seeds) and every result field
is compared exactly.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.harness import random_binarized_network, random_spike_trains
from repro.ssnn import SushiRuntime

SC_PER_NPE = 8


def workload(seed, sizes=(9, 7, 4), steps=4, batch=6, max_magnitude=2):
    rng = np.random.default_rng(seed)
    network = random_binarized_network(
        rng, sizes=sizes, max_magnitude=max_magnitude, sc_per_npe=SC_PER_NPE
    )
    spikes = random_spike_trains(rng, steps, batch, network.in_features)
    return network, spikes


def assert_results_identical(a, b, check_stats=True):
    assert np.array_equal(a.output_raster, b.output_raster)
    assert np.array_equal(a.predictions, b.predictions)
    assert np.array_equal(a.rates, b.rates)
    if check_stats:
        assert a.spurious_decisions == b.spurious_decisions
        assert a.synaptic_ops == b.synaptic_ops
        assert a.reload_events == b.reload_events


class TestFastVsPerSample:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1))
    def test_batched_equals_per_sample_reordered(self, seed):
        network, spikes = workload(seed)
        runtime = SushiRuntime(chip_n=4, sc_per_npe=SC_PER_NPE)
        assert_results_identical(
            runtime.infer(network, spikes),
            runtime.infer_per_sample(network, spikes),
        )

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1))
    def test_batched_equals_per_sample_naive_order(self, seed):
        """The ablation path (interleaved polarities) must batch exactly
        too, including its spurious-decision count."""
        network, spikes = workload(seed)
        runtime = SushiRuntime(chip_n=4, sc_per_npe=SC_PER_NPE, reorder=False)
        assert_results_identical(
            runtime.infer(network, spikes),
            runtime.infer_per_sample(network, spikes),
        )

    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(0, 2**32 - 1),
        steps=st.integers(1, 5),
        batch=st.integers(1, 8),
    )
    def test_equivalence_over_shapes(self, seed, steps, batch):
        network, spikes = workload(seed, steps=steps, batch=batch)
        runtime = SushiRuntime(chip_n=4, sc_per_npe=SC_PER_NPE)
        assert_results_identical(
            runtime.infer(network, spikes),
            runtime.infer_per_sample(network, spikes),
        )


class TestFastVsBehavioral:
    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1))
    def test_rasters_and_predictions_agree(self, seed):
        network, spikes = workload(seed, sizes=(6, 5, 3), steps=3, batch=4)
        fast = SushiRuntime(chip_n=4, sc_per_npe=SC_PER_NPE)
        behavioral = SushiRuntime(
            chip_n=4, sc_per_npe=SC_PER_NPE, engine="behavioral"
        )
        a = fast.infer(network, spikes)
        b = behavioral.infer(network, spikes)
        # Stats differ by construction (the chip counts protocol events,
        # the fast engine counts mathematical ones) but the computation --
        # raster, rates, predictions -- must match bit for bit.
        assert_results_identical(a, b, check_stats=False)
        assert a.spurious_decisions == b.spurious_decisions == 0

    def test_behavioral_chip_reuse_matches_per_sample(self):
        """One power-on-reset chip across the batch equals a fresh chip
        per sample, including protocol statistics."""
        network, spikes = workload(3, sizes=(6, 5, 3), steps=3, batch=4)
        runtime = SushiRuntime(
            chip_n=4, sc_per_npe=SC_PER_NPE, engine="behavioral"
        )
        assert_results_identical(
            runtime.infer(network, spikes),
            runtime.infer_per_sample(network, spikes),
        )


class TestProcessPool:
    def test_max_workers_does_not_change_results(self):
        network, spikes = workload(11, steps=5, batch=16)
        serial = SushiRuntime(chip_n=4, sc_per_npe=SC_PER_NPE)
        pooled = SushiRuntime(chip_n=4, sc_per_npe=SC_PER_NPE, max_workers=2)
        assert_results_identical(
            serial.infer(network, spikes),
            pooled.infer(network, spikes),
        )

    def test_small_batches_stay_serial(self):
        """Fewer rows than 2x workers must not attempt a pool (and must
        still be exact)."""
        network, spikes = workload(12, steps=1, batch=2)
        serial = SushiRuntime(chip_n=4, sc_per_npe=SC_PER_NPE)
        pooled = SushiRuntime(chip_n=4, sc_per_npe=SC_PER_NPE, max_workers=8)
        assert_results_identical(
            serial.infer(network, spikes),
            pooled.infer(network, spikes),
        )


class TestConfigurationErrors:
    def test_behavioral_rejects_naive_order(self):
        network, spikes = workload(0, sizes=(6, 5, 3))
        runtime = SushiRuntime(
            chip_n=4, sc_per_npe=SC_PER_NPE, engine="behavioral",
            reorder=False,
        )
        with pytest.raises(ConfigurationError):
            runtime.infer(network, spikes)

    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigurationError):
            SushiRuntime(engine="quantum")

    def test_negative_workers_rejected(self):
        with pytest.raises(ConfigurationError):
            SushiRuntime(max_workers=-1)

    def test_bad_spike_shapes_rejected(self):
        network, spikes = workload(0)
        runtime = SushiRuntime(chip_n=4, sc_per_npe=SC_PER_NPE)
        with pytest.raises(ConfigurationError):
            runtime.infer(network, spikes[0])  # 2-D
        with pytest.raises(ConfigurationError):
            runtime.infer(network, spikes[:, :, :-1])  # wrong width


class TestPlanMemoisation:
    def test_plan_cached_per_network_object(self):
        network, spikes = workload(5)
        runtime = SushiRuntime(chip_n=4, sc_per_npe=SC_PER_NPE)
        runtime.infer(network, spikes)
        plan_a = runtime._plan_for(network)
        runtime.infer(network, spikes)
        assert runtime._plan_for(network) is plan_a

    def test_distinct_networks_get_distinct_plans(self):
        net_a, _ = workload(6)
        net_b, _ = workload(7)
        runtime = SushiRuntime(chip_n=4, sc_per_npe=SC_PER_NPE)
        assert runtime._plan_for(net_a) is not runtime._plan_for(net_b)
