"""Property test: compiled plans survive the on-disk cache bit-for-bit.

For any random workload, chip reorder flag and execution engine -- with a
:class:`~repro.rsfq.faults.FaultModel` attached so the self-healing loop
runs over the compiled kernel too -- inference through a
:class:`~repro.ssnn.compile.PlanCache` entry that was *loaded from disk*
must equal inference through the freshly-compiled in-memory artifact and
the legacy pre-compile kernel: identical decisions (rasters,
predictions), spurious-decision counts and synaptic-operation totals.
This is the satellite acceptance property of the compile-once pipeline
(see docs/SERVING.md).
"""

import tempfile

import numpy as np
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.harness import random_binarized_network, random_spike_trains
from repro.rsfq.faults import FaultModel
from repro.ssnn import PlanCache, SushiRuntime

CHIP_N = 4
SC = 8


def workload(seed, steps=3, batch=4):
    rng = np.random.default_rng(seed)
    network = random_binarized_network(
        rng, sizes=(9, 7, 4), sc_per_npe=SC
    )
    trains = random_spike_trains(rng, steps, batch, 9)
    return network, trains


def assert_identical(a, b):
    assert np.array_equal(a.output_raster, b.output_raster)
    assert np.array_equal(a.predictions, b.predictions)
    assert a.spurious_decisions == b.spurious_decisions
    assert a.synaptic_ops == b.synaptic_ops
    assert a.reload_events == b.reload_events


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    reorder=st.booleans(),
    engine=st.sampled_from(["fast", "per-sample", "behavioral"]),
    faulted=st.booleans(),
)
def test_cache_round_trip_is_bit_identical(seed, reorder, engine, faulted):
    # The behavioural chip model implements the paper's reordered
    # protocol only.
    assume(not (engine == "behavioral" and not reorder))
    network, trains = workload(seed)
    faults = (
        FaultModel.single("pulse_drop", 0.04, seed=seed + 1)
        if faulted else None
    )

    def run(runtime):
        if engine == "per-sample":
            return runtime.infer_per_sample(network, trains)
        return runtime.infer(network, trains)

    engine_kw = "fast" if engine == "per-sample" else engine
    with tempfile.TemporaryDirectory() as root:
        # Cold: compile + persist.  Warm: a *fresh* cache object over the
        # same root, so the artifact genuinely comes off disk.
        cold_cache = PlanCache(root=root)
        cold = run(SushiRuntime(
            chip_n=CHIP_N, sc_per_npe=SC, engine=engine_kw,
            reorder=reorder, plan_cache=cold_cache, faults=faults,
        ))
        warm_cache = PlanCache(root=root)
        warm = run(SushiRuntime(
            chip_n=CHIP_N, sc_per_npe=SC, engine=engine_kw,
            reorder=reorder, plan_cache=warm_cache, faults=faults,
        ))
        if engine_kw == "fast":
            assert cold_cache.misses >= 1
            assert warm_cache.hits >= 1 and warm_cache.misses == 0
    legacy = run(SushiRuntime(
        chip_n=CHIP_N, sc_per_npe=SC, engine=engine_kw, reorder=reorder,
        use_compiled=False, plan_cache=None, faults=faults,
    ))
    assert_identical(warm, cold)
    assert_identical(warm, legacy)
