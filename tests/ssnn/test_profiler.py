"""Tests for the per-layer inference profiler."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.snn.binarize import BinarizedLayer, BinarizedNetwork
from repro.ssnn.profiler import profile_network, profile_report


def network_and_trains(seed=0, sizes=(20, 12, 4), steps=4):
    rng = np.random.default_rng(seed)
    layers = []
    for a, b in zip(sizes, sizes[1:]):
        weights = rng.choice([-1, 0, 1], size=(a, b))
        layers.append(BinarizedLayer(weights, rng.integers(1, 3, size=b)))
    net = BinarizedNetwork(layers)
    trains = (rng.random((steps, sizes[0])) < 0.5).astype(float)
    return net, trains


class TestProfiler:
    def test_one_profile_per_layer(self):
        net, trains = network_and_trains()
        profiles = profile_network(net, trains, chip_n=8)
        assert len(profiles) == 2
        assert profiles[0].shape == (20, 12)
        assert profiles[1].shape == (12, 4)

    def test_time_shares_sum_to_one(self):
        net, trains = network_and_trains()
        profiles = profile_network(net, trains, chip_n=8)
        assert sum(p.time_share for p in profiles) == pytest.approx(1.0)

    def test_bigger_layer_dominates(self):
        net, trains = network_and_trains(sizes=(64, 32, 4))
        profiles = profile_network(net, trains, chip_n=8)
        assert profiles[0].time_share > profiles[1].time_share
        assert profiles[0].synaptic_ops > profiles[1].synaptic_ops

    def test_activity_rates_in_unit_interval(self):
        net, trains = network_and_trains()
        for p in profile_network(net, trains, chip_n=4):
            assert 0.0 <= p.input_spike_rate <= 1.0
            assert 0.0 <= p.output_spike_rate <= 1.0

    def test_layer_synops_sum_matches_runtime(self):
        from repro.ssnn import SushiRuntime

        net, trains = network_and_trains()
        profiles = profile_network(net, trains, chip_n=8)
        runtime = SushiRuntime(chip_n=8).infer(net, trains[:, None, :])
        assert sum(p.synaptic_ops for p in profiles) == runtime.synaptic_ops

    def test_energy_positive_and_scaled_by_time(self):
        net, trains = network_and_trains()
        profiles = profile_network(net, trains, chip_n=8)
        for p in profiles:
            assert p.energy_nj > 0
        ratio_time = profiles[0].time_ps / profiles[1].time_ps
        ratio_energy = profiles[0].energy_nj / profiles[1].energy_nj
        assert ratio_energy == pytest.approx(ratio_time, rel=1e-6)

    def test_report_renders(self):
        net, trains = network_and_trains()
        report = profile_report(profile_network(net, trains, chip_n=4))
        assert "Per-layer inference profile" in report
        assert "time_share_pct" in report

    def test_shape_validation(self):
        net, trains = network_and_trains()
        with pytest.raises(ConfigurationError):
            profile_network(net, trains[:, None, :], chip_n=4)
