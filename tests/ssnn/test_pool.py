"""Tests for the supervised shared-memory pool (:mod:`repro.ssnn.pool`).

The pool is a pure performance transform: every test here pins
``InferencePool.infer_rows`` bit-for-bit against the serial
``CompiledNetwork.forward_rows``, across shard counts, row-block sizes
and buffer growth -- including under supervision events (worker death,
freezes, poison quarantine), which must never change an answer, only
the wall-clock and the ``restarts`` counter.
"""

import threading

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.harness import random_binarized_network, random_spike_trains
from repro.harness.chaos import FreezeHook, KillHook
from repro.ssnn import (
    InferencePool,
    InferencePoolError,
    PoisonBatchError,
    SushiRuntime,
    compile_network,
)

CHIP_N = 4
SC = 8


@pytest.fixture(scope="module")
def compiled():
    rng = np.random.default_rng(21)
    network = random_binarized_network(rng, sizes=(12, 9, 5), sc_per_npe=SC)
    return compile_network(network, CHIP_N, SC)


def rows_for(compiled, n, seed=0):
    rng = np.random.default_rng(seed)
    return (rng.random((n, compiled.in_features)) < 0.4).astype(np.float64)


class TestShards:
    def test_shards_cover_and_balance(self):
        for n_rows in (0, 1, 2, 7, 16):
            for parts in (1, 2, 5):
                shards = InferencePool._shards(n_rows, parts)
                flat = [i for s, e in shards for i in range(s, e)]
                assert flat == list(range(n_rows))
                sizes = [e - s for s, e in shards]
                if sizes:
                    assert max(sizes) - min(sizes) <= 1


class TestPoolEquivalence:
    @pytest.mark.parametrize("workers", [1, 2, 3])
    def test_bit_identical_to_serial(self, compiled, workers):
        rows = rows_for(compiled, 17, seed=workers)
        want_dec, want_spur, want_syn = compiled.forward_rows(rows)
        with InferencePool(compiled, workers=workers) as pool:
            got_dec, got_spur, got_syn = pool.infer_rows(rows)
        assert np.array_equal(got_dec, want_dec)
        assert got_spur == want_spur
        assert got_syn == want_syn

    def test_empty_and_single_row_blocks(self, compiled):
        with InferencePool(compiled, workers=2) as pool:
            dec, spur, syn = pool.infer_rows(rows_for(compiled, 0))
            assert dec.shape == (0, compiled.out_features)
            assert (spur, syn) == (0, 0)
            rows = rows_for(compiled, 1, seed=5)
            want = compiled.forward_rows(rows)
            got = pool.infer_rows(rows)
            assert np.array_equal(got[0], want[0])
            assert got[1:] == want[1:]

    def test_buffers_grow_and_results_stay_exact(self, compiled):
        with InferencePool(compiled, workers=2) as pool:
            for n in (2, 8, 64, 3, 128):
                rows = rows_for(compiled, n, seed=n)
                want = compiled.forward_rows(rows)
                got = pool.infer_rows(rows)
                assert np.array_equal(got[0], want[0])
                assert got[1:] == want[1:]

    def test_rejects_bad_row_shapes(self, compiled):
        with InferencePool(compiled, workers=1) as pool:
            with pytest.raises(ConfigurationError):
                pool.infer_rows(
                    np.zeros((3, compiled.in_features + 2))
                )


class TestPoolLifecycle:
    def test_close_is_idempotent_and_rejects_work(self, compiled):
        pool = InferencePool(compiled, workers=1)
        pool.close()
        pool.close()
        assert pool.closed
        assert pool.alive_workers() == 0
        with pytest.raises(InferencePoolError):
            pool.infer_rows(rows_for(compiled, 2))

    def test_dead_worker_is_resurrected(self, compiled):
        """A worker that died while idle is respawned at call start and
        the call answers bit-identically (the old pool failed here)."""
        rows = rows_for(compiled, 6, seed=3)
        want = compiled.forward_rows(rows)
        pool = InferencePool(
            compiled, workers=2, result_timeout_s=30.0
        )
        try:
            pool._procs[0].terminate()
            pool._procs[0].join(timeout=5.0)
            assert pool.alive_workers() == 1
            got = pool.infer_rows(rows)
            assert np.array_equal(got[0], want[0])
            assert got[1:] == want[1:]
            assert pool.alive_workers() == 2
            assert pool.restarts >= 1
        finally:
            pool.close()

    def test_ensure_workers_heals_between_calls(self, compiled):
        pool = InferencePool(compiled, workers=2)
        try:
            for proc in pool._procs:
                proc.terminate()
                proc.join(timeout=5.0)
            assert pool.alive_workers() == 0
            assert pool.ensure_workers() == 2
            assert pool.restarts == 2
        finally:
            pool.close()
        assert pool.ensure_workers() == 0  # closed pool stays down

    def test_close_races_in_flight_infer(self, compiled):
        """close() concurrent with an in-flight infer_rows: the call
        completes (bit-identically) and the pool ends up closed."""
        rows = rows_for(compiled, 96, seed=9)
        want = compiled.forward_rows(rows)
        pool = InferencePool(compiled, workers=2)
        results = {}

        def work():
            try:
                results["got"] = pool.infer_rows(rows)
            except InferencePoolError as exc:
                results["error"] = exc

        thread = threading.Thread(target=work)
        thread.start()
        pool.close()
        thread.join(timeout=30.0)
        assert not thread.is_alive()
        assert pool.closed
        if "got" in results:  # the call won the race
            assert np.array_equal(results["got"][0], want[0])
            assert results["got"][1:] == want[1:]
        else:  # close() won: the call failed loudly, never silently
            assert isinstance(results["error"], InferencePoolError)

    def test_validates_construction(self, compiled):
        with pytest.raises(ConfigurationError):
            InferencePool(compiled, workers=0)
        with pytest.raises(ConfigurationError):
            InferencePool(compiled, workers=1, result_timeout_s=0)

    def test_repr_mentions_plan(self, compiled):
        with InferencePool(compiled, workers=1) as pool:
            assert compiled.fingerprint[:12] in repr(pool)
        assert "closed" in repr(pool)


class TestPoolSupervision:
    """Mid-batch chaos: supervision may only change wall-clock and the
    restart counter, never an answer (see repro.harness.chaos for the
    full campaign; these are the fast in-suite checks)."""

    def test_kill_mid_batch_recovers_bit_identical(
        self, compiled, tmp_path
    ):
        rows = rows_for(compiled, 24, seed=41)
        want = compiled.forward_rows(rows)
        hook = KillHook(str(tmp_path), budget=1)
        with InferencePool(
            compiled, workers=2, chaos_hook=hook, result_timeout_s=30.0
        ) as pool:
            got = pool.infer_rows(rows)
            assert np.array_equal(got[0], want[0])
            assert got[1:] == want[1:]
            assert hook.fired() == 1
            assert pool.restarts >= 1
            assert pool.alive_workers() == 2

    def test_frozen_worker_is_force_killed(self, compiled, tmp_path):
        rows = rows_for(compiled, 12, seed=42)
        want = compiled.forward_rows(rows)
        hook = FreezeHook(str(tmp_path), budget=1, sleep_s=30.0)
        with InferencePool(
            compiled, workers=2, chaos_hook=hook, result_timeout_s=0.5
        ) as pool:
            got = pool.infer_rows(rows)
            assert np.array_equal(got[0], want[0])
            assert got[1:] == want[1:]
            assert pool.restarts >= 1
            assert pool.alive_workers() == 2

    def test_poison_batch_quarantined_and_pool_survives(
        self, compiled, tmp_path
    ):
        rows = rows_for(compiled, 10, seed=43)
        want = compiled.forward_rows(rows)
        hook = KillHook(str(tmp_path), budget=4)
        with InferencePool(
            compiled, workers=2, chaos_hook=hook, result_timeout_s=30.0
        ) as pool:
            with pytest.raises(PoisonBatchError):
                pool.infer_rows(rows)
            # Quarantine healed the pool before raising.
            assert pool.alive_workers() == 2
            # PoisonBatchError is an InferencePoolError: every existing
            # degrade path already catches it.
            assert issubclass(PoisonBatchError, InferencePoolError)
            # Once the chaos budget is spent the same block serves fine
            # (at most one stray permit survives the quarantined call).
            for _ in range(3):
                try:
                    got = pool.infer_rows(rows)
                    break
                except PoisonBatchError:
                    continue
            assert np.array_equal(got[0], want[0])
            assert got[1:] == want[1:]
            assert pool.alive_workers() == 2

    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        n_rows=st.integers(min_value=1, max_value=40),
        workers=st.integers(min_value=1, max_value=3),
        kills=st.integers(min_value=0, max_value=1),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_shard_retry_recovery_is_bit_identical(
        self, compiled, tmp_path_factory, n_rows, workers, kills, seed
    ):
        """Property: for random batch shapes and kill points, recovery
        returns exactly the serial answer."""
        rows = rows_for(compiled, n_rows, seed=seed)
        want = compiled.forward_rows(rows)
        marker_dir = tmp_path_factory.mktemp("chaos")
        hook = KillHook(str(marker_dir), budget=kills)
        with InferencePool(
            compiled, workers=workers, chaos_hook=hook,
            result_timeout_s=30.0,
        ) as pool:
            got = pool.infer_rows(rows)
            assert np.array_equal(got[0], want[0])
            assert got[1:] == want[1:]
            assert pool.alive_workers() == workers


class TestRuntimeIntegration:
    def test_persistent_pool_runtime_matches_serial(self):
        rng = np.random.default_rng(31)
        network = random_binarized_network(
            rng, sizes=(10, 7, 4), sc_per_npe=SC
        )
        trains = random_spike_trains(rng, 3, 8, 10)
        serial = SushiRuntime(
            chip_n=CHIP_N, sc_per_npe=SC, plan_cache=None
        ).infer(network, trains)
        with SushiRuntime(
            chip_n=CHIP_N, sc_per_npe=SC, max_workers=2,
            persistent_workers=True, plan_cache=None,
        ) as runtime:
            pooled = runtime.infer(network, trains)
            # The pool persists across calls on the same runtime.
            again = runtime.infer(network, trains)
        assert np.array_equal(pooled.output_raster, serial.output_raster)
        assert pooled.spurious_decisions == serial.spurious_decisions
        assert pooled.synaptic_ops == serial.synaptic_ops
        assert pooled.reload_events == serial.reload_events
        assert np.array_equal(again.output_raster, serial.output_raster)

    def test_runtime_keeps_pool_on_poison_batch(self):
        """PoisonBatchError routes the block serially *without* tearing
        the pool down (every other pool failure still drops it)."""
        rng = np.random.default_rng(33)
        network = random_binarized_network(
            rng, sizes=(10, 7, 4), sc_per_npe=SC
        )
        trains = random_spike_trains(rng, 3, 8, 10)
        serial = SushiRuntime(
            chip_n=CHIP_N, sc_per_npe=SC, plan_cache=None
        ).infer(network, trains)

        class _QuarantiningPool:
            calls = 0

            def infer_rows(self, rows):
                type(self).calls += 1
                raise PoisonBatchError("chaos: quarantined")

        runtime = SushiRuntime(
            chip_n=CHIP_N, sc_per_npe=SC, max_workers=2,
            persistent_workers=True, plan_cache=None,
        )
        closes = []
        original_close = runtime.close
        runtime._pool_for = lambda compiled: _QuarantiningPool()
        runtime.close = lambda: closes.append(True)
        try:
            poisoned = runtime.infer(network, trains)
        finally:
            runtime.close = original_close
            runtime.close()
        assert _QuarantiningPool.calls >= 1
        assert not closes  # the pool was NOT dropped
        assert np.array_equal(
            poisoned.output_raster, serial.output_raster
        )
        assert poisoned.synaptic_ops == serial.synaptic_ops

    def test_runtime_degrades_to_serial_when_pool_dies(self):
        rng = np.random.default_rng(32)
        network = random_binarized_network(
            rng, sizes=(10, 7, 4), sc_per_npe=SC
        )
        trains = random_spike_trains(rng, 3, 8, 10)
        serial = SushiRuntime(
            chip_n=CHIP_N, sc_per_npe=SC, plan_cache=None
        ).infer(network, trains)
        with SushiRuntime(
            chip_n=CHIP_N, sc_per_npe=SC, max_workers=2,
            persistent_workers=True, plan_cache=None,
        ) as runtime:
            first = runtime.infer(network, trains)
            # Kill the pool workers behind the runtime's back.
            for proc in runtime._pool._procs:
                proc.terminate()
                proc.join(timeout=5.0)
            healed = runtime.infer(network, trains)
        assert np.array_equal(first.output_raster, serial.output_raster)
        assert np.array_equal(healed.output_raster, serial.output_raster)
        assert healed.synaptic_ops == serial.synaptic_ops
