"""Tests for the persistent shared-memory pool (:mod:`repro.ssnn.pool`).

The pool is a pure performance transform: every test here pins
``InferencePool.infer_rows`` bit-for-bit against the serial
``CompiledNetwork.forward_rows``, across shard counts, row-block sizes
and buffer growth, and exercises the failure paths (closed pool, dead
worker) the serving layer degrades on.
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.harness import random_binarized_network, random_spike_trains
from repro.ssnn import (
    InferencePool,
    InferencePoolError,
    SushiRuntime,
    compile_network,
)

CHIP_N = 4
SC = 8


@pytest.fixture(scope="module")
def compiled():
    rng = np.random.default_rng(21)
    network = random_binarized_network(rng, sizes=(12, 9, 5), sc_per_npe=SC)
    return compile_network(network, CHIP_N, SC)


def rows_for(compiled, n, seed=0):
    rng = np.random.default_rng(seed)
    return (rng.random((n, compiled.in_features)) < 0.4).astype(np.float64)


class TestShards:
    def test_shards_cover_and_balance(self):
        for n_rows in (0, 1, 2, 7, 16):
            for parts in (1, 2, 5):
                shards = InferencePool._shards(n_rows, parts)
                flat = [i for s, e in shards for i in range(s, e)]
                assert flat == list(range(n_rows))
                sizes = [e - s for s, e in shards]
                if sizes:
                    assert max(sizes) - min(sizes) <= 1


class TestPoolEquivalence:
    @pytest.mark.parametrize("workers", [1, 2, 3])
    def test_bit_identical_to_serial(self, compiled, workers):
        rows = rows_for(compiled, 17, seed=workers)
        want_dec, want_spur, want_syn = compiled.forward_rows(rows)
        with InferencePool(compiled, workers=workers) as pool:
            got_dec, got_spur, got_syn = pool.infer_rows(rows)
        assert np.array_equal(got_dec, want_dec)
        assert got_spur == want_spur
        assert got_syn == want_syn

    def test_empty_and_single_row_blocks(self, compiled):
        with InferencePool(compiled, workers=2) as pool:
            dec, spur, syn = pool.infer_rows(rows_for(compiled, 0))
            assert dec.shape == (0, compiled.out_features)
            assert (spur, syn) == (0, 0)
            rows = rows_for(compiled, 1, seed=5)
            want = compiled.forward_rows(rows)
            got = pool.infer_rows(rows)
            assert np.array_equal(got[0], want[0])
            assert got[1:] == want[1:]

    def test_buffers_grow_and_results_stay_exact(self, compiled):
        with InferencePool(compiled, workers=2) as pool:
            for n in (2, 8, 64, 3, 128):
                rows = rows_for(compiled, n, seed=n)
                want = compiled.forward_rows(rows)
                got = pool.infer_rows(rows)
                assert np.array_equal(got[0], want[0])
                assert got[1:] == want[1:]

    def test_rejects_bad_row_shapes(self, compiled):
        with InferencePool(compiled, workers=1) as pool:
            with pytest.raises(ConfigurationError):
                pool.infer_rows(
                    np.zeros((3, compiled.in_features + 2))
                )


class TestPoolLifecycle:
    def test_close_is_idempotent_and_rejects_work(self, compiled):
        pool = InferencePool(compiled, workers=1)
        pool.close()
        pool.close()
        assert pool.closed
        assert pool.alive_workers() == 0
        with pytest.raises(InferencePoolError):
            pool.infer_rows(rows_for(compiled, 2))

    def test_dead_worker_raises_pool_error(self, compiled):
        pool = InferencePool(
            compiled, workers=1, result_timeout_s=30.0
        )
        try:
            pool._procs[0].terminate()
            pool._procs[0].join(timeout=5.0)
            with pytest.raises(InferencePoolError):
                pool.infer_rows(rows_for(compiled, 4))
        finally:
            pool.close()

    def test_validates_construction(self, compiled):
        with pytest.raises(ConfigurationError):
            InferencePool(compiled, workers=0)
        with pytest.raises(ConfigurationError):
            InferencePool(compiled, workers=1, result_timeout_s=0)

    def test_repr_mentions_plan(self, compiled):
        with InferencePool(compiled, workers=1) as pool:
            assert compiled.fingerprint[:12] in repr(pool)
        assert "closed" in repr(pool)


class TestRuntimeIntegration:
    def test_persistent_pool_runtime_matches_serial(self):
        rng = np.random.default_rng(31)
        network = random_binarized_network(
            rng, sizes=(10, 7, 4), sc_per_npe=SC
        )
        trains = random_spike_trains(rng, 3, 8, 10)
        serial = SushiRuntime(
            chip_n=CHIP_N, sc_per_npe=SC, plan_cache=None
        ).infer(network, trains)
        with SushiRuntime(
            chip_n=CHIP_N, sc_per_npe=SC, max_workers=2,
            persistent_workers=True, plan_cache=None,
        ) as runtime:
            pooled = runtime.infer(network, trains)
            # The pool persists across calls on the same runtime.
            again = runtime.infer(network, trains)
        assert np.array_equal(pooled.output_raster, serial.output_raster)
        assert pooled.spurious_decisions == serial.spurious_decisions
        assert pooled.synaptic_ops == serial.synaptic_ops
        assert pooled.reload_events == serial.reload_events
        assert np.array_equal(again.output_raster, serial.output_raster)

    def test_runtime_degrades_to_serial_when_pool_dies(self):
        rng = np.random.default_rng(32)
        network = random_binarized_network(
            rng, sizes=(10, 7, 4), sc_per_npe=SC
        )
        trains = random_spike_trains(rng, 3, 8, 10)
        serial = SushiRuntime(
            chip_n=CHIP_N, sc_per_npe=SC, plan_cache=None
        ).infer(network, trains)
        with SushiRuntime(
            chip_n=CHIP_N, sc_per_npe=SC, max_workers=2,
            persistent_workers=True, plan_cache=None,
        ) as runtime:
            first = runtime.infer(network, trains)
            # Kill the pool workers behind the runtime's back.
            for proc in runtime._pool._procs:
                proc.terminate()
                proc.join(timeout=5.0)
            healed = runtime.infer(network, trains)
        assert np.array_equal(first.output_raster, serial.output_raster)
        assert np.array_equal(healed.output_raster, serial.output_raster)
        assert healed.synaptic_ops == serial.synaptic_ops
