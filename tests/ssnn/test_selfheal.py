"""Tests for the self-healing runtime retry/fallback loop.

Contract (see ``docs/FAULTS.md``): with an active fault model every
``infer`` corrupts its inputs per a deterministic per-attempt seed,
detects corruption by disagreement with the clean software reference,
retries with fresh seeds, and finally either degrades gracefully to
fault-free semantics (``degraded=True`` with a recovery trail) or raises
:class:`~repro.errors.FaultInjectionError` -- per :class:`RetryPolicy`.
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError, FaultInjectionError
from repro.harness.differential import (
    random_binarized_network,
    random_spike_trains,
)
from repro.rsfq.faults import FaultModel
from repro.ssnn import RetryPolicy, SushiRuntime, perturb_spike_trains


@pytest.fixture(scope="module")
def workload():
    sizes = (8, 6, 4)
    network = random_binarized_network(
        np.random.default_rng(0), sizes, sc_per_npe=8
    )
    trains = random_spike_trains(
        np.random.default_rng(1), 6, 8, sizes[0], rate=0.5
    )
    return network, trains


def runtime_with(faults, policy=None, **kwargs):
    kwargs.setdefault("chip_n", 8)
    kwargs.setdefault("sc_per_npe", 8)
    return SushiRuntime(faults=faults, retry_policy=policy, **kwargs)


class TestRetryPolicy:
    def test_defaults(self):
        policy = RetryPolicy()
        assert policy.max_retries == 3
        assert policy.fallback is True
        assert policy.fallback_engine is None

    def test_negative_retries_rejected(self):
        with pytest.raises(ConfigurationError, match="max_retries"):
            RetryPolicy(max_retries=-1)

    def test_unknown_fallback_engine_rejected(self):
        with pytest.raises(ConfigurationError, match="fallback_engine"):
            RetryPolicy(fallback_engine="quantum")


class TestPerturbation:
    def test_deterministic_per_attempt(self, workload):
        _, trains = workload
        model = FaultModel.single("pulse_drop", 0.2, seed=9)
        a1, n1 = perturb_spike_trains(trains, model, attempt=0)
        a2, n2 = perturb_spike_trains(trains, model, attempt=0)
        assert n1 == n2 and np.array_equal(a1, a2)
        b1, m1 = perturb_spike_trains(trains, model, attempt=1)
        assert not np.array_equal(a1, b1)

    def test_input_is_not_mutated(self, workload):
        _, trains = workload
        before = trains.copy()
        perturb_spike_trains(
            trains, FaultModel.single("flux_trap", 0.5), attempt=0
        )
        assert np.array_equal(trains, before)

    def test_drop_only_clears_spikes(self, workload):
        _, trains = workload
        out, injected = perturb_spike_trains(
            trains, FaultModel.single("pulse_drop", 1.0), attempt=0
        )
        assert injected == int((trains > 0).sum())
        assert out.sum() == 0

    def test_duplicate_only_raises_spikes(self, workload):
        _, trains = workload
        out, injected = perturb_spike_trains(
            trains, FaultModel.single("pulse_duplicate", 1.0), attempt=0
        )
        assert injected == int((trains == 0).sum())
        assert out.min() == 1.0

    def test_stuck_cell_silences_whole_features(self, workload):
        _, trains = workload
        out, injected = perturb_spike_trains(
            trains, FaultModel.single("stuck_cell", 1.0), attempt=0
        )
        assert injected == trains.shape[2]
        assert out.sum() == 0

    def test_zero_probability_is_identity(self, workload):
        _, trains = workload
        out, injected = perturb_spike_trains(
            trains, FaultModel.single("flux_trap", 0.0), attempt=0
        )
        assert injected == 0
        assert np.array_equal(out, trains)


class TestSelfHealing:
    def test_no_faults_is_single_clean_attempt(self, workload):
        network, trains = workload
        result = runtime_with(None).infer(network, trains)
        assert result.attempts == 1
        assert result.degraded is False
        assert result.fault_injections == 0
        assert result.recovery == ()

    def test_zero_probability_model_heals_first_attempt(self, workload):
        network, trains = workload
        runtime = runtime_with(FaultModel.single("pulse_drop", 0.0, seed=1))
        result = runtime.infer(network, trains)
        assert result.attempts == 1
        assert result.degraded is False
        assert result.recovery == ()

    def test_persistent_faults_degrade_gracefully(self, workload):
        network, trains = workload
        runtime = runtime_with(
            FaultModel.single("pulse_drop", 0.05, seed=3),
            RetryPolicy(max_retries=2),
        )
        result = runtime.infer(network, trains)
        clean = runtime_with(None).infer(network, trains)
        # The acceptance scenario: p=0.05 drop, inference completes with
        # the degradation recorded and fault-free final semantics.
        assert result.degraded is True
        assert result.attempts == 4  # 1 + 2 retries + fallback
        assert result.fault_injections > 0
        assert len(result.recovery) == 4
        assert "fallback: degraded" in result.recovery[-1]
        assert np.array_equal(result.output_raster, clean.output_raster)
        assert np.array_equal(result.predictions, clean.predictions)

    def test_raise_policy_surfaces_fault_injection_error(self, workload):
        network, trains = workload
        runtime = runtime_with(
            FaultModel.single("pulse_drop", 0.05, seed=3),
            RetryPolicy(max_retries=1, fallback=False),
        )
        with pytest.raises(FaultInjectionError, match="stayed corrupted"):
            runtime.infer(network, trains)

    def test_behavioral_fallback_engine(self, workload):
        network, trains = workload
        runtime = runtime_with(
            FaultModel.single("pulse_drop", 0.05, seed=3),
            RetryPolicy(max_retries=0, fallback_engine="behavioral"),
        )
        result = runtime.infer(network, trains)
        assert result.degraded is True
        assert "behavioral" in result.recovery[-1]
        clean = runtime_with(None, engine="behavioral").infer(
            network, trains
        )
        assert np.array_equal(result.output_raster, clean.output_raster)

    def test_healing_is_deterministic(self, workload):
        network, trains = workload
        make = lambda: runtime_with(
            FaultModel.single("flux_trap", 0.03, seed=11),
            RetryPolicy(max_retries=3),
        )
        r1 = make().infer(network, trains)
        r2 = make().infer(network, trains)
        assert r1.attempts == r2.attempts
        assert r1.fault_injections == r2.fault_injections
        assert r1.recovery == r2.recovery
        assert np.array_equal(r1.output_raster, r2.output_raster)
