"""Tests for the bit-slice planner, stream encoder and chip runtime."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CapacityError, ConfigurationError
from repro.neuro.state_controller import Polarity
from repro.snn.binarize import BinarizedLayer, BinarizedNetwork
from repro.ssnn import (
    SushiRuntime,
    encode_inference,
    plan_network,
)
from repro.ssnn.bitslice import ceil_div
from repro.ssnn.encoder import InferenceTiming


def random_network(rng, sizes=(7, 5, 3), zero_frac=0.2):
    layers = []
    for a, b in zip(sizes, sizes[1:]):
        weights = rng.choice([-1, 1], size=(a, b))
        weights[rng.random((a, b)) < zero_frac] = 0
        layers.append(BinarizedLayer(weights, rng.integers(1, 4, size=b)))
    return BinarizedNetwork(layers)


class TestPlanner:
    def test_slice_counts(self):
        net = random_network(np.random.default_rng(0), sizes=(10, 7, 3))
        plan = plan_network(net, chip_n=4)
        assert plan.slice_counts() == [
            (ceil_div(10, 4), ceil_div(7, 4)),
            (ceil_div(7, 4), ceil_div(3, 4)),
        ]

    def test_pass_count_is_two_per_block(self):
        net = random_network(np.random.default_rng(1), sizes=(8, 4))
        plan = plan_network(net, chip_n=4)
        # 2 input slices x 1 output slice x 2 polarities.
        assert plan.pass_count == 4

    def test_inhibitory_passes_precede_excitatory_within_out_slice(self):
        """Cross-slice reordering: all SET0 passes of an output slice come
        before any SET1 pass (otherwise premature firing is possible)."""
        net = random_network(np.random.default_rng(2), sizes=(12, 5))
        plan = plan_network(net, chip_n=3)
        by_slice = {}
        for task in plan.tasks:
            by_slice.setdefault((task.layer_index, task.out_slice),
                                []).append(task.polarity)
        for polarities in by_slice.values():
            first_exc = polarities.index(Polarity.SET1)
            assert all(p is Polarity.SET1 for p in polarities[first_exc:])

    def test_strength_matrices_are_nonnegative_and_padded(self):
        net = random_network(np.random.default_rng(3), sizes=(5, 3))
        plan = plan_network(net, chip_n=4)
        for task in plan.tasks:
            assert task.strengths.shape == (4, 4)
            assert (task.strengths >= 0).all()
            # Padding region stays zero.
            assert (task.strengths[:, 3:] == 0).all()

    def test_polarity_decomposition_reconstructs_weights(self):
        net = random_network(np.random.default_rng(4), sizes=(6, 4))
        plan = plan_network(net, chip_n=6)
        inh = next(t for t in plan.tasks if t.polarity is Polarity.SET0)
        exc = next(t for t in plan.tasks if t.polarity is Polarity.SET1)
        rebuilt = exc.strengths - inh.strengths
        np.testing.assert_array_equal(
            rebuilt[:6, :4], net.layers[0].signed_weights
        )

    def test_capacity_guard(self):
        heavy = BinarizedNetwork([
            BinarizedLayer(np.full((40, 2), -1, dtype=int), [2, 2])
        ])
        with pytest.raises(CapacityError):
            plan_network(heavy, chip_n=2, sc_per_npe=5)

    def test_strength_guard(self):
        net = BinarizedNetwork([
            BinarizedLayer(np.full((2, 2), 3, dtype=int), [1, 1])
        ])
        with pytest.raises(CapacityError):
            plan_network(net, chip_n=2, max_strength=2)
        plan = plan_network(net, chip_n=2)  # auto strength
        assert plan.max_strength == 3

    def test_reload_statistics(self):
        net = random_network(np.random.default_rng(5), sizes=(6, 6))
        plan = plan_network(net, chip_n=3)
        assert plan.reload_events() > 0
        assert 0 < plan.reload_passes() <= plan.pass_count


class TestRuntimeEngines:
    def test_fast_matches_reference_network(self):
        rng = np.random.default_rng(0)
        net = random_network(rng)
        trains = (rng.random((5, 10, 7)) < 0.4).astype(float)
        result = SushiRuntime(chip_n=4, sc_per_npe=8).infer(net, trains)
        np.testing.assert_array_equal(
            result.predictions, net.predict(trains)
        )
        assert result.spurious_decisions == 0

    def test_behavioral_matches_fast(self):
        rng = np.random.default_rng(1)
        net = random_network(rng, sizes=(5, 4, 3))
        trains = (rng.random((3, 4, 5)) < 0.5).astype(float)
        fast = SushiRuntime(chip_n=3, sc_per_npe=6).infer(net, trains)
        slow = SushiRuntime(chip_n=3, sc_per_npe=6,
                            engine="behavioral").infer(net, trains)
        np.testing.assert_array_equal(fast.output_raster, slow.output_raster)
        np.testing.assert_array_equal(fast.predictions, slow.predictions)

    @given(chip_n=st.integers(min_value=1, max_value=6))
    @settings(max_examples=6, deadline=None)
    def test_mesh_size_does_not_change_results(self, chip_n):
        """Bit-slicing is semantics-preserving: any mesh size computes the
        same network (the state-preservation claim of section 5.3)."""
        rng = np.random.default_rng(7)
        net = random_network(rng, sizes=(6, 5, 3))
        trains = (rng.random((3, 5, 6)) < 0.5).astype(float)
        result = SushiRuntime(chip_n=chip_n, sc_per_npe=8,
                              engine="behavioral").infer(net, trains)
        np.testing.assert_array_equal(result.predictions, net.predict(trains))

    def test_naive_reorder_ablation_can_differ(self):
        layer = BinarizedLayer(np.array([[1], [1], [-1], [-1]]), [2])
        net = BinarizedNetwork([layer])
        trains = np.ones((1, 1, 4))
        naive = SushiRuntime(chip_n=2, reorder=False).infer(net, trains)
        assert naive.spurious_decisions == 1
        ordered = SushiRuntime(chip_n=2).infer(net, trains)
        assert ordered.spurious_decisions == 0

    def test_behavioral_rejects_naive_mode(self):
        net = random_network(np.random.default_rng(2))
        with pytest.raises(ConfigurationError):
            SushiRuntime(engine="behavioral", reorder=False).infer(
                net, np.zeros((1, 1, 7))
            )

    def test_input_validation(self):
        net = random_network(np.random.default_rng(3))
        runtime = SushiRuntime()
        with pytest.raises(ConfigurationError):
            runtime.infer(net, np.zeros((2, 7)))
        with pytest.raises(ConfigurationError):
            runtime.infer(net, np.zeros((2, 1, 9)))
        with pytest.raises(ConfigurationError):
            SushiRuntime(engine="quantum")


class TestEncoder:
    def make(self, chip_n=3):
        rng = np.random.default_rng(0)
        net = random_network(rng, sizes=(9, 6, 3))
        plan = plan_network(net, chip_n=chip_n)
        trains = (rng.random((5, 9)) < 0.5).astype(float)
        return plan, trains

    def test_total_time_is_sum_of_components(self):
        plan, trains = self.make()
        enc = encode_inference(plan, trains)
        assert enc.total_ps == pytest.approx(
            enc.input_time_ps + enc.reload_time_ps
            + enc.protocol_time_ps + enc.transmission_time_ps
        )

    def test_fractions_in_unit_interval(self):
        plan, trains = self.make()
        enc = encode_inference(plan, trains)
        assert 0.0 <= enc.reload_fraction < 1.0
        assert 0.0 <= enc.transmission_fraction < 1.0
        assert enc.fps > 0

    def test_no_spikes_means_no_input_time(self):
        plan, _ = self.make()
        enc = encode_inference(plan, np.zeros((5, 9)))
        assert enc.input_time_ps == 0.0
        assert enc.synaptic_ops == 0
        assert enc.protocol_time_ps > 0  # protocol still runs

    def test_transmission_grows_with_mesh(self):
        """Larger meshes spend proportionally more on transmission -- the
        effect behind the paper's 6% -> 53% delay analysis."""
        rng = np.random.default_rng(1)
        net = random_network(rng, sizes=(12, 8, 4))
        trains = (rng.random((5, 12)) < 0.6).astype(float)
        small = encode_inference(plan_network(net, 2), trains)
        large = encode_inference(plan_network(net, 8), trains)
        assert large.transmission_fraction > small.transmission_fraction

    def test_shape_validation(self):
        plan, _ = self.make()
        with pytest.raises(ConfigurationError):
            encode_inference(plan, np.zeros(9))
        with pytest.raises(ConfigurationError):
            encode_inference(plan, np.zeros((5, 4)))

    def test_timing_constants_validation(self):
        from repro.neuro.timing import TimingPolicy

        with pytest.raises(ConfigurationError):
            TimingPolicy(input_interval=10.0)  # below TFF interval
