"""Unit tests for the stream-encoder timing constants."""

import pytest

from repro.errors import ConfigurationError
from repro.neuro.timing import TimingPolicy
from repro.ssnn.encoder import EncodedInference, InferenceTiming


class TestInferenceTiming:
    def test_row_spacing_grows_with_gain(self):
        timing = InferenceTiming()
        assert timing.row_spacing(2) > timing.row_spacing(1)
        # Unit gain: just the policy interval plus the tree margin.
        assert timing.row_spacing(1) == pytest.approx(
            timing.policy.input_interval + 15.0
        )

    def test_protocol_windows_scale_with_chain_length(self):
        short = InferenceTiming(sc_per_npe=4)
        long = InferenceTiming(sc_per_npe=12)
        assert long.pass_protocol_ps() > short.pass_protocol_ps()
        assert long.timestep_protocol_ps() > short.timestep_protocol_ps()

    def test_reload_latency_scales_with_span(self):
        timing = InferenceTiming()
        assert timing.reload_latency_ps(16) > timing.reload_latency_ps(1)
        assert timing.reload_latency_ps(1) == pytest.approx(
            timing.reload_base_ps + timing.reload_per_span_ps
        )

    def test_transmission_covers_row_and_column(self):
        timing = InferenceTiming()
        assert timing.transmission_ps(4) == pytest.approx(
            timing.line_delay_per_span_ps * 8
        )

    def test_custom_policy_respected(self):
        policy = TimingPolicy(input_interval=80.0)
        timing = InferenceTiming(policy=policy)
        assert timing.row_spacing(1) == pytest.approx(95.0)


class TestEncodedInference:
    def make(self, **overrides):
        values = dict(
            chip_n=4, time_steps=5, input_time_ps=1000.0,
            reload_time_ps=250.0, protocol_time_ps=500.0,
            transmission_time_ps=250.0, synaptic_ops=100,
            spikes_streamed=40, reload_passes=3, total_passes=10,
        )
        values.update(overrides)
        return EncodedInference(**values)

    def test_total_and_fractions(self):
        enc = self.make()
        assert enc.total_ps == 2000.0
        assert enc.reload_fraction == pytest.approx(0.125)
        assert enc.transmission_fraction == pytest.approx(0.125)
        assert enc.fps == pytest.approx(5e8)
        assert enc.sops() == pytest.approx(100 / 2e-9)

    def test_zero_duration_degenerate(self):
        enc = self.make(input_time_ps=0.0, reload_time_ps=0.0,
                        protocol_time_ps=0.0, transmission_time_ps=0.0)
        assert enc.reload_fraction == 0.0
        assert enc.sops() == 0.0
        assert enc.fps == float("inf")
