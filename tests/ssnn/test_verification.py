"""Tests for static bit-slice plan verification."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.neuro.state_controller import Polarity
from repro.snn.binarize import BinarizedLayer, BinarizedNetwork
from repro.ssnn.bitslice import plan_network
from repro.ssnn.verification import (
    reconstruct_weights,
    verify_plan,
)


def random_network(seed, sizes=(9, 6, 4), levels=(-2, -1, 0, 1, 2)):
    rng = np.random.default_rng(seed)
    layers = []
    for a, b in zip(sizes, sizes[1:]):
        weights = rng.choice(levels, size=(a, b))
        layers.append(BinarizedLayer(weights, rng.integers(1, 4, size=b)))
    return BinarizedNetwork(layers)


class TestReconstruction:
    @given(seed=st.integers(min_value=0, max_value=1000),
           chip_n=st.integers(min_value=1, max_value=7))
    @settings(max_examples=25, deadline=None)
    def test_weights_always_reconstructible(self, seed, chip_n):
        """Property: slicing and polarity decomposition lose nothing."""
        net = random_network(seed)
        plan = plan_network(net, chip_n)
        for index, layer in enumerate(net.layers):
            np.testing.assert_array_equal(
                reconstruct_weights(plan, index), layer.signed_weights
            )

    def test_plan_without_network_rejected(self):
        net = random_network(0)
        plan = plan_network(net, 3)
        plan.network = None
        with pytest.raises(ConfigurationError):
            reconstruct_weights(plan, 0)


class TestVerifyPlan:
    def test_valid_plan_passes(self):
        plan = plan_network(random_network(1), 4)
        report = verify_plan(plan)
        assert report.ok
        assert report.errors == []
        report.raise_if_failed()  # no-op

    def test_corrupted_gains_detected(self):
        plan = plan_network(random_network(2), 4)
        plan.tasks[0].strengths[0, 0] += 1
        report = verify_plan(plan)
        assert not report.ok
        assert any("synapses differ" in e for e in report.errors)
        with pytest.raises(ConfigurationError):
            report.raise_if_failed()

    def test_misordered_polarity_detected(self):
        plan = plan_network(random_network(3), 4)
        # Move the first excitatory pass of slice 0 before its inhibitory
        # passes (keeps reconstruction intact, breaks ordering).
        key = (plan.tasks[0].layer_index, plan.tasks[0].out_slice)
        slice_tasks = [t for t in plan.tasks
                       if (t.layer_index, t.out_slice) == key]
        exc = next(t for t in slice_tasks if t.polarity is Polarity.SET1)
        plan.tasks.remove(exc)
        plan.tasks.insert(1, exc)
        report = verify_plan(plan)
        assert not report.ok
        assert any("inhibitory pass after" in e for e in report.errors)

    def test_capacity_violation_detected(self):
        heavy = BinarizedNetwork([
            BinarizedLayer(np.full((30, 2), -1, dtype=int), [2, 2])
        ])
        plan = plan_network(heavy, 2, sc_per_npe=10)
        report = verify_plan(plan, sc_per_npe=4)  # stricter chain
        assert not report.ok
        assert any("states" in e for e in report.errors)

    def test_excess_gain_detected(self):
        plan = plan_network(random_network(4), 3)
        plan.max_strength = 1  # pretend the chip only has unit gains
        report = verify_plan(plan)
        assert not report.ok
        assert any("gain exceeds" in e for e in report.errors)

    def test_missing_preload_detected(self):
        plan = plan_network(random_network(5), 3)
        first = plan.tasks[0]
        object.__setattr__(first, "first_pass_of_out_slice", False)
        report = verify_plan(plan)
        assert not report.ok
        assert any("preload" in e for e in report.errors)
