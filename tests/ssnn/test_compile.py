"""Tests for the compile-once plan layer (:mod:`repro.ssnn.compile`).

Covers the cache-key scheme (fingerprint sensitivity), the fused compiled
kernel's bit-identity against the legacy per-run path, the folded static
statistics, the disk round trip, and the content-addressed
:class:`PlanCache` (hit/miss accounting, corruption recovery, clearing,
degrade on unwritable roots).
"""

import os

import numpy as np
import pytest

from repro.errors import CapacityError, ConfigurationError
from repro.harness import random_binarized_network, random_spike_trains
from repro.snn.binarize import BinarizedLayer, BinarizedNetwork
from repro.ssnn import (
    CompiledNetwork,
    PlanCache,
    SushiRuntime,
    compile_network,
    network_fingerprint,
    plan_network,
    resolve_plan_cache,
)
from repro.ssnn.compile import _materialize_layer

CHIP_N = 4
SC = 8


def make_workload(seed=0, sizes=(10, 8, 5), steps=3, batch=6):
    rng = np.random.default_rng(seed)
    network = random_binarized_network(rng, sizes=sizes, sc_per_npe=SC)
    trains = random_spike_trains(rng, steps, batch, sizes[0])
    return network, trains


class TestFingerprint:
    def test_equal_valued_networks_share_a_key(self):
        net_a, _ = make_workload(seed=1)
        net_b = BinarizedNetwork([
            BinarizedLayer(l.signed_weights.copy(), l.thresholds.copy())
            for l in net_a.layers
        ])
        assert (network_fingerprint(net_a, CHIP_N, SC)
                == network_fingerprint(net_b, CHIP_N, SC))

    def test_any_parameter_change_changes_the_key(self):
        network, _ = make_workload(seed=2)
        base = network_fingerprint(network, CHIP_N, SC, reorder=True)
        keys = {
            base,
            network_fingerprint(network, CHIP_N + 1, SC),
            network_fingerprint(network, CHIP_N, SC + 1),
            network_fingerprint(network, CHIP_N, SC, reorder=False),
        }
        assert len(keys) == 4

        weights = network.layers[0].signed_weights.copy()
        weights[0, 0] += 1
        bumped_w = BinarizedNetwork(
            [BinarizedLayer(weights, network.layers[0].thresholds)]
            + list(network.layers[1:])
        )
        thresholds = network.layers[0].thresholds.copy()
        thresholds[0] += 1
        bumped_t = BinarizedNetwork(
            [BinarizedLayer(network.layers[0].signed_weights, thresholds)]
            + list(network.layers[1:])
        )
        assert network_fingerprint(bumped_w, CHIP_N, SC) != base
        assert network_fingerprint(bumped_t, CHIP_N, SC) != base


class TestCompiledKernel:
    @pytest.mark.parametrize("reorder", [True, False])
    def test_bit_identical_to_legacy_runtime(self, reorder):
        network, trains = make_workload(seed=3)
        compiled = SushiRuntime(
            chip_n=CHIP_N, sc_per_npe=SC, reorder=reorder, plan_cache=None,
        ).infer(network, trains)
        legacy = SushiRuntime(
            chip_n=CHIP_N, sc_per_npe=SC, reorder=reorder,
            use_compiled=False, plan_cache=None,
        ).infer(network, trains)
        assert np.array_equal(compiled.output_raster, legacy.output_raster)
        assert np.array_equal(compiled.predictions, legacy.predictions)
        assert compiled.spurious_decisions == legacy.spurious_decisions
        assert compiled.synaptic_ops == legacy.synaptic_ops
        assert compiled.reload_events == legacy.reload_events

    def test_static_stats_match_the_planner(self):
        network, _ = make_workload(seed=4)
        compiled = compile_network(network, CHIP_N, SC)
        plan = plan_network(network, CHIP_N, SC)
        assert compiled.pass_count == plan.pass_count
        assert compiled.max_strength == plan.max_strength
        assert compiled.reload_events == plan.reload_events()
        assert compiled.reload_passes == plan.reload_passes()
        assert compiled.slice_counts == tuple(
            tuple(sc) for sc in plan.slice_counts()
        )
        assert compiled.capacity == 1 << SC
        assert compiled.in_features == network.in_features
        assert compiled.out_features == network.out_features

    def test_rejects_bad_row_shapes(self):
        network, _ = make_workload(seed=5)
        compiled = compile_network(network, CHIP_N, SC)
        with pytest.raises(ConfigurationError):
            compiled.forward_rows(np.zeros((3, network.in_features + 1)))

    def test_capacity_error_surfaces_at_compile_time(self):
        # Inhibition + threshold exceed the SC chain: the planner's
        # CapacityError must fire during compile, not at inference.
        weights = np.full((4, 2), -3, dtype=np.int64)
        thresholds = np.array([3, 3])
        network = BinarizedNetwork([BinarizedLayer(weights, thresholds)])
        with pytest.raises(CapacityError):
            compile_network(network, CHIP_N, sc_per_npe=3)

    def test_compute_dtype_selection(self):
        # Small trajectories run in float32 ...
        network, _ = make_workload(seed=6)
        compiled = compile_network(network, CHIP_N, SC)
        assert all(
            l.compute_dtype == np.float32 for l in compiled.layers
        )
        # ... and a trajectory bound beyond 2**24 forces float64.
        big = _materialize_layer(
            np.array([[1 << 24]], dtype=np.int64),
            np.array([1], dtype=np.int64),
            np.array([0, 0], dtype=np.int32),
            np.array([0, 1], dtype=np.int8),
            capacity=1 << SC,
        )
        assert big.compute_dtype == np.float64

    def test_weights_pack_into_the_tightest_dtype(self):
        network, _ = make_workload(seed=7)
        compiled = compile_network(network, CHIP_N, SC)
        for layer in compiled.layers:
            assert layer.signed_weights.dtype == np.int8


class TestDiskRoundTrip:
    def test_save_load_round_trip(self, tmp_path):
        network, trains = make_workload(seed=8)
        compiled = compile_network(network, CHIP_N, SC)
        path = tmp_path / "plan.npz"
        compiled.save(path)
        loaded = CompiledNetwork.load(path)
        assert loaded.fingerprint == compiled.fingerprint
        assert loaded.slice_counts == compiled.slice_counts
        assert loaded.reload_events == compiled.reload_events
        for a, b in zip(loaded.layers, compiled.layers):
            assert np.array_equal(a.signed_weights, b.signed_weights)
            assert np.array_equal(a.thresholds, b.thresholds)
            assert np.array_equal(a.stream_order, b.stream_order)
            assert np.array_equal(a.stream_polarity, b.stream_polarity)
            assert a.compute_dtype == b.compute_dtype
        rows = trains.reshape(-1, network.in_features)
        assert all(
            np.array_equal(x, y) if isinstance(x, np.ndarray) else x == y
            for x, y in zip(loaded.forward_rows(rows),
                            compiled.forward_rows(rows))
        )

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "broken.npz"
        path.write_bytes(b"not a zip at all")
        with pytest.raises(ConfigurationError):
            CompiledNetwork.load(path)

    def test_load_rejects_stale_schema(self, tmp_path, monkeypatch):
        network, _ = make_workload(seed=9)
        compiled = compile_network(network, CHIP_N, SC)
        path = tmp_path / "plan.npz"
        compiled.save(path)
        monkeypatch.setattr("repro.ssnn.compile.SCHEMA_VERSION", 999)
        with pytest.raises(ConfigurationError):
            CompiledNetwork.load(path)


class TestPlanCache:
    def test_miss_then_hit(self, tmp_path):
        network, _ = make_workload(seed=10)
        cache = PlanCache(root=tmp_path)
        first = cache.get_or_compile(network, CHIP_N, SC)
        second = cache.get_or_compile(network, CHIP_N, SC)
        assert cache.misses == 1 and cache.hits == 1
        assert first.fingerprint == second.fingerprint
        stats = cache.stats()
        assert stats.entries == 1 and stats.bytes > 0
        assert stats.hits == 1 and stats.misses == 1

    def test_distinct_configs_get_distinct_entries(self, tmp_path):
        network, _ = make_workload(seed=11)
        cache = PlanCache(root=tmp_path)
        cache.get_or_compile(network, CHIP_N, SC, reorder=True)
        cache.get_or_compile(network, CHIP_N, SC, reorder=False)
        assert cache.stats().entries == 2

    def test_corrupt_entry_recompiles(self, tmp_path):
        network, _ = make_workload(seed=12)
        cache = PlanCache(root=tmp_path)
        compiled = cache.get_or_compile(network, CHIP_N, SC)
        cache.path_for(compiled.fingerprint).write_bytes(b"garbage")
        again = cache.get_or_compile(network, CHIP_N, SC)
        assert cache.misses == 2 and cache.hits == 0
        assert again.fingerprint == compiled.fingerprint
        # The rewritten entry is healthy again.
        assert CompiledNetwork.load(
            cache.path_for(compiled.fingerprint)
        ).fingerprint == compiled.fingerprint

    def test_clear_removes_entries(self, tmp_path):
        network, _ = make_workload(seed=13)
        cache = PlanCache(root=tmp_path)
        cache.get_or_compile(network, CHIP_N, SC)
        assert cache.clear() == 1
        assert cache.stats().entries == 0

    def test_unwritable_root_degrades_to_memory(self, tmp_path):
        if os.geteuid() == 0:
            pytest.skip("root ignores directory permissions")
        root = tmp_path / "ro"
        root.mkdir()
        root.chmod(0o500)
        try:
            network, _ = make_workload(seed=14)
            cache = PlanCache(root=root)
            compiled = cache.get_or_compile(network, CHIP_N, SC)
            assert compiled.out_features == network.out_features
            assert cache.stats().entries == 0
        finally:
            root.chmod(0o700)

    def test_resolve_plan_cache(self, tmp_path):
        cache = PlanCache(root=tmp_path)
        assert resolve_plan_cache(None) is None
        assert resolve_plan_cache(cache) is cache
        assert resolve_plan_cache("default") is not None
        with pytest.raises(ConfigurationError):
            resolve_plan_cache("never")

    def test_env_var_controls_default_root(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_PLAN_CACHE_DIR", str(tmp_path / "plans"))
        from repro.ssnn.compile import default_cache, default_cache_dir

        assert default_cache_dir() == tmp_path / "plans"
        assert default_cache().root == tmp_path / "plans"


class TestRuntimeCacheIntegration:
    def test_runtime_uses_the_cache_across_instances(self, tmp_path):
        network, trains = make_workload(seed=15)
        cache = PlanCache(root=tmp_path)
        cold = SushiRuntime(
            chip_n=CHIP_N, sc_per_npe=SC, plan_cache=cache
        ).infer(network, trains)
        assert cache.misses == 1
        warm = SushiRuntime(
            chip_n=CHIP_N, sc_per_npe=SC, plan_cache=cache
        ).infer(network, trains)
        assert cache.hits == 1
        assert np.array_equal(cold.output_raster, warm.output_raster)
        assert cold.synaptic_ops == warm.synaptic_ops


class TestKindNamespacing:
    """Artifact-kind subdirectories plus legacy un-namespaced migration
    (issue 7 satellite)."""

    def test_plans_live_under_the_kind_subdirectory(self, tmp_path):
        from repro.ssnn import PLAN_KIND

        network, _ = make_workload(seed=30)
        cache = PlanCache(root=tmp_path)
        plan = cache.get_or_compile(network, CHIP_N, SC)
        expected = tmp_path / PLAN_KIND / f"{plan.fingerprint}.npz"
        assert expected.exists()
        assert cache.stats().entries == 1

    def test_legacy_unnamespaced_plan_still_readable(self, tmp_path):
        from repro.ssnn import PLAN_KIND

        network, _ = make_workload(seed=31)
        cache = PlanCache(root=tmp_path)
        plan = cache.get_or_compile(network, CHIP_N, SC)
        namespaced = tmp_path / PLAN_KIND / f"{plan.fingerprint}.npz"
        legacy = tmp_path / f"{plan.fingerprint}.npz"
        namespaced.rename(legacy)  # simulate a pre-namespacing cache dir

        warm = PlanCache(root=tmp_path)
        again = warm.get_or_compile(network, CHIP_N, SC)
        assert warm.hits == 1 and warm.misses == 0
        assert again.fingerprint == plan.fingerprint

    def test_trace_kind_ignores_legacy_plan_files(self, tmp_path):
        from repro.rsfq.trace import TRACE_KIND

        cache = PlanCache(root=tmp_path)
        (tmp_path / "deadbeef.npz").write_bytes(b"legacy plan bytes")
        assert cache.lookup("deadbeef") is not None  # plans migrate
        assert cache.lookup("deadbeef", kind=TRACE_KIND) is None

    def test_resolve_plan_cache_error_names_the_type(self):
        with pytest.raises(ConfigurationError, match="int: 17"):
            resolve_plan_cache(17)
