"""Property tests over the resource/power models and the explorer's
estimator registry.

Monotonicity is the load-bearing property of a design-space explorer:
if a bigger mesh could report fewer junctions or less power, Pareto
pruning would silently drop real trade-offs.  Hypothesis sweeps the
model inputs well beyond the paper's pinned sizes; the registry
round-trip covers every built-in estimator, including any added later
(the strategy draws from the live registry).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.explore import (
    EstimateContext,
    ExplorePoint,
    available_estimators,
    get_estimator,
)
from repro.resources import PowerModel, estimate_resources

mesh_sizes = st.integers(min_value=1, max_value=24)
sc_counts = st.integers(min_value=1, max_value=12)
strengths = st.integers(min_value=1, max_value=4)


@settings(max_examples=40, deadline=None)
@given(n=mesh_sizes, sc=sc_counts, strength=strengths)
def test_resources_monotone_in_mesh_size(n, sc, strength):
    small = estimate_resources(n, sc_per_npe=sc, max_strength=strength)
    large = estimate_resources(n + 1, sc_per_npe=sc,
                               max_strength=strength)
    assert large.total_jj > small.total_jj
    assert large.logic_jj > small.logic_jj
    assert large.total_area_mm2 > small.total_area_mm2
    assert large.npe_count == small.npe_count + 2


@settings(max_examples=40, deadline=None)
@given(n=mesh_sizes, sc=sc_counts)
def test_resources_monotone_in_sc_count(n, sc):
    assert estimate_resources(n, sc_per_npe=sc + 1).total_jj > \
        estimate_resources(n, sc_per_npe=sc).total_jj


@settings(max_examples=40, deadline=None)
@given(n=mesh_sizes, sc=sc_counts, strength=strengths)
def test_component_area_never_exceeds_die_area(n, sc, strength):
    r = estimate_resources(n, sc_per_npe=sc, max_strength=strength)
    assert 0.0 < r.component_area_mm2 <= r.total_area_mm2
    assert 0.0 < r.fill_factor <= 1.0


@settings(max_examples=40, deadline=None)
@given(n=mesh_sizes, sc=sc_counts,
       rate=st.floats(min_value=0.0, max_value=1e12,
                      allow_nan=False, allow_infinity=False))
def test_power_monotone_in_mesh_size(n, sc, rate):
    small = PowerModel(estimate_resources(n, sc_per_npe=sc))
    large = PowerModel(estimate_resources(n + 1, sc_per_npe=sc))
    assert large.static_mw > small.static_mw
    assert large.total_mw(rate) > small.total_mw(rate)


@settings(max_examples=30, deadline=None)
@given(
    name=st.sampled_from(available_estimators()),
    npe=st.sampled_from([2, 8, 16, 32, 64]),
    sc=st.integers(min_value=1, max_value=12),
    strength=strengths,
)
def test_registry_round_trip_every_builtin(name, npe, sc, strength):
    estimator = get_estimator(name)
    assert estimator.name == name
    point = ExplorePoint(npe, sc, min(4, npe // 2), "reordered")
    metrics = estimator.estimate(
        point, EstimateContext(max_strength=strength)
    )
    assert metrics, name
    for key, value in metrics.items():
        assert isinstance(key, str) and key, name
        assert isinstance(value, (int, float)), (name, key)
        assert value == value, (name, key)  # no NaNs
    # Pure: a second call reproduces the dict exactly.
    assert metrics == estimator.estimate(
        point, EstimateContext(max_strength=strength)
    )
