"""Tests for the resource, power and performance models and their
calibration against the paper's published anchors."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.neuro.npe import GateLevelNPE
from repro.neuro.weights import GateLevelWeightStructure
from repro.resources import (
    estimate_resources,
    histogram_area_um2,
    histogram_jj_count,
    npe_cell_histogram,
    sc_cell_histogram,
    weight_structure_histogram,
)
from repro.resources.cell_costs import (
    chip_logic_histogram,
    io_channel_histogram,
    merge_histograms,
    scale_histogram,
)
from repro.resources.floorplan import estimate_wiring
from repro.resources.performance import (
    PerformanceModel,
    mnist_synops_per_frame,
)
from repro.resources.power import PowerModel
from repro.rsfq.netlist import Netlist


class TestHistograms:
    def test_sc_histogram_matches_gate_level(self):
        """The cost model must describe the circuits we actually build."""
        net = Netlist("probe")
        from repro.neuro.state_controller import GateLevelStateController

        GateLevelStateController(net, "sc")
        built = {
            k: v for k, v in net.cell_histogram().items() if k != "Probe"
        }
        assert built == sc_cell_histogram()

    def test_npe_histogram_matches_gate_level(self):
        net = Netlist("probe")
        GateLevelNPE(net, "npe", n_sc=4, attach_driver=True)
        built = {
            k: v for k, v in net.cell_histogram().items() if k != "Probe"
        }
        expected = npe_cell_histogram(4, with_output_driver=True)
        # The gate-level NPE does not (yet) merge its read channels, so
        # compare everything except the read-path cells.
        for cell in ("SPL", "CB3", "NDRO", "TFFL", "TFFR", "SPL3"):
            assert built.get(cell, 0) >= expected.get(cell, 0) - 4

    def test_weight_structure_histogram_matches_gate_level(self):
        net = Netlist("probe")
        GateLevelWeightStructure(net, "xp", max_strength=3)
        built = {
            k: v for k, v in net.cell_histogram().items() if k != "Probe"
        }
        assert built == weight_structure_histogram(3)

    def test_merge_and_scale(self):
        merged = merge_histograms({"SPL": 1}, {"SPL": 2, "CB": 1})
        assert merged == {"SPL": 3, "CB": 1}
        assert scale_histogram({"SPL": 2}, 3) == {"SPL": 6}

    def test_jj_and_area_totals(self):
        hist = {"SPL": 2, "NDRO": 1}
        from repro.rsfq import library

        assert histogram_jj_count(hist) == (
            2 * library.SPL.JJ_COUNT + library.NDRO.JJ_COUNT
        )
        assert histogram_area_um2(hist) == pytest.approx(
            2 * library.SPL.AREA_UM2 + library.NDRO.AREA_UM2
        )

    def test_io_channels_scale_with_configuration(self):
        small = io_channel_histogram(2, 10, 1, with_weights=True)["DCSFQ"]
        weightless = io_channel_histogram(2, 10, 1, False)["DCSFQ"]
        assert small - weightless == 2 * 4 * 1  # din/rst per crosspoint

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            npe_cell_histogram(0)
        with pytest.raises(ConfigurationError):
            weight_structure_histogram(0)
        with pytest.raises(ConfigurationError):
            scale_histogram({"SPL": 1}, -1)


class TestResourceCalibration:
    """The paper's published anchor points (Table 2 and section 6.3)."""

    def test_table2_total_jj(self):
        r = estimate_resources(4, with_weights=True, max_strength=4)
        assert r.total_jj == pytest.approx(45_542, rel=0.05)

    def test_table2_wiring_logic_split(self):
        r = estimate_resources(4, with_weights=True, max_strength=4)
        assert r.wiring_jj == pytest.approx(31_026, rel=0.05)
        assert r.logic_jj == pytest.approx(14_516, rel=0.05)
        assert r.wiring_fraction == pytest.approx(0.6813, abs=0.03)

    def test_table2_area(self):
        r = estimate_resources(4, with_weights=True, max_strength=4)
        assert r.total_area_mm2 == pytest.approx(44.73, rel=0.05)

    def test_peak_config_jj_and_area(self):
        r = estimate_resources(16, with_weights=False)
        assert r.total_jj == pytest.approx(99_982, rel=0.02)
        assert r.total_area_mm2 == pytest.approx(103.75, rel=0.05)

    def test_scaling_tracks_linear_reference(self):
        """Fig. 13: growth tracks (slightly off) the linear reference."""
        base = estimate_resources(1, with_weights=False)
        for n in (2, 4, 8, 16):
            r = estimate_resources(n, with_weights=False)
            linear = base.total_jj * n
            assert 0.7 * linear <= r.total_jj <= 1.5 * linear

    def test_wiring_fraction_grows_with_scale(self):
        """Beyond the fixed pad-ring overhead (which dominates the tiny
        1x1 chip), the wiring share rises with mesh size."""
        fractions = [
            estimate_resources(n, with_weights=False).wiring_fraction
            for n in (2, 4, 8, 16)
        ]
        assert fractions == sorted(fractions)

    def test_fabricated_config_fits_process_limit(self):
        """The Nb03 process supports ~1e4 JJs on a 5x5 mm chip (section
        5.3); the fabricated 2-NPE configuration must fit."""
        r = estimate_resources(1, with_weights=False)
        assert r.total_jj < 10_000

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            estimate_resources(0)
        with pytest.raises(ConfigurationError):
            estimate_wiring(1, logic_jj=0)
        with pytest.raises(ConfigurationError):
            estimate_wiring(1, logic_jj=100, config_channels=-1)


class TestAreaReconciliation:
    """``total_area_mm2`` (density-calibrated die area) vs the stored
    ``logic_area_mm2 + wiring_area_mm2`` cell-footprint split.

    The two are *documented as divergent*: the paper-anchored JJ
    density folds routing channels, bias rails, moats and floorplan
    white space into the per-JJ figure, so the die area must always
    exceed the sum of the placed-cell footprints.  The ratio
    (``fill_factor``) is the regression handle: a change to either
    model that flips the inequality or drifts the band is a real
    semantics change, not noise.
    """

    SWEEP = (1, 2, 4, 8, 16)

    def test_component_area_is_the_stored_split(self):
        r = estimate_resources(4, with_weights=True, max_strength=4)
        assert r.component_area_mm2 == pytest.approx(
            r.logic_area_mm2 + r.wiring_area_mm2
        )

    def test_die_area_always_exceeds_component_area(self):
        for n in self.SWEEP:
            for with_weights in (True, False):
                r = estimate_resources(n, with_weights=with_weights)
                assert 0.0 < r.component_area_mm2 < r.total_area_mm2, n

    def test_fill_factor_band_is_stable(self):
        """Placed cells fill 55-80% of the density-derived die across
        the paper's sweep; drifting out of the band means one of the
        area models moved."""
        for n in self.SWEEP:
            r = estimate_resources(n, with_weights=True,
                                   max_strength=4)
            assert 0.55 <= r.fill_factor <= 0.80, (n, r.fill_factor)

    def test_fill_factor_grows_with_configurable_scale(self):
        """Bigger configurable meshes are NDRO-dense (many JJs per unit
        cell area), so the cell footprints close in on the die area."""
        factors = [
            estimate_resources(n, with_weights=True,
                               max_strength=4).fill_factor
            for n in self.SWEEP
        ]
        assert factors == sorted(factors)

    def test_anchored_die_area_is_unchanged(self):
        """The reconciliation must not move the paper anchor: the die
        area stays the density product (Table 2's 44.73 mm2 check in
        TestResourceCalibration depends on it)."""
        r = estimate_resources(4, with_weights=True, max_strength=4)
        from repro.resources.floorplan import AREA_PER_JJ_MM2

        assert r.total_area_mm2 == pytest.approx(
            r.total_jj * AREA_PER_JJ_MM2
        )


class TestPowerModel:
    def test_peak_power_matches_paper(self):
        model = PowerModel.for_mesh(16, with_weights=False)
        sops = PerformanceModel(16).peak_sops()
        assert model.total_mw(sops) == pytest.approx(41.87, rel=0.02)

    def test_static_dominates_dynamic(self):
        model = PowerModel.for_mesh(4)
        assert model.dynamic_mw(1e12) < 0.01 * model.static_mw

    def test_power_grows_with_scale(self):
        powers = [
            PowerModel.for_mesh(n, with_weights=False).static_mw
            for n in (1, 2, 4, 8, 16)
        ]
        assert powers == sorted(powers)

    def test_negative_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            PowerModel.for_mesh(1).dynamic_mw(-1.0)


class TestPerformanceModel:
    def test_peak_gsops_matches_paper(self):
        assert PerformanceModel(16).peak_gsops() == pytest.approx(
            1355.0, rel=0.01
        )

    def test_paper_speedup_over_truenorth(self):
        """SUSHI's peak is 23x TrueNorth's 58 GSOPS."""
        ratio = PerformanceModel(16).peak_gsops() / 58.0
        assert ratio == pytest.approx(23.4, abs=1.0)

    def test_power_efficiency_matches_paper(self):
        eff = PerformanceModel(16).power_efficiency_gsops_per_w(
            with_weights=False
        )
        assert eff == pytest.approx(32_366, rel=0.02)

    def test_efficiency_ratios_over_baselines(self):
        """81x TrueNorth (400 GSOPS/W), 50x Tianjic (649 GSOPS/W)."""
        eff = PerformanceModel(16).power_efficiency_gsops_per_w(
            with_weights=False
        )
        assert eff / 400.0 == pytest.approx(81, abs=3)
        assert eff / 649.0 == pytest.approx(50, abs=2)

    def test_delay_share_endpoints(self):
        """Section 6.3A: ~6% at 1x1, ~53% at 16x16."""
        assert PerformanceModel(1).transmission_delay_share() == pytest.approx(
            0.06, abs=0.005
        )
        assert PerformanceModel(16).transmission_delay_share() == pytest.approx(
            0.53, abs=0.01
        )

    def test_delay_share_monotone(self):
        shares = [
            PerformanceModel(n).transmission_delay_share()
            for n in (1, 2, 4, 8, 16)
        ]
        assert shares == sorted(shares)

    def test_fps_matches_paper(self):
        """Section 6.3: up to 2.61e5 FPS on the MNIST network."""
        fps = PerformanceModel(16).fps(
            mnist_synops_per_frame(), reload_fraction=0.2, utilisation=0.765
        )
        assert fps == pytest.approx(2.61e5, rel=0.02)

    def test_performance_grows_with_npes(self):
        gsops = [PerformanceModel(n).peak_gsops() for n in (1, 2, 4, 8, 16)]
        assert gsops == sorted(gsops)

    def test_sublinear_efficiency(self):
        """Doubling NPEs less than doubles throughput (wiring penalty)."""
        assert (
            PerformanceModel(16).peak_gsops()
            < 2 * PerformanceModel(8).peak_gsops()
        )

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PerformanceModel(0)
        with pytest.raises(ConfigurationError):
            PerformanceModel(1).fps(0)
        with pytest.raises(ConfigurationError):
            PerformanceModel(1).fps(100, reload_fraction=1.0)
        with pytest.raises(ConfigurationError):
            PerformanceModel(1).fps(100, utilisation=0.0)

    @given(n=st.integers(min_value=1, max_value=64))
    @settings(max_examples=30, deadline=None)
    def test_model_is_well_behaved_at_any_scale(self, n):
        model = PerformanceModel(n)
        assert 0 < model.efficiency() <= 1.0
        assert 0 <= model.transmission_delay_share() < 1.0
        assert model.peak_sops() > 0


class TestBaselines:
    def test_table4_specs(self):
        from repro.baselines import TIANJIC, TRUENORTH

        assert TRUENORTH.gsops == 58.0
        assert TRUENORTH.gsops_per_w == 400.0
        assert TRUENORTH.area_mm2 == 430.0
        assert TIANJIC.gsops_per_w == 649.0
        assert TIANJIC.area_mm2 == 14.44
        assert TIANJIC.clock_mhz == 300.0
        assert TRUENORTH.is_async and not TIANJIC.is_async

    def test_analytical_sops(self):
        from repro.baselines import analytical_sops

        assert analytical_sops(10.0, 1e6) == 1e7
        with pytest.raises(ConfigurationError):
            analytical_sops(-1.0, 10)

    def test_peak_power_efficiency_fallback(self):
        from repro.baselines import TRUENORTH
        from repro.baselines.specs import ChipSpec

        assert TRUENORTH.peak_power_efficiency() == 400.0
        spec = ChipSpec(
            name="x", model="SNN", memory="-", technology="-",
            clock_mhz=None, area_mm2=1.0, power_mw=(100.0, 100.0),
            gsops=10.0, gsops_per_w=None,
        )
        assert spec.peak_power_efficiency() == pytest.approx(100.0)
