"""Tests for the subcommand layer of ``python -m repro``.

Companion to ``tests/harness/test_cli.py`` (which covers the
experiment-runner path): this file pins the dispatcher contract --
every registered subcommand answers ``--help`` with exit code 0,
unknown input prints usage and exits 2, and ``main`` never lets
``SystemExit`` escape.
"""

import pytest

from repro.__main__ import SUBCOMMANDS, main, usage


class TestSubcommandDispatch:
    @pytest.mark.parametrize("name", sorted(SUBCOMMANDS))
    def test_every_subcommand_answers_help(self, name, capsys):
        # argparse raises SystemExit(0) on --help; main must swallow it
        # and return the code instead.
        assert main([name, "--help"]) == 0
        out = capsys.readouterr().out
        assert "usage" in out.lower()

    def test_top_level_help(self, capsys):
        assert main(["--help"]) == 0
        out = capsys.readouterr().out
        for name in SUBCOMMANDS:
            assert name in out

    def test_list_includes_subcommands(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in SUBCOMMANDS:
            assert name in out

    def test_unknown_subcommand_prints_usage_and_exits_2(self, capsys):
        code = main(["definitely-not-a-command"])
        captured = capsys.readouterr()
        assert code == 2
        assert "usage: python -m repro" in captured.err
        assert "unknown experiments" in captured.err

    def test_never_raises_system_exit(self, capsys):
        # Bad flags on a subcommand: argparse exits 2; main returns it.
        code = main(["loadtest", "--no-such-flag"])
        assert code == 2
        capsys.readouterr()

    def test_usage_lists_every_subcommand(self, capsys):
        usage()
        out = capsys.readouterr().out
        for name, (_, help_text) in SUBCOMMANDS.items():
            assert name in out
            assert help_text in out

    def test_registry_contract(self):
        assert set(SUBCOMMANDS) >= {"chaos", "serve", "loadtest",
                                    "explore"}
        for name, (dispatcher, help_text) in SUBCOMMANDS.items():
            assert callable(dispatcher), name
            assert help_text
