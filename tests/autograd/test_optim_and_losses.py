"""Tests for losses and optimisers: correctness and convergence."""

import numpy as np
import pytest

from repro.autograd import (
    SGD,
    Adam,
    Tensor,
    cross_entropy,
    log_softmax,
    mse_loss,
    one_hot,
    softmax,
)
from repro.errors import ConfigurationError, TrainingError


class TestLosses:
    def test_softmax_rows_sum_to_one(self):
        logits = Tensor.randn(5, 3, seed=0)
        probs = softmax(logits)
        np.testing.assert_allclose(probs.data.sum(axis=1), np.ones(5))

    def test_softmax_stable_for_large_logits(self):
        logits = Tensor.from_array([[1000.0, 1001.0, 999.0]])
        probs = softmax(logits)
        assert np.isfinite(probs.data).all()

    def test_log_softmax_matches_log_of_softmax(self):
        logits = Tensor.randn(4, 6, seed=1)
        np.testing.assert_allclose(
            log_softmax(logits).data, np.log(softmax(logits).data), atol=1e-12
        )

    def test_one_hot(self):
        t = one_hot(np.array([0, 2, 1]), 3)
        np.testing.assert_array_equal(
            t.data, [[1, 0, 0], [0, 0, 1], [0, 1, 0]]
        )

    def test_one_hot_rejects_bad_labels(self):
        with pytest.raises(TrainingError):
            one_hot(np.array([3]), 3)
        with pytest.raises(TrainingError):
            one_hot(np.array([[0, 1]]), 2)

    def test_cross_entropy_perfect_prediction_near_zero(self):
        logits = Tensor.from_array([[100.0, 0.0], [0.0, 100.0]])
        loss = cross_entropy(logits, np.array([0, 1]))
        assert loss.item() < 1e-6

    def test_cross_entropy_uniform_is_log_classes(self):
        logits = Tensor.zeros(2, 4)
        loss = cross_entropy(logits, np.array([0, 3]))
        np.testing.assert_allclose(loss.item(), np.log(4), rtol=1e-6)

    def test_cross_entropy_gradient_direction(self):
        logits = Tensor.zeros(1, 3, requires_grad=True)
        cross_entropy(logits, np.array([1])).backward()
        # Gradient pushes the true-class logit up, others down.
        assert logits.grad[0, 1] < 0
        assert logits.grad[0, 0] > 0 and logits.grad[0, 2] > 0

    def test_mse_loss(self):
        pred = Tensor.from_array([[1.0, 2.0]])
        target = Tensor.from_array([[0.0, 0.0]])
        np.testing.assert_allclose(mse_loss(pred, target).item(), 2.5)


class TestOptimizers:
    def quadratic(self, optimizer_cls, **kwargs):
        """Minimise ||x - 3||^2 and return the final x."""
        x = Tensor.from_array([0.0], requires_grad=True)
        opt = optimizer_cls([x], **kwargs)
        for _ in range(300):
            loss = ((x - 3.0) * (x - 3.0)).sum()
            opt.zero_grad()
            loss.backward()
            opt.step()
        return x.data[0]

    def test_sgd_converges(self):
        assert abs(self.quadratic(SGD, lr=0.05) - 3.0) < 1e-3

    def test_sgd_momentum_converges(self):
        assert abs(self.quadratic(SGD, lr=0.02, momentum=0.9) - 3.0) < 1e-3

    def test_adam_converges(self):
        assert abs(self.quadratic(Adam, lr=0.1) - 3.0) < 1e-3

    def test_step_without_backward_rejected(self):
        x = Tensor.from_array([0.0], requires_grad=True)
        opt = SGD([x], lr=0.1)
        with pytest.raises(TrainingError):
            opt.step()

    def test_constructor_validation(self):
        x = Tensor.from_array([0.0], requires_grad=True)
        with pytest.raises(ConfigurationError):
            SGD([], lr=0.1)
        with pytest.raises(ConfigurationError):
            SGD([x], lr=-1.0)
        with pytest.raises(ConfigurationError):
            SGD([x], lr=0.1, momentum=1.5)
        with pytest.raises(ConfigurationError):
            Adam([x], lr=0.1, betas=(1.0, 0.9))
        with pytest.raises(ConfigurationError):
            SGD([Tensor.from_array([0.0])], lr=0.1)

    def test_zero_grad_clears_all(self):
        x = Tensor.from_array([1.0], requires_grad=True)
        opt = Adam([x])
        (x * 2).backward()
        opt.zero_grad()
        assert x.grad is None

    def test_adam_bias_correction_first_step(self):
        """After one step with gradient g, Adam moves by ~lr * sign(g)."""
        x = Tensor.from_array([0.0], requires_grad=True)
        opt = Adam([x], lr=0.1)
        (x * 5.0).sum().backward()
        opt.step()
        np.testing.assert_allclose(x.data, [-0.1], atol=1e-6)
