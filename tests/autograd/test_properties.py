"""Property-based tests for the autodiff engine: broadcasting laws and
gradient sum rules over random shapes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autograd import Tensor

shapes = st.sampled_from([
    (1,), (3,), (2, 3), (1, 3), (2, 1), (2, 3, 4), (1, 1), (4, 1, 3),
])


def broadcastable(a, b):
    try:
        np.broadcast_shapes(a, b)
        return True
    except ValueError:
        return False


class TestBroadcastGradients:
    @given(shape_a=shapes, shape_b=shapes, seed=st.integers(0, 10_000))
    @settings(max_examples=60, deadline=None)
    def test_add_gradient_shapes_match_operands(self, shape_a, shape_b, seed):
        if not broadcastable(shape_a, shape_b):
            return
        rng = np.random.default_rng(seed)
        a = Tensor(rng.standard_normal(shape_a), requires_grad=True)
        b = Tensor(rng.standard_normal(shape_b), requires_grad=True)
        (a + b).sum().backward()
        assert a.grad.shape == shape_a
        assert b.grad.shape == shape_b
        # d(sum(a+b))/da_i = number of broadcast copies of a_i.
        out_size = int(np.prod(np.broadcast_shapes(shape_a, shape_b)))
        assert a.grad.sum() == pytest.approx(out_size)
        assert b.grad.sum() == pytest.approx(out_size)

    @given(shape_a=shapes, shape_b=shapes, seed=st.integers(0, 10_000))
    @settings(max_examples=60, deadline=None)
    def test_mul_gradient_is_broadcast_partner(self, shape_a, shape_b, seed):
        if not broadcastable(shape_a, shape_b):
            return
        rng = np.random.default_rng(seed)
        a = Tensor(rng.standard_normal(shape_a), requires_grad=True)
        b = Tensor(rng.standard_normal(shape_b), requires_grad=True)
        (a * b).sum().backward()
        out_shape = np.broadcast_shapes(shape_a, shape_b)
        expected_a = np.broadcast_to(b.data, out_shape)
        # Sum expected_a back down to a's shape.
        reduced = expected_a
        while reduced.ndim > len(shape_a):
            reduced = reduced.sum(axis=0)
        for axis, dim in enumerate(shape_a):
            if dim == 1 and reduced.shape[axis] != 1:
                reduced = reduced.sum(axis=axis, keepdims=True)
        np.testing.assert_allclose(a.grad, reduced, rtol=1e-10)

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_linearity_of_gradients(self, seed):
        """grad(f + g) == grad(f) + grad(g)."""
        rng = np.random.default_rng(seed)
        x_data = rng.standard_normal((3, 3))

        def grad_of(fn):
            x = Tensor(x_data.copy(), requires_grad=True)
            fn(x).backward()
            return x.grad

        f = lambda x: (x * 2.0).sum()
        g = lambda x: (x * x).sum()
        combined = lambda x: (x * 2.0).sum() + (x * x).sum()
        np.testing.assert_allclose(
            grad_of(combined), grad_of(f) + grad_of(g), rtol=1e-10
        )

    @given(seed=st.integers(0, 10_000),
           rows=st.integers(1, 5), cols=st.integers(1, 5))
    @settings(max_examples=30, deadline=None)
    def test_sum_then_mean_consistency(self, seed, rows, cols):
        rng = np.random.default_rng(seed)
        x = Tensor(rng.standard_normal((rows, cols)), requires_grad=True)
        x.mean().backward()
        np.testing.assert_allclose(
            x.grad, np.full((rows, cols), 1.0 / (rows * cols)), rtol=1e-10
        )

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_chain_rule_through_reshape(self, seed):
        rng = np.random.default_rng(seed)
        x = Tensor(rng.standard_normal((2, 6)), requires_grad=True)
        y = (x.reshape(3, 4) * 2.0).sum()
        y.backward()
        np.testing.assert_allclose(x.grad, np.full((2, 6), 2.0))
