"""Tests for the extended tensor ops: indexing, max/var, concat/stack,
permute and unfold (gradient-checked)."""

import numpy as np
import pytest

from repro.autograd import Tensor, concatenate, stack
from repro.errors import TrainingError

from tests.autograd.test_tensor import check_gradient


class TestGetitem:
    def test_slice_forward_and_backward(self):
        x = Tensor.randn(4, 5, requires_grad=True, seed=0)
        check_gradient(lambda: x[1:3].sum(), x)
        y = x[1:3]
        assert y.shape == (2, 5)

    def test_fancy_index_accumulates_duplicates(self):
        x = Tensor.from_array([1.0, 2.0, 3.0], requires_grad=True)
        (x[np.array([0, 0, 2])]).sum().backward()
        np.testing.assert_array_equal(x.grad, [2.0, 0.0, 1.0])

    def test_single_element(self):
        x = Tensor.from_array([[1.0, 2.0]], requires_grad=True)
        x[0, 1].backward()
        np.testing.assert_array_equal(x.grad, [[0.0, 1.0]])


class TestMaxVar:
    def test_max_global(self):
        x = Tensor.from_array([1.0, 5.0, 3.0], requires_grad=True)
        x.max().backward()
        np.testing.assert_array_equal(x.grad, [0.0, 1.0, 0.0])

    def test_max_axis_gradcheck(self):
        x = Tensor.randn(3, 4, requires_grad=True, seed=1)
        x.data += np.arange(12).reshape(3, 4) * 0.1  # break ties
        check_gradient(lambda: x.max(axis=1).sum(), x)

    def test_max_splits_gradient_across_ties(self):
        x = Tensor.from_array([2.0, 2.0, 1.0], requires_grad=True)
        x.max().backward()
        np.testing.assert_allclose(x.grad, [0.5, 0.5, 0.0])

    def test_var_matches_numpy(self):
        x = Tensor.randn(5, 6, seed=2)
        np.testing.assert_allclose(x.var().item(), x.data.var(), rtol=1e-10)
        np.testing.assert_allclose(
            x.var(axis=0).data, x.data.var(axis=0), rtol=1e-10
        )

    def test_var_gradcheck(self):
        x = Tensor.randn(3, 4, requires_grad=True, seed=3)
        check_gradient(lambda: x.var(axis=1).sum(), x)


class TestConcatStack:
    def test_concatenate_forward(self):
        a = Tensor.from_array([[1.0, 2.0]])
        b = Tensor.from_array([[3.0, 4.0], [5.0, 6.0]])
        out = concatenate([a, b], axis=0)
        assert out.shape == (3, 2)

    def test_concatenate_gradient_splits(self):
        a = Tensor.randn(2, 3, requires_grad=True, seed=4)
        b = Tensor.randn(1, 3, requires_grad=True, seed=5)
        check_gradient(lambda: (concatenate([a, b], axis=0) ** 2).sum(),
                       a, b)

    def test_concatenate_axis1(self):
        a = Tensor.randn(2, 2, requires_grad=True, seed=6)
        b = Tensor.randn(2, 3, requires_grad=True, seed=7)
        check_gradient(lambda: concatenate([a, b], axis=1).sum(), a, b)

    def test_stack_adds_axis(self):
        a = Tensor.from_array([1.0, 2.0])
        b = Tensor.from_array([3.0, 4.0])
        out = stack([a, b], axis=0)
        assert out.shape == (2, 2)
        np.testing.assert_array_equal(out.data, [[1, 2], [3, 4]])

    def test_stack_gradient(self):
        a = Tensor.from_array([1.0, 2.0], requires_grad=True)
        b = Tensor.from_array([3.0, 4.0], requires_grad=True)
        (stack([a, b]) * 2).sum().backward()
        np.testing.assert_array_equal(a.grad, [2.0, 2.0])
        np.testing.assert_array_equal(b.grad, [2.0, 2.0])

    def test_empty_rejected(self):
        with pytest.raises(TrainingError):
            concatenate([])
        with pytest.raises(TrainingError):
            stack([])

    def test_accepts_raw_arrays(self):
        out = concatenate([np.ones(2), np.zeros(3)])
        assert out.shape == (5,)
