"""Tests for the reverse-mode autodiff engine, including numeric gradient
checks on every differentiable op."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autograd import Tensor, no_grad
from repro.errors import TrainingError


def numeric_grad(fn, tensor, eps=1e-6):
    """Central-difference gradient of scalar ``fn()`` w.r.t. ``tensor``."""
    grad = np.zeros_like(tensor.data)
    flat = tensor.data.reshape(-1)
    out = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        up = fn().item()
        flat[i] = orig - eps
        down = fn().item()
        flat[i] = orig
        out[i] = (up - down) / (2 * eps)
    return grad


def check_gradient(build, *tensors, tol=1e-5):
    """Backward gradients must match numeric differentiation."""
    for t in tensors:
        t.zero_grad()
    loss = build()
    loss.backward()
    for t in tensors:
        expected = numeric_grad(build, t)
        assert t.grad is not None
        np.testing.assert_allclose(t.grad, expected, rtol=tol, atol=tol)


class TestGradients:
    def setup_method(self):
        self.a = Tensor.randn(3, 4, requires_grad=True, seed=1)
        self.b = Tensor.randn(3, 4, requires_grad=True, seed=2)

    def test_add(self):
        check_gradient(lambda: (self.a + self.b).sum(), self.a, self.b)

    def test_sub(self):
        check_gradient(lambda: (self.a - self.b).sum(), self.a, self.b)

    def test_mul(self):
        check_gradient(lambda: (self.a * self.b).sum(), self.a, self.b)

    def test_div(self):
        denom = Tensor(np.abs(self.b.data) + 1.0, requires_grad=True)
        check_gradient(lambda: (self.a / denom).sum(), self.a, denom)

    def test_pow(self):
        base = Tensor(np.abs(self.a.data) + 0.5, requires_grad=True)
        check_gradient(lambda: (base ** 3).sum(), base)

    def test_matmul(self):
        w = Tensor.randn(4, 2, requires_grad=True, seed=3)
        check_gradient(lambda: (self.a @ w).sum(), self.a, w)

    def test_broadcast_add_bias(self):
        bias = Tensor.randn(4, requires_grad=True, seed=4)
        check_gradient(lambda: (self.a + bias).sum(), self.a, bias)
        assert bias.grad.shape == (4,)

    def test_broadcast_mul_scalar_tensor(self):
        s = Tensor(np.array(2.5), requires_grad=True)
        check_gradient(lambda: (self.a * s).sum(), self.a, s)

    def test_mean_axis(self):
        check_gradient(lambda: self.a.mean(axis=0).sum(), self.a)
        check_gradient(lambda: self.a.mean(), self.a)

    def test_sum_keepdims(self):
        check_gradient(lambda: (self.a.sum(axis=1, keepdims=True) * 2).sum(),
                       self.a)

    def test_reshape_transpose(self):
        check_gradient(lambda: (self.a.reshape(4, 3).T * self.b).sum(),
                       self.a, self.b)

    def test_relu(self):
        check_gradient(lambda: self.a.relu().sum(), self.a)

    def test_sigmoid(self):
        check_gradient(lambda: self.a.sigmoid().sum(), self.a)

    def test_exp_log(self):
        pos = Tensor(np.abs(self.a.data) + 0.5, requires_grad=True)
        check_gradient(lambda: pos.log().sum(), pos)
        check_gradient(lambda: (self.a.exp()).sum(), self.a)

    def test_abs(self):
        shifted = Tensor(self.a.data + 0.05, requires_grad=True)
        check_gradient(lambda: shifted.abs().sum(), shifted)

    def test_chained_expression(self):
        w = Tensor.randn(4, 4, requires_grad=True, seed=5)
        check_gradient(
            lambda: ((self.a @ w).relu() * self.b).mean(), self.a, w, self.b
        )

    def test_reused_tensor_accumulates(self):
        x = Tensor.from_array([2.0], requires_grad=True)
        y = x * x + x  # dy/dx = 2x + 1 = 5
        y.backward()
        np.testing.assert_allclose(x.grad, [5.0])


class TestSTEAndSurrogate:
    def test_ste_sign_forward_and_backward(self):
        x = Tensor.from_array([-2.0, -0.5, 0.0, 0.5, 2.0],
                              requires_grad=True)
        y = x.ste_sign()
        np.testing.assert_array_equal(y.data, [-1, -1, 1, 1, 1])
        y.sum().backward()
        np.testing.assert_array_equal(x.grad, [0, 1, 1, 1, 0])

    def test_heaviside_surrogate(self):
        from repro.autograd import heaviside

        x = Tensor.from_array([-1.0, 0.0, 1.0], requires_grad=True)
        s = heaviside(x)
        np.testing.assert_array_equal(s.data, [0, 1, 1])
        s.sum().backward()
        assert (x.grad > 0).all()  # surrogate gradient is everywhere positive

    def test_clip_gradient_mask(self):
        x = Tensor.from_array([-2.0, 0.5, 2.0], requires_grad=True)
        x.clip(-1.0, 1.0).sum().backward()
        np.testing.assert_array_equal(x.grad, [0, 1, 0])


class TestGraphMechanics:
    def test_backward_on_non_grad_tensor_rejected(self):
        x = Tensor.from_array([1.0])
        with pytest.raises(TrainingError):
            x.backward()

    def test_backward_on_vector_needs_seed_gradient(self):
        x = Tensor.from_array([1.0, 2.0], requires_grad=True)
        with pytest.raises(TrainingError):
            (x * 2).backward()
        (x * 2).backward(np.ones(2))
        np.testing.assert_allclose(x.grad, [2.0, 2.0])

    def test_no_grad_suppresses_graph(self):
        x = Tensor.from_array([1.0], requires_grad=True)
        with no_grad():
            y = x * 3
        assert not y.requires_grad

    def test_detach_breaks_graph(self):
        x = Tensor.from_array([1.0], requires_grad=True)
        y = (x * 2).detach() * 3
        assert not y.requires_grad

    def test_zero_grad(self):
        x = Tensor.from_array([1.0], requires_grad=True)
        (x * 2).backward()
        x.zero_grad()
        assert x.grad is None

    def test_repeated_backward_accumulates(self):
        x = Tensor.from_array([1.0], requires_grad=True)
        (x * 2).backward()
        (x * 3).backward()
        np.testing.assert_allclose(x.grad, [5.0])

    def test_nan_detection(self):
        x = Tensor.from_array([np.inf], requires_grad=True)
        with pytest.raises(TrainingError):
            (x * 1).backward()

    @given(
        rows=st.integers(min_value=1, max_value=4),
        cols=st.integers(min_value=1, max_value=4),
        inner=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=25, deadline=None)
    def test_matmul_gradient_shapes(self, rows, cols, inner):
        a = Tensor.randn(rows, inner, requires_grad=True, seed=0)
        b = Tensor.randn(inner, cols, requires_grad=True, seed=1)
        (a @ b).sum().backward()
        assert a.grad.shape == (rows, inner)
        assert b.grad.shape == (inner, cols)
