"""Unit tests for :class:`repro.cluster.node.PoolNode`.

The node's contract: bit-identical answers in every reachable state,
:class:`NodeUnavailableError` (never wrong data) in every unreachable
one, and a lifecycle the router can trust -- draining stops new work,
killing loses in-flight answers loudly, retiring is idempotent.
"""

import threading
import time

import numpy as np
import pytest

from repro.cluster import (
    ACTIVE,
    DEAD,
    DRAINING,
    RETIRED,
    NodeUnavailableError,
    PoolNode,
)
from repro.errors import ConfigurationError
from repro.harness import random_binarized_network
from repro.serve import CircuitBreaker
from repro.ssnn import compile_network

CHIP_N = 4
SC = 8


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(41)
    network = random_binarized_network(rng, sizes=(11, 8, 5), sc_per_npe=SC)
    compiled = compile_network(network, CHIP_N, SC)
    rows = (np.random.default_rng(11).random((18, 11)) < 0.4)
    return compiled, rows.astype(np.float64)


class TestExecution:
    def test_serial_node_is_bit_identical(self, workload):
        compiled, rows = workload
        want = compiled.forward_rows(rows)
        with PoolNode("n0", compiled, workers=0) as node:
            got = node.infer_rows(rows)
            assert np.array_equal(got[0], want[0])
            assert got[1] == want[1] and got[2] == want[2]
            stats = node.stats()
            assert stats.requests == 1 and stats.completed == 1

    def test_pool_node_is_bit_identical(self, workload):
        compiled, rows = workload
        want = compiled.forward_rows(rows)
        with PoolNode("n0", compiled, workers=2) as node:
            if node._pool is None:
                pytest.skip("pool unavailable on this platform")
            got = node.infer_rows(rows)
            assert np.array_equal(got[0], want[0])
            assert got[1] == want[1] and got[2] == want[2]
            assert node.alive_workers() == 2

    def test_open_breaker_falls_back_serially(self, workload):
        compiled, rows = workload
        want = compiled.forward_rows(rows)
        breaker = CircuitBreaker(failure_threshold=1,
                                 reset_timeout_s=300.0)
        with PoolNode("n0", compiled, workers=2,
                      breaker=breaker) as node:
            breaker.record_failure()
            assert breaker.state == "open"
            assert not node.healthy  # sheds affinity...
            assert node.dispatchable  # ...but still serves correctly
            got = node.infer_rows(rows)
            assert np.array_equal(got[0], want[0])

    def test_dead_node_raises_without_consuming(self, workload):
        compiled, rows = workload
        node = PoolNode("n0", compiled, workers=0)
        node.kill()
        assert node.state == DEAD
        with pytest.raises(NodeUnavailableError):
            node.infer_rows(rows)
        # Rejected at the door: the request never entered the node, so
        # node metrics stay untouched (the router owns the retry story).
        assert node.stats().requests == 0
        assert node.stats().failed == 0
        node.retire()  # reap; state stays dead
        assert node.state == DEAD

    def test_partitioned_node_raises_and_heals(self, workload):
        compiled, rows = workload
        with PoolNode("n0", compiled, workers=0) as node:
            node.partition()
            assert not node.probe()
            assert not node.dispatchable
            with pytest.raises(NodeUnavailableError):
                node.infer_rows(rows)
            node.heal_partition()
            assert node.probe()
            want = compiled.forward_rows(rows)
            assert np.array_equal(node.infer_rows(rows)[0], want[0])

    def test_mid_call_death_loses_the_answer_loudly(self, workload):
        """A node killed while executing must raise -- the answer died
        with the host -- so the router can re-dispatch."""
        compiled, rows = workload
        node = PoolNode("n0", compiled, workers=0)
        original = node._forward

        def dying_forward(batch_rows):
            node.kill()
            return original(batch_rows)

        node._forward = dying_forward
        with pytest.raises(NodeUnavailableError):
            node.infer_rows(rows)
        assert node.load() == 0  # inflight fully unwound
        # Accepted then lost: this one DOES count as a node failure.
        assert node.stats().requests == 1
        assert node.stats().failed == 1
        node.retire()


class TestLifecycle:
    def test_drain_blocks_until_inflight_resolves(self, workload):
        compiled, rows = workload
        node = PoolNode("n0", compiled, workers=0)
        release = threading.Event()
        original = node._forward

        def held_forward(batch_rows):
            release.wait(10.0)
            return original(batch_rows)

        node._forward = held_forward
        worker = threading.Thread(
            target=lambda: node.infer_rows(rows)
        )
        worker.start()
        deadline = time.monotonic() + 5.0
        while node.load() == 0 and time.monotonic() < deadline:
            time.sleep(0.005)
        assert node.load() == 1
        assert not node.drain(timeout=0.1)  # in-flight: can't settle
        assert node.state == DRAINING
        assert not node.dispatchable
        release.set()
        assert node.drain(timeout=10.0)
        worker.join(timeout=10.0)
        node.retire()
        assert node.state == RETIRED

    def test_drain_is_idempotent(self, workload):
        compiled, _ = workload
        node = PoolNode("n0", compiled, workers=0)
        assert node.drain(timeout=1.0)
        assert node.drain(timeout=1.0)
        assert node.state == DRAINING
        node.retire()
        node.retire()  # idempotent
        assert node.state == RETIRED

    def test_retired_node_rejects_work(self, workload):
        compiled, rows = workload
        node = PoolNode("n0", compiled, workers=0)
        node.retire()
        with pytest.raises(NodeUnavailableError):
            node.infer_rows(rows)
        assert not node.probe()

    def test_kill_sigkills_pool_workers(self, workload):
        compiled, _ = workload
        node = PoolNode("n0", compiled, workers=2)
        if node._pool is None:
            pytest.skip("pool unavailable on this platform")
        procs = list(node._pool._procs)
        node.kill()
        deadline = time.monotonic() + 10.0
        while (any(p.is_alive() for p in procs)
               and time.monotonic() < deadline):
            time.sleep(0.01)
        assert not any(p.is_alive() for p in procs)
        node.retire()

    def test_health_snapshot_schema(self, workload):
        compiled, _ = workload
        with PoolNode("n0", compiled, workers=0) as node:
            health = node.health()
            assert health["schema"] == "repro.cluster.node/v1"
            assert health["state"] == ACTIVE
            assert health["dispatchable"] and health["healthy"]
            assert health["breaker"]["state"] == "closed"

    def test_workers_validation(self, workload):
        compiled, _ = workload
        with pytest.raises(ConfigurationError):
            PoolNode("n0", compiled, workers=-1)
