"""Unit tests for the cluster autoscaler (fake clock, scripted gauges).

Every decision is a pure function of (gauges, streaks, cooldown clock,
cluster size), so the tests drive :meth:`Autoscaler.tick` explicitly
and assert the exact action trajectory -- hysteresis, cooldown, bounds
and the drain-before-retire scale-down path.
"""

import numpy as np
import pytest

from repro.cluster import (
    Autoscaler,
    AutoscalerConfig,
    ClusterRouter,
    PoolNode,
)
from repro.errors import ConfigurationError
from repro.harness import random_binarized_network
from repro.ssnn import compile_network


class StepClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture(scope="module")
def compiled():
    rng = np.random.default_rng(41)
    network = random_binarized_network(rng, sizes=(11, 8, 5), sc_per_npe=8)
    return compile_network(network, 4, 8)


@pytest.fixture()
def harness(compiled):
    router = ClusterRouter(compiled)
    seq = []

    def factory(node_id):
        seq.append(node_id)
        return PoolNode(node_id, compiled, workers=0)

    router.join(factory("seed"))
    clock = StepClock()
    config = AutoscalerConfig(
        min_nodes=1, max_nodes=4, hysteresis=2, cooldown_s=10.0,
        scale_up_queue_depth=8.0, scale_down_queue_depth=1.0,
        scale_up_latency_ms=250.0, scale_down_latency_ms=50.0,
    )
    scaler = Autoscaler(router, factory, config=config, clock=clock)
    yield router, scaler, clock
    router.shutdown()


HOT = {"queue_depth": 20.0, "latency_ms_p95": 400.0}
COLD = {"queue_depth": 0.0, "latency_ms_p95": 1.0}
MILD = {"queue_depth": 4.0, "latency_ms_p95": 100.0}


class TestHysteresis:
    def test_single_hot_tick_does_nothing(self, harness):
        router, scaler, clock = harness
        assert scaler.tick(**HOT) is None
        assert router.alive_count() == 1

    def test_two_hot_ticks_scale_up(self, harness):
        router, scaler, clock = harness
        assert scaler.tick(**HOT) is None
        assert scaler.tick(**HOT) == "scale-up"
        assert router.alive_count() == 2
        assert scaler.scale_ups == 1
        assert scaler.events[0]["action"] == "scale-up"
        assert scaler.events[0]["nodes_before"] == 1
        assert scaler.events[0]["nodes_after"] == 2

    def test_dead_band_resets_streaks(self, harness):
        router, scaler, clock = harness
        scaler.tick(**HOT)
        scaler.tick(**MILD)  # between thresholds: streak resets
        assert scaler.tick(**HOT) is None
        assert router.alive_count() == 1

    def test_latency_alone_triggers_up(self, harness):
        router, scaler, clock = harness
        gauges = {"queue_depth": 0.0, "latency_ms_p95": 400.0}
        scaler.tick(**gauges)
        assert scaler.tick(**gauges) == "scale-up"

    def test_scale_down_needs_both_gauges_cold(self, harness):
        router, scaler, clock = harness
        scaler.tick(**HOT)
        scaler.tick(**HOT)  # -> 2 nodes
        clock.advance(11.0)
        half_cold = {"queue_depth": 0.0, "latency_ms_p95": 100.0}
        scaler.tick(**half_cold)
        assert scaler.tick(**half_cold) is None  # latency not cold
        scaler.tick(**COLD)
        assert scaler.tick(**COLD) == "scale-down"


class TestCooldownAndBounds:
    def test_cooldown_blocks_consecutive_actions(self, harness):
        router, scaler, clock = harness
        scaler.tick(**HOT)
        scaler.tick(**HOT)  # action at t=0
        assert scaler.tick(**HOT) is None  # hysteresis satisfied but...
        assert scaler.tick(**HOT) is None  # ...cooldown holds
        assert router.alive_count() == 2
        clock.advance(10.0)
        assert scaler.tick(**HOT) == "scale-up"
        assert router.alive_count() == 3

    def test_max_nodes_is_a_ceiling(self, harness):
        router, scaler, clock = harness
        while router.alive_count() < 4:
            clock.advance(11.0)
            scaler.tick(**HOT)
            scaler.tick(**HOT)
        clock.advance(11.0)
        scaler.tick(**HOT)
        assert scaler.tick(**HOT) is None
        assert router.alive_count() == 4

    def test_min_nodes_is_a_floor(self, harness):
        router, scaler, clock = harness
        scaler.tick(**COLD)
        assert scaler.tick(**COLD) is None
        assert router.alive_count() == 1


class TestScaleDownSemantics:
    def test_scale_down_drains_and_retires_the_victim(self, harness):
        router, scaler, clock = harness
        scaler.tick(**HOT)
        scaler.tick(**HOT)
        added = [n for n in router.node_ids() if n != "seed"]
        assert len(added) == 1
        victim = router.node(added[0])
        clock.advance(11.0)
        scaler.tick(**COLD)
        assert scaler.tick(**COLD) == "scale-down"
        assert victim.state == "retired"
        assert router.node(victim.node_id) is None
        assert router.alive_count() == 1
        # The seed node survives (newest-id victim selection).
        assert router.node_ids() == ("seed",)

    def test_stats_trajectory(self, harness):
        router, scaler, clock = harness
        scaler.tick(**HOT)
        scaler.tick(**HOT)
        clock.advance(11.0)
        scaler.tick(**COLD)
        scaler.tick(**COLD)
        snap = scaler.stats()
        assert snap["schema"] == "repro.cluster.autoscaler/v1"
        assert snap["scale_ups"] == 1 and snap["scale_downs"] == 1
        assert [e["action"] for e in snap["events"]] == [
            "scale-up", "scale-down",
        ]
        assert snap["ticks"] == 4


class TestConfigValidation:
    def test_bounds(self):
        with pytest.raises(ConfigurationError):
            AutoscalerConfig(min_nodes=0)
        with pytest.raises(ConfigurationError):
            AutoscalerConfig(min_nodes=4, max_nodes=2)
        with pytest.raises(ConfigurationError):
            AutoscalerConfig(hysteresis=0)
        with pytest.raises(ConfigurationError):
            AutoscalerConfig(scale_down_queue_depth=10.0,
                             scale_up_queue_depth=5.0)
        with pytest.raises(ConfigurationError):
            AutoscalerConfig(scale_down_latency_ms=500.0,
                             scale_up_latency_ms=250.0)

    def test_observed_gauges_from_empty_cluster(self, compiled):
        router = ClusterRouter(compiled)
        scaler = Autoscaler(router, lambda nid: PoolNode(
            nid, compiled, workers=0
        ))
        gauges = scaler.observed_gauges()
        assert gauges == {"queue_depth": 0.0, "latency_ms_p95": 0.0}
