"""Property tests for the consistent-hash ring (satellite of PR 8).

Two properties make consistent hashing the right routing structure for
the cluster (docs/CLUSTER.md):

* **Balance** -- with 64 virtual replicas per node, every node's share
  of a large key population stays within a constant factor of fair
  share, for any node-id set hypothesis can dream up.
* **Minimal remapping** -- node join moves keys only *onto* the
  joiner; node leave moves only the leaver's keys.  Checked exactly,
  key by key, not statistically: a single stray remap is a failure.

Plus the determinism glue the router relies on: same members => same
ownership regardless of insertion order, and ``preference()`` order is
consistent with ownership after removals (the fallback node for a key
is exactly who inherits it).
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster import ConsistentHashRing
from repro.errors import ConfigurationError

node_ids = st.lists(
    st.text(
        alphabet="abcdefghijklmnopqrstuvwxyz0123456789-",
        min_size=1, max_size=12,
    ),
    min_size=1, max_size=8, unique=True,
)

KEYS = [f"key-{i}" for i in range(2000)]


def _shares(ring, keys):
    counts = {node: 0 for node in ring.node_ids}
    for key in keys:
        counts[ring.route(key)] += 1
    return counts


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(nodes=node_ids)
def test_balance_within_constant_factor_of_fair_share(nodes):
    ring = ConsistentHashRing(replicas=64, nodes=nodes)
    counts = _shares(ring, KEYS)
    assert sum(counts.values()) == len(KEYS)
    fair = len(KEYS) / len(nodes)
    # 64 replicas keeps every share within ~2.5x fair share (and every
    # node gets *some* keys once fair share is non-trivial).
    for node, count in counts.items():
        assert count <= 2.5 * fair, (
            f"node {node!r} owns {count} keys, fair share {fair:.0f}"
        )
        if len(nodes) <= 6:
            assert count > 0, f"node {node!r} owns no keys"


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(nodes=node_ids, joiner=st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789-",
    min_size=1, max_size=12,
))
def test_join_moves_keys_only_onto_the_joiner(nodes, joiner):
    if joiner in nodes:
        return
    ring = ConsistentHashRing(replicas=64, nodes=nodes)
    before = {key: ring.route(key) for key in KEYS}
    ring.add(joiner)
    after = {key: ring.route(key) for key in KEYS}
    for key in KEYS:
        if after[key] != before[key]:
            assert after[key] == joiner, (
                f"key {key!r} moved {before[key]!r} -> {after[key]!r}, "
                f"not onto the joiner {joiner!r}"
            )


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(nodes=node_ids, data=st.data())
def test_leave_moves_only_the_leavers_keys(nodes, data):
    if len(nodes) < 2:
        return
    leaver = data.draw(st.sampled_from(nodes))
    ring = ConsistentHashRing(replicas=64, nodes=nodes)
    before = {key: ring.route(key) for key in KEYS}
    ring.remove(leaver)
    after = {key: ring.route(key) for key in KEYS}
    for key in KEYS:
        if before[key] == leaver:
            assert after[key] != leaver
        else:
            assert after[key] == before[key], (
                f"key {key!r} moved {before[key]!r} -> {after[key]!r} "
                f"though only {leaver!r} left"
            )


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(nodes=node_ids, seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_ownership_is_insertion_order_independent(nodes, seed):
    import random

    shuffled = list(nodes)
    random.Random(seed).shuffle(shuffled)
    a = ConsistentHashRing(replicas=32, nodes=nodes)
    b = ConsistentHashRing(replicas=32, nodes=shuffled)
    for key in KEYS[:500]:
        assert a.route(key) == b.route(key)


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(nodes=node_ids)
def test_preference_order_predicts_inheritance(nodes):
    """preference(key)[1] is exactly who inherits the key when the
    owner leaves -- the router's fallback choice equals the ring's
    post-removal ownership."""
    if len(nodes) < 2:
        return
    ring = ConsistentHashRing(replicas=32, nodes=nodes)
    for key in KEYS[:200]:
        order = ring.preference(key)
        assert order[0] == ring.route(key)
        assert sorted(order) == sorted(ring.node_ids)
        shadow = ConsistentHashRing(replicas=32, nodes=nodes)
        shadow.remove(order[0])
        assert shadow.route(key) == order[1]


class TestRingBasics:
    def test_empty_ring_route_raises(self):
        with pytest.raises(ConfigurationError):
            ConsistentHashRing().route("anything")

    def test_empty_ring_preference_is_empty(self):
        assert ConsistentHashRing().preference("anything") == []

    def test_add_remove_idempotent(self):
        ring = ConsistentHashRing(replicas=8)
        ring.add("a")
        ring.add("a")
        assert len(ring) == 1
        assert ring.route("k") == "a"
        ring.remove("a")
        ring.remove("a")
        assert len(ring) == 0
        assert "a" not in ring

    def test_single_node_owns_everything(self):
        ring = ConsistentHashRing(replicas=8, nodes=["solo"])
        assert all(ring.route(k) == "solo" for k in KEYS[:100])

    def test_preference_count_bounds(self):
        ring = ConsistentHashRing(replicas=8, nodes=["a", "b", "c"])
        assert len(ring.preference("k", count=2)) == 2
        assert len(ring.preference("k", count=99)) == 3

    def test_replicas_validation(self):
        with pytest.raises(ConfigurationError):
            ConsistentHashRing(replicas=0)
