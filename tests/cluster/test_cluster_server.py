"""End-to-end tests for :class:`repro.cluster.ClusterServer` and its
gateway integration: the cluster behind the same micro-batching facade,
readiness tied to routable nodes, cluster gauges on ``/metrics``.
"""

import json
import urllib.request

import numpy as np
import pytest

from repro.cluster import AutoscalerConfig, ClusterServer
from repro.errors import ConfigurationError
from repro.harness import random_binarized_network, random_spike_trains
from repro.ssnn import SushiRuntime, compile_network

CHIP_N = 4
SC = 8


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(41)
    network = random_binarized_network(rng, sizes=(11, 8, 5), sc_per_npe=SC)
    compiled = compile_network(network, CHIP_N, SC)
    trains = random_spike_trains(rng, 4, 24, 11)
    return network, compiled, trains


class TestServing:
    def test_answers_match_the_runtime(self, workload):
        network, compiled, trains = workload
        runtime = SushiRuntime(chip_n=CHIP_N, sc_per_npe=SC,
                               plan_cache=None)
        want = runtime.infer(network, trains)
        with ClusterServer(
            compiled=compiled, nodes=3, node_workers=0,
            deadline_ms=5.0, supervise_interval_s=0,
        ) as server:
            futures = [server.submit(trains[:, b, :])
                       for b in range(trains.shape[1])]
            results = [f.result(timeout=30.0) for f in futures]
        for b, res in enumerate(results):
            assert np.array_equal(
                res.output_raster, want.output_raster[:, b, :]
            )
            assert res.prediction == int(want.predictions[b])

    def test_node_death_is_invisible_to_clients(self, workload):
        _, compiled, trains = workload
        with ClusterServer(
            compiled=compiled, nodes=2, node_workers=0,
            deadline_ms=0.0, supervise_interval_s=0,
        ) as server:
            first = server.infer(trains[:, 0, :], timeout=30.0)
            # Kill whichever node serves next; dispatch must re-route.
            victim_id = server.router.node_ids()[0]
            server.router.node(victim_id).kill()
            second = server.infer(trains[:, 0, :], timeout=30.0)
            assert np.array_equal(first.output_raster,
                                  second.output_raster)
            assert server.readiness()  # one node still routable

    def test_readiness_requires_a_routable_node(self, workload):
        _, compiled, trains = workload
        with ClusterServer(
            compiled=compiled, nodes=1, node_workers=0,
            deadline_ms=0.0, supervise_interval_s=0,
        ) as server:
            assert server.readiness()
            node_id = server.router.node_ids()[0]
            server.router.node(node_id).kill()
            assert not server.readiness()  # dispatcher up, cluster gone

    def test_manual_scale_out_and_in(self, workload):
        _, compiled, trains = workload
        with ClusterServer(
            compiled=compiled, nodes=1, node_workers=0,
            deadline_ms=0.0, supervise_interval_s=0,
        ) as server:
            added = server.add_node()
            assert server.router.alive_count() == 2
            baseline = server.infer(trains[:, 0, :], timeout=30.0)
            assert server.remove_node(added.node_id) is True
            assert server.router.alive_count() == 1
            after = server.infer(trains[:, 0, :], timeout=30.0)
            assert np.array_equal(baseline.output_raster,
                                  after.output_raster)

    def test_health_includes_cluster_section(self, workload):
        _, compiled, trains = workload
        config = AutoscalerConfig(min_nodes=1, max_nodes=4)
        with ClusterServer(
            compiled=compiled, nodes=2, node_workers=0,
            deadline_ms=0.0, supervise_interval_s=0,
            autoscaler_config=config,
        ) as server:
            server.infer(trains[:, 0, :], timeout=30.0)
            health = server.health()
            assert health["mode"] == "cluster[2]"
            assert health["cluster"]["schema"] == "repro.cluster/v1"
            assert health["cluster"]["nodes_routable"] == 2
            assert health["autoscaler"]["schema"] == \
                "repro.cluster.autoscaler/v1"

    def test_validation(self, workload):
        _, compiled, _ = workload
        with pytest.raises(ConfigurationError):
            ClusterServer(compiled=compiled, nodes=0)
        with pytest.raises(ConfigurationError):
            ClusterServer(compiled=compiled, node_workers=-1)
        with pytest.raises(ConfigurationError):
            ClusterServer(compiled=compiled, supervise_interval_s=-1.0)

    def test_supervisor_thread_probes_and_recovers(self, workload):
        """With the background sweep on, a partitioned node is
        quarantined and rejoined without any manual probe call."""
        import time

        _, compiled, trains = workload
        with ClusterServer(
            compiled=compiled, nodes=2, node_workers=0,
            deadline_ms=0.0, supervise_interval_s=0.02,
        ) as server:
            target = server.router.node(server.router.node_ids()[0])
            target.partition()
            deadline = time.monotonic() + 5.0
            while (target.node_id in server.router._ring
                   and time.monotonic() < deadline):
                time.sleep(0.01)
            assert target.node_id not in server.router._ring
            target.heal_partition()
            deadline = time.monotonic() + 5.0
            while (target.node_id not in server.router._ring
                   and time.monotonic() < deadline):
                time.sleep(0.01)
            assert target.node_id in server.router._ring
            result = server.infer(trains[:, 0, :], timeout=30.0)
            assert result.steps == trains.shape[0]


class TestGatewayIntegration:
    def test_metrics_and_readyz_expose_cluster_gauges(self, workload):
        from repro.gateway.auth import ApiKeyAuthenticator, demo_tenants
        from repro.gateway.ratelimit import AdmissionController
        from repro.gateway.server import Gateway

        _, compiled, trains = workload
        server = ClusterServer(
            compiled=compiled, nodes=2, node_workers=0,
            deadline_ms=0.0, supervise_interval_s=0,
        ).start()
        gateway = Gateway(
            server,
            authenticator=ApiKeyAuthenticator(demo_tenants()),
            admission=AdmissionController(server),
        )
        gateway.run_in_thread()
        try:
            host, port = gateway.address
            base = f"http://{host}:{port}"
            body = json.dumps({
                "spike_train": trains[:, 0, :].astype(int).tolist()
            }).encode()
            req = urllib.request.Request(
                f"{base}/infer", data=body,
                headers={"X-API-Key": "demo-key-a"},
            )
            with urllib.request.urlopen(req) as resp:
                assert resp.status == 200

            with urllib.request.urlopen(f"{base}/readyz") as resp:
                assert resp.status == 200

            with urllib.request.urlopen(f"{base}/metrics") as resp:
                text = resp.read().decode()
            assert 'sushi_cluster_nodes{state="active"} 2' in text
            assert "sushi_cluster_rebalances_total" in text
            assert "sushi_cluster_node_breaker_state" in text
            assert "sushi_cluster_dispatches_total 1" in text

            with urllib.request.urlopen(f"{base}/healthz") as resp:
                health = json.loads(resp.read())
            assert health["backend"]["mode"] == "cluster[2]"

            # Kill the whole cluster: /readyz must flip 503.
            for node_id in server.router.node_ids():
                server.router.node(node_id).kill()
            try:
                with urllib.request.urlopen(f"{base}/readyz") as resp:
                    status = resp.status
            except urllib.error.HTTPError as exc:
                status = exc.code
            assert status == 503
        finally:
            gateway.close()
            server.stop()

    def test_serve_cli_accepts_nodes_flag(self):
        from repro.gateway.server import main

        # --help must document the cluster flags (smoke: parser wiring).
        with pytest.raises(SystemExit) as excinfo:
            main(["--help"])
        assert excinfo.value.code == 0
