"""Unit tests for :class:`repro.cluster.router.ClusterRouter`.

Dispatch semantics under every failure combination: affinity while
healthy, failure-aware selection around unhealthy nodes, exactly-once
re-dispatch on mid-call death, serial fallback as the floor -- and the
membership lifecycle (join/leave/evict/probe) with its counters, which
the gateway exports as cluster gauges.
"""

import numpy as np
import pytest

from repro.cluster import ClusterRouter, PoolNode
from repro.errors import ConfigurationError
from repro.harness import random_binarized_network
from repro.serve import CircuitBreaker
from repro.serve.metrics import render_prometheus
from repro.ssnn import compile_network

CHIP_N = 4
SC = 8


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(41)
    network = random_binarized_network(rng, sizes=(11, 8, 5), sc_per_npe=SC)
    compiled = compile_network(network, CHIP_N, SC)
    rows = (np.random.default_rng(11).random((18, 11)) < 0.4)
    return compiled, rows.astype(np.float64)


def _serial_cluster(compiled, n=3):
    router = ClusterRouter(compiled)
    for i in range(n):
        router.join(PoolNode(f"n{i}", compiled, workers=0))
    return router


class TestDispatch:
    def test_affinity_dispatch_is_bit_identical(self, workload):
        compiled, rows = workload
        want = compiled.forward_rows(rows)
        router = _serial_cluster(compiled)
        try:
            got = router.dispatch(rows)
            assert np.array_equal(got[0], want[0])
            assert (got[1], got[2]) == (want[1], want[2])
            assert router.affinity_hits == 1
            # Same rows -> same key -> same owner, no fallback.
            router.dispatch(rows)
            assert router.affinity_hits == 2
            assert router.fallbacks == 0
        finally:
            router.shutdown()

    def test_affinity_key_is_plan_and_content_bound(self, workload):
        compiled, rows = workload
        router = _serial_cluster(compiled, n=1)
        try:
            key_a = router.affinity_key(rows)
            key_b = router.affinity_key(rows)
            assert key_a == key_b
            assert compiled.fingerprint in key_a
            flipped = rows.copy()
            flipped[0, 0] = 1.0 - flipped[0, 0]
            assert router.affinity_key(flipped) != key_a
        finally:
            router.shutdown()

    def test_open_breaker_sheds_affinity_to_healthy_node(self, workload):
        compiled, rows = workload
        breakers = {
            f"n{i}": CircuitBreaker(failure_threshold=1,
                                    reset_timeout_s=300.0)
            for i in range(3)
        }
        router = ClusterRouter(compiled)
        for node_id, breaker in breakers.items():
            router.join(PoolNode(node_id, compiled, workers=0,
                                 breaker=breaker))
        try:
            owner_id = router._ring.route(router.affinity_key(rows))
            breakers[owner_id].record_failure()  # owner degrades
            want = compiled.forward_rows(rows)
            got = router.dispatch(rows)
            assert np.array_equal(got[0], want[0])
            assert router.fallbacks == 1 and router.affinity_hits == 0
            assert router.retries == 0  # routed around, not retried
        finally:
            router.shutdown()

    def test_mid_call_death_redispatches_exactly_once(self, workload):
        compiled, rows = workload
        want = compiled.forward_rows(rows)
        router = _serial_cluster(compiled, n=2)
        try:
            victim = router.node(
                router._ring.route(router.affinity_key(rows))
            )
            original = victim._forward

            def dying_forward(batch_rows):
                victim.kill()
                return original(batch_rows)

            victim._forward = dying_forward
            got = router.dispatch(rows)
            assert np.array_equal(got[0], want[0])
            assert router.retries == 1
            assert router.evictions == 1
            assert victim.node_id not in router._ring
            # Follow-up traffic needs no retry.
            router.dispatch(rows)
            assert router.retries == 1
        finally:
            router.shutdown()

    def test_total_node_loss_falls_back_serially(self, workload):
        compiled, rows = workload
        want = compiled.forward_rows(rows)
        router = _serial_cluster(compiled, n=2)
        try:
            for node_id in router.node_ids():
                router.node(node_id).kill()
            got = router.dispatch(rows)
            assert np.array_equal(got[0], want[0])
            assert router.serial_fallbacks == 1
        finally:
            router.shutdown()

    def test_empty_cluster_answers_serially(self, workload):
        compiled, rows = workload
        router = ClusterRouter(compiled)
        want = compiled.forward_rows(rows)
        got = router.dispatch(rows)
        assert np.array_equal(got[0], want[0])
        assert router.serial_fallbacks == 1

    def test_shape_validation(self, workload):
        compiled, _ = workload
        router = _serial_cluster(compiled, n=1)
        try:
            with pytest.raises(ConfigurationError):
                router.dispatch(np.zeros((4, compiled.in_features + 1)))
            with pytest.raises(ConfigurationError):
                router.dispatch(np.zeros(compiled.in_features))
        finally:
            router.shutdown()


class TestMembership:
    def test_join_is_idempotent(self, workload):
        compiled, _ = workload
        router = ClusterRouter(compiled)
        node = PoolNode("n0", compiled, workers=0)
        router.join(node)
        router.join(node)
        assert router.node_ids() == ("n0",)
        assert router.rebalances == 1
        router.shutdown()

    def test_leave_drains_before_retire(self, workload):
        compiled, rows = workload
        router = _serial_cluster(compiled, n=2)
        try:
            victim_id = router.node_ids()[0]
            victim = router.node(victim_id)
            assert router.leave(victim_id) is True
            assert victim.state == "retired"
            assert victim_id not in router._ring
            assert router.node(victim_id) is None
            want = compiled.forward_rows(rows)
            assert np.array_equal(router.dispatch(rows)[0], want[0])
        finally:
            router.shutdown()

    def test_leave_unknown_node_is_noop(self, workload):
        compiled, _ = workload
        router = ClusterRouter(compiled)
        assert router.leave("ghost") is True

    def test_probe_quarantines_and_rejoins(self, workload):
        compiled, _ = workload
        router = _serial_cluster(compiled, n=2)
        try:
            target = router.node(router.node_ids()[0])
            target.partition()
            verdicts = router.probe_all()
            assert verdicts[target.node_id] is False
            assert target.node_id not in router._ring
            assert router.quarantines == 1
            # Roster retains the node for the heal path.
            assert router.node(target.node_id) is target
            target.heal_partition()
            verdicts = router.probe_all()
            assert verdicts[target.node_id] is True
            assert target.node_id in router._ring
            assert router.rejoins == 1
        finally:
            router.shutdown()

    def test_probe_evicts_the_dead(self, workload):
        compiled, _ = workload
        router = _serial_cluster(compiled, n=2)
        try:
            corpse = router.node(router.node_ids()[0])
            corpse.kill()
            router.probe_all()
            assert corpse.node_id not in router._ring
            assert router.evictions == 1
            assert router.alive_count() == 1
        finally:
            router.shutdown()


class TestObservability:
    def test_stats_schema_and_counters(self, workload):
        compiled, rows = workload
        router = _serial_cluster(compiled, n=2)
        try:
            router.dispatch(rows)
            snap = router.stats()
            assert snap["schema"] == "repro.cluster/v1"
            assert snap["plan"] == compiled.fingerprint
            assert snap["nodes_total"] == 2
            assert snap["nodes_routable"] == 2
            assert snap["counters"]["dispatches"] == 1
            assert set(snap["per_node"]) == set(router.node_ids())
            entry = next(iter(snap["per_node"].values()))
            assert {"state", "partitioned", "in_ring", "breaker",
                    "workers_alive", "restarts", "inflight",
                    "dispatches"} <= set(entry)
        finally:
            router.shutdown()

    def test_metric_families_render(self, workload):
        compiled, rows = workload
        router = _serial_cluster(compiled, n=2)
        try:
            router.dispatch(rows)
            text = render_prometheus(router.metric_families())
            assert 'sushi_cluster_nodes{state="active"} 2' in text
            assert "sushi_cluster_rebalances_total 2" in text
            assert "sushi_cluster_dispatches_total 1" in text
            assert 'node="n0"' in text
            assert 'sushi_cluster_node_breaker_state' in text
        finally:
            router.shutdown()
