"""Tests for convolutional/pooling layers and their chip lowering."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autograd import Tensor
from repro.errors import CapacityError, ConfigurationError, TrainingError
from repro.snn import (
    BinaryConv2d,
    Conv2d,
    Flatten,
    Sequential,
    SpikePool2d,
    ToSpatial,
    conv_output_size,
    lower_network,
)
from repro.snn.layers import BinaryLinear
from repro.snn.model import SpikingClassifier
from repro.snn.neurons import IFNode


class TestUnfold:
    def test_patch_layout(self):
        x = Tensor(np.arange(16.0).reshape(1, 1, 4, 4))
        patches = x.unfold2d(2, stride=2)
        assert patches.shape == (1, 4, 4)
        np.testing.assert_array_equal(patches.data[0, 0], [0, 1, 4, 5])
        np.testing.assert_array_equal(patches.data[0, 3], [10, 11, 14, 15])

    def test_gradient_scatter_adds_overlaps(self):
        x = Tensor(np.ones((1, 1, 3, 3)), requires_grad=True)
        x.unfold2d(2, stride=1).sum().backward()
        # Centre pixel participates in all four 2x2 windows.
        assert x.grad[0, 0, 1, 1] == 4.0
        assert x.grad[0, 0, 0, 0] == 1.0

    def test_validation(self):
        with pytest.raises(TrainingError):
            Tensor(np.ones((2, 3))).unfold2d(2)
        with pytest.raises(TrainingError):
            Tensor(np.ones((1, 1, 2, 2))).unfold2d(3)
        with pytest.raises(TrainingError):
            Tensor(np.ones((1, 1, 4, 4))).unfold2d(2, stride=0)

    def test_permute_round_trip(self):
        x = Tensor(np.arange(24.0).reshape(2, 3, 4), requires_grad=True)
        y = x.permute(2, 0, 1)
        assert y.shape == (4, 2, 3)
        y.sum().backward()
        np.testing.assert_array_equal(x.grad, np.ones((2, 3, 4)))


class TestConv2d:
    def test_matches_naive_convolution(self):
        rng = np.random.default_rng(0)
        x = Tensor(rng.random((2, 3, 5, 5)))
        conv = Conv2d(3, 2, kernel=3, seed=1)
        out = conv(x).numpy()
        weights, bias = conv.weight.numpy(), conv.bias.numpy()
        for b in range(2):
            for o in range(2):
                for oy in range(3):
                    for ox in range(3):
                        patch = x.data[b, :, oy:oy + 3, ox:ox + 3].reshape(-1)
                        expected = patch @ weights[:, o] + bias[o]
                        assert out[b, o, oy, ox] == pytest.approx(expected)

    def test_stride(self):
        x = Tensor(np.ones((1, 1, 6, 6)))
        conv = Conv2d(1, 1, kernel=2, stride=2, seed=0)
        assert conv(x).shape == (1, 1, 3, 3)

    def test_gradients_flow_to_weights_and_input(self):
        x = Tensor(np.random.default_rng(2).random((1, 2, 4, 4)),
                   requires_grad=True)
        conv = Conv2d(2, 3, kernel=2, seed=3)
        conv(x).sum().backward()
        assert conv.weight.grad is not None
        assert x.grad is not None
        assert x.grad.shape == x.shape

    def test_binary_conv_forward_is_scaled_signs(self):
        conv = BinaryConv2d(1, 2, kernel=2, bias=False, seed=4)
        x = Tensor(np.ones((1, 1, 2, 2)))
        out = conv(x).numpy()
        weights = conv.weight.numpy()
        alpha = np.abs(weights).mean(axis=0)
        expected = (np.sign(weights) * alpha).sum(axis=0)
        np.testing.assert_allclose(out[0, :, 0, 0], expected)

    def test_shape_validation(self):
        conv = Conv2d(2, 1, kernel=2)
        with pytest.raises(ConfigurationError):
            conv(Tensor(np.ones((1, 3, 4, 4))))
        with pytest.raises(ConfigurationError):
            Conv2d(0, 1, 2)
        with pytest.raises(ConfigurationError):
            conv_output_size(2, 3)


class TestSpikePool:
    def test_or_pooling_equals_max_on_binary(self):
        rng = np.random.default_rng(1)
        spikes = (rng.random((2, 3, 6, 6)) < 0.3).astype(float)
        pool = SpikePool2d(2)
        out = pool(Tensor(spikes)).numpy()
        expected = spikes.reshape(2, 3, 3, 2, 3, 2).max(axis=(3, 5))
        np.testing.assert_array_equal(out, expected)

    def test_pool_has_surrogate_gradient(self):
        x = Tensor(np.zeros((1, 1, 2, 2)), requires_grad=True)
        SpikePool2d(2)(x).sum().backward()
        assert np.abs(x.grad).sum() > 0

    def test_window_validation(self):
        with pytest.raises(ConfigurationError):
            SpikePool2d(0)
        with pytest.raises(ConfigurationError):
            SpikePool2d(3)(Tensor(np.ones((1, 1, 4, 4))))

    def test_to_spatial(self):
        x = Tensor(np.arange(12.0).reshape(1, 12))
        out = ToSpatial(3, 2, 2)(x)
        assert out.shape == (1, 3, 2, 2)


def tiny_conv_model(seed=0):
    net = Sequential(
        ToSpatial(1, 6, 6),
        BinaryConv2d(1, 2, kernel=3, seed=seed),  # -> 2x4x4
        IFNode(),
        SpikePool2d(2),                            # -> 2x2x2
        Flatten(),
        BinaryLinear(8, 3, seed=seed + 1),
        IFNode(),
    )
    return SpikingClassifier(net, time_steps=3, encoder_seed=seed + 2)


class TestLowering:
    def test_lowered_layers_have_matching_shapes(self):
        model = tiny_conv_model()
        network = lower_network(model, input_shape=(1, 6, 6))
        shapes = [(l.in_features, l.out_features) for l in network.layers]
        assert shapes == [(36, 32), (32, 8), (8, 3)]

    def test_pool_layer_is_unit_weight_threshold_one(self):
        model = tiny_conv_model()
        network = lower_network(model, input_shape=(1, 6, 6))
        pool = network.layers[1]
        assert set(np.unique(pool.signed_weights)) <= {0, 1}
        assert (pool.thresholds == 1).all()
        assert (pool.signed_weights.sum(axis=0) == 4).all()  # 2x2 windows

    def test_conv_thresholds_shared_per_filter(self):
        model = tiny_conv_model()
        network = lower_network(model, input_shape=(1, 6, 6))
        conv = network.layers[0]
        per_filter = conv.thresholds.reshape(2, 16)
        assert (per_filter == per_filter[:, :1]).all()

    @given(seed=st.integers(min_value=0, max_value=100))
    @settings(max_examples=10, deadline=None)
    def test_lowered_step_matches_stateless_forward(self, seed):
        """Property: one stateless time step through the lowered integer
        network equals the model's binarized stateless forward."""
        model = tiny_conv_model(seed)
        network = lower_network(model, input_shape=(1, 6, 6))
        rng = np.random.default_rng(seed)
        spikes = (rng.random((4, 36)) < 0.4).astype(float)
        lowered = network.forward_step(spikes)

        # Reference: drive the model's modules step by step, statelessly.
        from repro.autograd.tensor import Tensor

        x = Tensor(spikes)
        x = model.network.modules[0](x)          # ToSpatial
        conv_out = model.network.modules[1](x)   # BinaryConv2d
        conv_spikes = (conv_out.numpy() >= 1.0).astype(float)
        pooled = conv_spikes.reshape(4, 2, 2, 2, 2, 2).max(axis=(3, 5))
        flat = pooled.reshape(4, -1)
        linear = model.network.modules[5]
        alpha = np.abs(linear.weight.numpy()).mean(axis=0)
        logits = flat @ (np.sign(linear.weight.numpy()) * alpha) \
            + linear.bias.numpy()
        final = (logits >= 1.0).astype(float)

        expected = np.concatenate([final], axis=1)
        np.testing.assert_array_equal(lowered, expected)

    def test_runs_on_the_chip_runtime(self):
        from repro.ssnn import SushiRuntime

        model = tiny_conv_model()
        network = lower_network(model, input_shape=(1, 6, 6))
        rng = np.random.default_rng(3)
        trains = (rng.random((3, 5, 36)) < 0.4).astype(float)
        result = SushiRuntime(chip_n=8).infer(network, trains)
        np.testing.assert_array_equal(result.predictions,
                                      network.predict(trains))
        assert result.spurious_decisions == 0

    def test_input_shape_validation(self):
        model = tiny_conv_model()
        with pytest.raises(ConfigurationError):
            lower_network(model, input_shape=(6, 6))
