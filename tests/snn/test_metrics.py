"""Tests for classification and spike-activity metrics."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.snn.metrics import (
    SpikeStats,
    confusion_matrix,
    per_class_report,
    spike_stats,
)


class TestConfusionMatrix:
    def test_diagonal_for_perfect_predictions(self):
        labels = np.array([0, 1, 2, 1])
        matrix = confusion_matrix(labels, labels)
        np.testing.assert_array_equal(matrix, np.diag([1, 2, 1]))

    def test_off_diagonal_counts(self):
        matrix = confusion_matrix(np.array([1, 1]), np.array([0, 1]))
        assert matrix[0, 1] == 1  # true 0 predicted as 1
        assert matrix[1, 1] == 1

    def test_explicit_class_count(self):
        matrix = confusion_matrix(np.array([0]), np.array([0]),
                                  num_classes=5)
        assert matrix.shape == (5, 5)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            confusion_matrix(np.array([0]), np.array([0, 1]))
        with pytest.raises(ConfigurationError):
            confusion_matrix(np.array([]), np.array([]))


class TestPerClassReport:
    def test_perfect_class(self):
        rows = per_class_report(np.array([0, 0, 1]), np.array([0, 0, 1]))
        assert rows[0] == {"class": "0", "precision": 1.0, "recall": 1.0,
                           "f1": 1.0, "support": 2}

    def test_precision_recall_asymmetry(self):
        # True: [0, 0, 1]; predicted: [0, 1, 1].
        rows = per_class_report(np.array([0, 1, 1]), np.array([0, 0, 1]))
        assert rows[0]["recall"] == 0.5
        assert rows[0]["precision"] == 1.0
        assert rows[1]["precision"] == 0.5
        assert rows[1]["recall"] == 1.0

    def test_custom_names(self):
        rows = per_class_report(np.array([0, 1]), np.array([0, 1]),
                                class_names=["cat", "dog"])
        assert rows[1]["class"] == "dog"

    def test_missing_names_rejected(self):
        with pytest.raises(ConfigurationError):
            per_class_report(np.array([0, 2]), np.array([0, 2]),
                             class_names=["a"])

    def test_absent_class_yields_zeros(self):
        rows = per_class_report(np.array([0, 0]), np.array([0, 0]),
                                class_names=["a", "b"])
        # Request two classes explicitly via names and a 2-class matrix.
        rows = per_class_report(
            np.array([0, 0]), np.array([0, 1]), class_names=["a", "b"]
        )
        assert rows[1]["recall"] == 0.0


class TestSpikeStats:
    def test_basic_statistics(self):
        raster = np.zeros((4, 2, 3))
        raster[0, 0, 0] = 1
        raster[1, 0, 0] = 1
        raster[2, 1, 2] = 1
        stats = spike_stats(raster)
        assert isinstance(stats, SpikeStats)
        assert stats.mean_rate == pytest.approx(3 / 24)
        assert stats.active_fraction == pytest.approx(2 / 6)
        assert stats.spikes_per_sample == pytest.approx(1.5)
        assert stats.silent_steps == pytest.approx(5 / 8)

    def test_all_silent(self):
        stats = spike_stats(np.zeros((3, 2, 4)))
        assert stats.mean_rate == 0.0
        assert stats.silent_steps == 1.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            spike_stats(np.zeros((3, 2)))
