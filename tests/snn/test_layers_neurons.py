"""Tests for SNN modules: layers, neuron nodes, encoders."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.errors import ConfigurationError
from repro.snn import (
    BinaryLinear,
    Dropout,
    Flatten,
    IFNode,
    LIFNode,
    Linear,
    Sequential,
    StatelessIFNode,
)
from repro.snn.encoding import LatencyEncoder, PoissonEncoder


class TestLinear:
    def test_shapes(self):
        layer = Linear(4, 3, seed=0)
        out = layer(Tensor.randn(2, 4, seed=1))
        assert out.shape == (2, 3)

    def test_parameters(self):
        layer = Linear(4, 3)
        assert len(layer.parameters()) == 2
        assert len(Linear(4, 3, bias=False).parameters()) == 1

    def test_invalid_dims(self):
        with pytest.raises(ConfigurationError):
            Linear(0, 3)

    def test_gradients_reach_weights(self):
        layer = Linear(4, 3, seed=0)
        layer(Tensor.randn(2, 4, seed=1)).sum().backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None


class TestBinaryLinear:
    def test_effective_weights_are_scaled_signs(self):
        layer = BinaryLinear(4, 2, bias=False, seed=0)
        x = Tensor.from_array(np.eye(4))
        out = layer(x).numpy()
        alpha = np.abs(layer.weight.numpy()).mean(axis=0)
        signs = np.sign(layer.weight.numpy())
        np.testing.assert_allclose(out, signs * alpha)

    def test_latent_weights_receive_gradients(self):
        layer = BinaryLinear(4, 2, seed=0)
        layer(Tensor.randn(3, 4, seed=1)).sum().backward()
        assert layer.weight.grad is not None
        assert np.abs(layer.weight.grad).sum() > 0


class TestFlattenDropoutSequential:
    def test_flatten(self):
        out = Flatten()(Tensor.randn(2, 3, 4, seed=0))
        assert out.shape == (2, 12)

    def test_dropout_train_vs_eval(self):
        drop = Dropout(0.5, seed=0)
        x = Tensor.ones(1, 1000)
        out_train = drop(x).numpy()
        assert (out_train == 0).any()
        # Inverted dropout keeps the expectation.
        assert abs(out_train.mean() - 1.0) < 0.15
        drop.eval()
        np.testing.assert_array_equal(drop(x).numpy(), x.numpy())

    def test_dropout_validation(self):
        with pytest.raises(ConfigurationError):
            Dropout(1.0)

    def test_sequential_composes_and_collects(self):
        net = Sequential(Linear(4, 8, seed=0), Linear(8, 2, seed=1))
        assert net(Tensor.randn(3, 4, seed=2)).shape == (3, 2)
        assert len(net.parameters()) == 4
        assert len(net) == 2

    def test_empty_sequential_rejected(self):
        with pytest.raises(ConfigurationError):
            Sequential()

    def test_train_eval_propagates(self):
        net = Sequential(Dropout(0.5), Linear(2, 2))
        net.eval()
        assert not net[0].training


class TestIFNode:
    def test_fires_when_membrane_reaches_threshold(self):
        node = IFNode(v_threshold=1.0)
        x = Tensor.from_array([[0.6]])
        assert node(x).numpy()[0, 0] == 0.0  # V = 0.6
        assert node(x).numpy()[0, 0] == 1.0  # V = 1.2 >= 1.0

    def test_hard_reset_after_fire(self):
        node = IFNode(v_threshold=1.0, v_reset=0.0)
        node(Tensor.from_array([[1.5]]))
        np.testing.assert_allclose(node.membrane, [[0.0]])

    def test_subthreshold_residual_carries_over(self):
        """The residual the SSNN stateless optimisation eliminates."""
        node = IFNode(v_threshold=1.0)
        node(Tensor.from_array([[0.4]]))
        node(Tensor.from_array([[0.4]]))
        np.testing.assert_allclose(node.membrane, [[0.8]])

    def test_reset_state_clears_membrane(self):
        node = IFNode()
        node(Tensor.from_array([[0.4]]))
        node.reset_state()
        assert node.membrane is None

    def test_threshold_validation(self):
        with pytest.raises(ConfigurationError):
            IFNode(v_threshold=0.0, v_reset=0.0)

    def test_paper_equations_1_to_3(self):
        """One step: H = V + X; S = Theta(H - Vth); V' = H(1-S) + Vr*S."""
        node = IFNode(v_threshold=1.0, v_reset=0.25)
        node(Tensor.from_array([[0.7]]))
        spike = node(Tensor.from_array([[0.7]]))
        assert spike.numpy()[0, 0] == 1.0
        np.testing.assert_allclose(node.membrane, [[0.25]])


class TestLIFNode:
    def test_leak_decays_membrane(self):
        node = LIFNode(tau=2.0, v_threshold=10.0)
        node(Tensor.from_array([[1.0]]))  # V = 0.5
        node(Tensor.from_array([[0.0]]))  # V decays toward reset
        assert node.membrane[0, 0] < 0.5

    def test_tau_validation(self):
        with pytest.raises(ConfigurationError):
            LIFNode(tau=0.5)


class TestStatelessIFNode:
    def test_no_carry_over(self):
        node = StatelessIFNode(v_threshold=1.0)
        x = Tensor.from_array([[0.6]])
        assert node(x).numpy()[0, 0] == 0.0
        assert node(x).numpy()[0, 0] == 0.0  # still 0: nothing accumulated

    def test_fires_on_single_step_drive(self):
        node = StatelessIFNode(v_threshold=1.0)
        assert node(Tensor.from_array([[1.0]])).numpy()[0, 0] == 1.0


class TestEncoders:
    def test_poisson_rate_tracks_intensity(self):
        enc = PoissonEncoder(seed=0)
        images = np.full((1, 100, 100), 0.3)
        rate = enc.encode_steps(images, 50).mean()
        assert abs(rate - 0.3) < 0.01

    def test_poisson_deterministic_per_seed(self):
        images = np.random.default_rng(0).random((2, 8, 8))
        a = PoissonEncoder(seed=7).encode_steps(images, 5)
        b = PoissonEncoder(seed=7).encode_steps(images, 5)
        np.testing.assert_array_equal(a, b)

    def test_poisson_rejects_out_of_range(self):
        with pytest.raises(ConfigurationError):
            PoissonEncoder()(np.array([1.5]))

    def test_poisson_extremes(self):
        enc = PoissonEncoder(seed=0)
        out = enc.encode_steps(np.array([[0.0, 1.0]]), 20)
        assert out[:, 0, 0].sum() == 0
        assert out[:, 0, 1].sum() == 20

    def test_latency_bright_spikes_early(self):
        enc = LatencyEncoder(steps=10)
        out = enc.encode_steps(np.array([[1.0, 0.5, 0.0]]))
        assert out[0, 0, 0] == 1.0  # brightest: first step
        assert out[:, 0, 2].sum() == 0  # zero intensity never spikes
        assert out[:, 0, 1].sum() == 1  # exactly one spike

    def test_latency_validation(self):
        with pytest.raises(ConfigurationError):
            LatencyEncoder(steps=0)
