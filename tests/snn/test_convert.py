"""Tests for ANN training and ANN-to-SNN conversion."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, TrainingError
from repro.snn import ANNClassifier, convert_ann_to_snn
from repro.snn.layers import Linear
from repro.snn.neurons import IFNode


def tiny_data(n=120, side=6, seed=0):
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, 2, size=n)
    images = rng.random((n, side, side)) * 0.1
    for i, label in enumerate(labels):
        half = slice(0, side // 2) if label == 0 else slice(side // 2, side)
        images[i][:, half] += 0.8
    return np.clip(images, 0, 1), labels.astype(np.int64)


@pytest.fixture(scope="module")
def trained_ann():
    images, labels = tiny_data()
    ann = ANNClassifier(input_size=36, hidden_size=16, num_classes=2,
                        seed=0)
    losses = ann.fit(images, labels, epochs=12, batch_size=16,
                     learning_rate=5e-3)
    return ann, images, labels, losses


class TestANNClassifier:
    def test_training_converges(self, trained_ann):
        ann, images, labels, losses = trained_ann
        assert losses[-1] < losses[0]
        assert (ann.predict(images) == labels).mean() > 0.9

    def test_bad_data_rejected(self):
        ann = ANNClassifier(input_size=4, hidden_size=4, num_classes=2)
        with pytest.raises(TrainingError):
            ann.fit(np.zeros((3, 2, 2)), np.zeros(2, dtype=int))


class TestConversion:
    def test_converted_structure(self, trained_ann):
        ann, images, _, _ = trained_ann
        snn = convert_ann_to_snn(ann, images[:50], time_steps=8)
        linears = [m for m in snn.network.modules
                   if isinstance(m, Linear)]
        nodes = [m for m in snn.network.modules if isinstance(m, IFNode)]
        assert len(linears) == 2
        assert len(nodes) == 2
        assert snn.time_steps == 8

    def test_converted_snn_tracks_ann(self, trained_ann):
        """With enough time steps, rate coding recovers the ANN decision
        on the large majority of samples."""
        ann, images, labels, _ = trained_ann
        snn = convert_ann_to_snn(ann, images[:50], time_steps=24,
                                 encoder_seed=0)
        ann_preds = ann.predict(images)
        snn_preds = snn.predict(images)
        assert (snn_preds == ann_preds).mean() > 0.85

    def test_more_time_steps_do_not_hurt(self, trained_ann):
        ann, images, labels, _ = trained_ann
        short = convert_ann_to_snn(ann, images[:50], time_steps=4,
                                   encoder_seed=0)
        long = convert_ann_to_snn(ann, images[:50], time_steps=32,
                                  encoder_seed=0)
        acc_short = (short.predict(images) == labels).mean()
        acc_long = (long.predict(images) == labels).mean()
        assert acc_long >= acc_short - 0.05

    def test_weights_are_rescaled(self, trained_ann):
        ann, images, _, _ = trained_ann
        snn = convert_ann_to_snn(ann, images[:50], time_steps=8)
        original = [m for m in ann.network.modules
                    if isinstance(m, Linear)]
        converted = [m for m in snn.network.modules
                     if isinstance(m, Linear)]
        # Same sign pattern, different magnitudes (normalised).
        for orig, conv in zip(original, converted):
            np.testing.assert_array_equal(
                np.sign(orig.weight.numpy()), np.sign(conv.weight.numpy())
            )
            assert not np.allclose(orig.weight.numpy(),
                                   conv.weight.numpy())

    def test_validation(self, trained_ann):
        ann, images, _, _ = trained_ann
        with pytest.raises(ConfigurationError):
            convert_ann_to_snn(ann, images[:10], percentile=0.0)
        with pytest.raises(ConfigurationError):
            convert_ann_to_snn(ann, images[:10], time_steps=0)
