"""Tests for the spiking classifier, trainer, metrics and binarization."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, TrainingError
from repro.snn import (
    SpikingClassifier,
    Trainer,
    TrainerConfig,
    accuracy,
    binarize_network,
    consistency,
    quantize_network,
)
from repro.snn.encoding import PoissonEncoder


def tiny_dataset(n=80, side=6, seed=0):
    """Two easily-separable classes: bright left half vs bright right."""
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, 2, size=n)
    images = rng.random((n, side, side)) * 0.1
    for i, label in enumerate(labels):
        half = slice(0, side // 2) if label == 0 else slice(side // 2, side)
        images[i][:, half] += 0.8
    return np.clip(images, 0, 1), labels.astype(np.int64)


def tiny_model(binary_aware=False, stateless=False, time_steps=4):
    return SpikingClassifier.mlp(
        input_size=36, hidden_size=24, num_classes=2,
        time_steps=time_steps, binary_aware=binary_aware,
        stateless=stateless, seed=0,
    )


class TestSpikingClassifier:
    def test_forward_rate_logits_in_unit_interval(self):
        model = tiny_model()
        images, _ = tiny_dataset(8)
        rates = model.forward(images).numpy()
        assert rates.shape == (8, 2)
        assert (rates >= 0).all() and (rates <= 1).all()

    def test_spike_raster_shape_and_binary(self):
        model = tiny_model(time_steps=3)
        images, _ = tiny_dataset(4)
        raster = model.spike_raster(images)
        assert raster.shape == (3, 4, 2)
        assert set(np.unique(raster)) <= {0.0, 1.0}

    def test_predict_is_deterministic(self):
        model = tiny_model()
        images, _ = tiny_dataset(6)
        np.testing.assert_array_equal(model.predict(images),
                                      model.predict(images))

    def test_invalid_time_steps(self):
        with pytest.raises(ConfigurationError):
            SpikingClassifier(tiny_model().network, time_steps=0)

    def test_linear_layers_enumerated_in_order(self):
        model = tiny_model()
        layers = model.linear_layers()
        assert [l.in_features for l in layers] == [36, 24]


class TestTrainer:
    def test_training_improves_accuracy(self):
        images, labels = tiny_dataset(120)
        model = tiny_model()
        trainer = Trainer(model, TrainerConfig(epochs=6, batch_size=16,
                                               learning_rate=5e-3))
        before = trainer.evaluate(images, labels)
        trainer.fit(images, labels)
        after = trainer.evaluate(images, labels)
        assert after > before
        assert after >= 0.85

    def test_history_recorded(self):
        images, labels = tiny_dataset(40)
        trainer = Trainer(tiny_model(), TrainerConfig(epochs=2, batch_size=8))
        history = trainer.fit(images, labels)
        assert len(history.losses) == 2
        assert len(history.train_accuracies) == 2

    def test_loss_decreases(self):
        images, labels = tiny_dataset(120)
        trainer = Trainer(tiny_model(), TrainerConfig(epochs=5, batch_size=16,
                                                      learning_rate=5e-3))
        history = trainer.fit(images, labels)
        assert history.losses[-1] < history.losses[0]

    def test_mismatched_inputs_rejected(self):
        trainer = Trainer(tiny_model())
        with pytest.raises(TrainingError):
            trainer.fit(np.zeros((3, 6, 6)), np.zeros(2, dtype=int))
        with pytest.raises(TrainingError):
            trainer.fit(np.zeros((0, 6, 6)), np.zeros(0, dtype=int))

    def test_binary_aware_training_converges(self):
        images, labels = tiny_dataset(120)
        model = tiny_model(binary_aware=True)
        trainer = Trainer(model, TrainerConfig(epochs=8, batch_size=16,
                                               learning_rate=5e-3))
        trainer.fit(images, labels)
        assert trainer.evaluate(images, labels) >= 0.8

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            TrainerConfig(epochs=0)
        with pytest.raises(ConfigurationError):
            TrainerConfig(learning_rate=0)


class TestMetrics:
    def test_accuracy(self):
        assert accuracy(np.array([1, 2, 3]), np.array([1, 0, 3])) == pytest.approx(2 / 3)

    def test_consistency_symmetric(self):
        a, b = np.array([1, 2, 3]), np.array([1, 9, 3])
        assert consistency(a, b) == consistency(b, a) == pytest.approx(2 / 3)

    def test_shape_validation(self):
        with pytest.raises(ConfigurationError):
            accuracy(np.array([1]), np.array([1, 2]))
        with pytest.raises(ConfigurationError):
            consistency(np.array([]), np.array([]))


class TestBinarization:
    def trained(self):
        images, labels = tiny_dataset(120)
        model = tiny_model(binary_aware=True)
        Trainer(model, TrainerConfig(epochs=8, batch_size=16,
                                     learning_rate=5e-3)).fit(images, labels)
        return model, images, labels

    def test_binarized_weights_are_signs(self):
        model, _, _ = self.trained()
        net = binarize_network(model)
        for layer in net.layers:
            assert set(np.unique(layer.signed_weights)) <= {-1, 1}
            assert (layer.thresholds >= 1).all()

    def test_binarized_network_tracks_model(self):
        """Binary-aware trained nets survive 1-bit conversion with high
        agreement (the point of section 5.1)."""
        model, images, labels = self.trained()
        net = binarize_network(model)
        encoder = PoissonEncoder(seed=model.encoder_seed)
        trains = encoder.encode_steps(images.reshape(len(images), -1),
                                      model.time_steps)
        agreement = consistency(net.predict(trains), model.predict(images))
        assert agreement >= 0.85

    def test_quantized_magnitudes_bounded(self):
        model, _, _ = self.trained()
        net = quantize_network(model, bits=2)
        for layer in net.layers:
            assert layer.max_strength <= 3

    def test_quantize_bits_validation(self):
        model, _, _ = self.trained()
        with pytest.raises(ConfigurationError):
            quantize_network(model, bits=0)

    def test_layer_width_mismatch_rejected(self):
        from repro.snn.binarize import BinarizedLayer, BinarizedNetwork

        a = BinarizedLayer(np.ones((4, 3), dtype=int), np.ones(3, dtype=int))
        b = BinarizedLayer(np.ones((5, 2), dtype=int), np.ones(2, dtype=int))
        with pytest.raises(ConfigurationError):
            BinarizedNetwork([a, b])

    def test_forward_step_integer_semantics(self):
        from repro.snn.binarize import BinarizedLayer

        layer = BinarizedLayer(
            np.array([[1, -1], [1, 1], [1, -1]]), np.array([2, 1])
        )
        out = layer.forward(np.array([[1, 1, 1], [1, 0, 0]]))
        # Neuron 0: sums 3 and 1 vs threshold 2; neuron 1: sums -1 and -1.
        np.testing.assert_array_equal(out, [[1, 0], [0, 0]])

    def test_membrane_bounds_bracket_running_sum(self):
        from repro.snn.binarize import BinarizedLayer

        layer = BinarizedLayer(
            np.array([[1, -1], [-1, 1], [1, 1]]), np.array([1, 1])
        )
        spikes = np.array([[1, 1, 1]])
        low, high = layer.membrane_bounds(spikes)
        assert low <= -1 and high >= 2
