"""Tests for trainer extensions: LR decay, validation and early stop."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, TrainingError
from repro.snn import SpikingClassifier, Trainer, TrainerConfig


def toy(n=100, seed=0):
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, 2, size=n)
    images = rng.random((n, 4, 4)) * 0.1
    for i, label in enumerate(labels):
        sl = slice(0, 2) if label == 0 else slice(2, 4)
        images[i][:, sl] += 0.8
    return np.clip(images, 0, 1), labels.astype(np.int64)


def model():
    return SpikingClassifier.mlp(input_size=16, hidden_size=12,
                                 num_classes=2, time_steps=3, seed=0)


class TestLRDecay:
    def test_learning_rate_decays_per_epoch(self):
        images, labels = toy()
        trainer = Trainer(model(), TrainerConfig(
            epochs=3, batch_size=25, learning_rate=1e-2, lr_decay=0.5,
        ))
        trainer.fit(images, labels)
        assert trainer.optimizer.lr == pytest.approx(1e-2 * 0.5 ** 3)

    def test_no_decay_by_default(self):
        images, labels = toy()
        trainer = Trainer(model(), TrainerConfig(epochs=2, batch_size=25))
        trainer.fit(images, labels)
        assert trainer.optimizer.lr == pytest.approx(1e-3)

    def test_decay_validation(self):
        with pytest.raises(ConfigurationError):
            TrainerConfig(lr_decay=0.0)
        with pytest.raises(ConfigurationError):
            TrainerConfig(lr_decay=1.5)


class TestValidationAndEarlyStop:
    def test_validation_curve_recorded(self):
        images, labels = toy()
        trainer = Trainer(model(), TrainerConfig(epochs=3, batch_size=25,
                                                 learning_rate=5e-3))
        history = trainer.fit(images[:80], labels[:80],
                              val_images=images[80:],
                              val_labels=labels[80:])
        assert len(history.val_accuracies) == 3
        assert all(0 <= acc <= 1 for acc in history.val_accuracies)

    def test_early_stopping_halts_training(self):
        images, labels = toy()
        # Patience 1 with many epochs: training must stop well short.
        trainer = Trainer(model(), TrainerConfig(
            epochs=30, batch_size=25, learning_rate=5e-3, patience=1,
        ))
        history = trainer.fit(images[:80], labels[:80],
                              val_images=images[80:],
                              val_labels=labels[80:])
        assert history.stopped_early
        assert len(history.losses) < 30

    def test_patience_requires_validation(self):
        images, labels = toy()
        trainer = Trainer(model(), TrainerConfig(epochs=2, patience=1))
        with pytest.raises(TrainingError):
            trainer.fit(images, labels)

    def test_patience_validation(self):
        with pytest.raises(ConfigurationError):
            TrainerConfig(patience=0)
