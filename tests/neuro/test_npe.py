"""Tests for the NPE: counter arithmetic, thresholds, protocol, and
behavioural/gate-level equivalence (paper section 4.1, Fig. 9)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CapacityError, ConfigurationError, ProtocolError
from repro.neuro.npe import BehavioralNPE, GateLevelNPE
from repro.neuro.state_controller import Polarity
from repro.neuro.timing import NPEDriver, TimingPolicy
from repro.rsfq import Netlist, Simulator


class TestBehavioralCounter:
    def test_counts_up(self):
        npe = BehavioralNPE(n_sc=4)
        npe.set_polarity(Polarity.SET1)
        npe.excite(5)
        assert npe.counter_value == 5

    def test_counts_down(self):
        npe = BehavioralNPE(n_sc=4)
        npe.rst()
        npe.write_preload(9)
        npe.inhibit(4)
        assert npe.counter_value == 5

    def test_up_then_down_round_trip(self):
        npe = BehavioralNPE(n_sc=6)
        npe.excite(23)
        npe.inhibit(11)
        npe.excite(3)
        assert npe.counter_value == 15

    def test_overflow_wraps_and_fires(self):
        npe = BehavioralNPE(n_sc=3)
        npe.rst()
        npe.write_preload(7)
        assert npe.excite(1) == 1
        assert npe.counter_value == 0
        assert npe.fire_count == 1

    def test_underflow_wraps_and_is_flagged(self):
        npe = BehavioralNPE(n_sc=3)
        assert npe.inhibit(1) == 1  # 0 - 1 wraps
        assert npe.counter_value == 7
        assert npe.underflow_count == 1
        assert npe.fire_count == 0


class TestBehavioralThreshold:
    def test_fires_exactly_at_threshold(self):
        npe = BehavioralNPE(n_sc=5)
        npe.rst()
        npe.configure_threshold(7)
        assert npe.excite(6) == 0
        assert npe.excite(1) == 1

    def test_membrane_tracks_net_input(self):
        npe = BehavioralNPE(n_sc=6)
        npe.rst()
        npe.configure_threshold(20)
        npe.excite(5)
        npe.inhibit(2)
        assert npe.membrane == 3

    def test_threshold_bounds(self):
        npe = BehavioralNPE(n_sc=3)
        npe.rst()
        with pytest.raises(CapacityError):
            npe.configure_threshold(0)
        with pytest.raises(CapacityError):
            npe.configure_threshold(9)
        npe.configure_threshold(8)  # exactly 2**3 is representable

    def test_rst_reads_counter_and_clears(self):
        npe = BehavioralNPE(n_sc=4)
        npe.excite(6)
        assert npe.rst() == 6
        assert npe.counter_value == 0
        assert npe.rst() == 0

    def test_input_before_set_rejected(self):
        npe = BehavioralNPE(n_sc=4)
        npe.rst()
        with pytest.raises(ProtocolError):
            npe.pulse()

    def test_preload_bounds(self):
        npe = BehavioralNPE(n_sc=3)
        npe.rst()
        with pytest.raises(CapacityError):
            npe.write_preload(8)
        with pytest.raises(CapacityError):
            npe.write_preload(-1)

    def test_needs_at_least_one_sc(self):
        with pytest.raises(ConfigurationError):
            BehavioralNPE(n_sc=0)

    @given(
        n_sc=st.integers(min_value=2, max_value=8),
        threshold=st.integers(min_value=1, max_value=255),
        pulses=st.integers(min_value=0, max_value=300),
    )
    @settings(max_examples=80, deadline=None)
    def test_if_neuron_semantics(self, n_sc, threshold, pulses):
        """Preloaded chain fires exactly floor((preload+pulses)/2**n) times:
        the integrate-and-fire contract of the counter construction."""
        capacity = 1 << n_sc
        if threshold > capacity:
            threshold = capacity
        npe = BehavioralNPE(n_sc=n_sc)
        npe.rst()
        npe.configure_threshold(threshold)
        fires = npe.excite(pulses)
        expected = (capacity - threshold + pulses) // capacity
        assert fires == expected
        if pulses < threshold:
            assert fires == 0
            assert npe.membrane == pulses


def gate_npe(n_sc):
    net = Netlist("npe")
    npe = GateLevelNPE(net, "npe0", n_sc=n_sc)
    sim = Simulator(net)
    return npe, NPEDriver(sim, npe), sim


class TestGateLevelNPE:
    def test_counter_increments(self):
        npe, drv, sim = gate_npe(4)
        drv.reset()
        drv.set_polarity(Polarity.SET1)
        drv.pulses(5)
        drv.run()
        assert npe.counter_value == 5
        assert sim.violations == []

    def test_threshold_fire(self):
        npe, drv, sim = gate_npe(4)
        drv.reset()
        drv.configure_threshold(3)
        drv.set_polarity(Polarity.SET1)
        drv.pulses(2)
        drv.run()
        assert npe.fire_times == []
        drv.pulses(1)
        drv.run()
        assert len(npe.fire_times) == 1
        assert sim.violations == []

    def test_down_count(self):
        npe, drv, sim = gate_npe(4)
        drv.reset()
        drv.write_preload(10)
        drv.set_polarity(Polarity.SET0)
        drv.pulses(3)
        drv.run()
        assert npe.counter_value == 7
        assert sim.violations == []

    def test_reset_reads_set_bits(self):
        npe, drv, sim = gate_npe(4)
        drv.reset()
        drv.write_preload(0b1010)
        drv.reset()
        drv.run()
        assert npe.read_times(1) and npe.read_times(3)
        assert not npe.read_times(0) and not npe.read_times(2)
        assert npe.counter_value == 0

    def test_state_preservation_across_streams(self):
        """The membrane survives between input batches with no storage --
        the state-preservation property the bit-slice method relies on."""
        npe, drv, sim = gate_npe(5)
        drv.reset()
        drv.configure_threshold(9)
        drv.set_polarity(Polarity.SET1)
        drv.pulses(4)
        drv.run()
        mid = npe.counter_value
        drv.set_polarity(Polarity.SET1)  # re-arm between batches
        drv.pulses(5)
        drv.run()
        assert npe.counter_value == (mid + 5) % 32
        assert len(npe.fire_times) == 1
        assert sim.violations == []

    def test_invalid_preload_rejected(self):
        npe, drv, sim = gate_npe(3)
        with pytest.raises(ConfigurationError):
            drv.write_preload(8)

    def test_bad_bus_name_rejected(self):
        npe, _, _ = gate_npe(2)
        with pytest.raises(ProtocolError):
            npe.bus_input("nonsense")


class TestEquivalence:
    @given(
        n_sc=st.integers(min_value=2, max_value=5),
        threshold=st.integers(min_value=1, max_value=20),
        batches=st.lists(
            st.tuples(st.booleans(), st.integers(min_value=0, max_value=12)),
            min_size=1,
            max_size=4,
        ),
    )
    @settings(max_examples=15, deadline=None)
    def test_gate_level_equals_behavioural(self, n_sc, threshold, batches):
        """Random mixed up/down pulse batches leave both NPE implementations
        with the same counter and the same number of output pulses."""
        capacity = 1 << n_sc
        threshold = min(threshold, capacity)

        beh = BehavioralNPE(n_sc=n_sc)
        beh.rst()
        beh.configure_threshold(threshold)
        beh_out = 0
        for is_up, count in batches:
            if is_up:
                beh_out += beh.excite(count)
            else:
                beh_out += beh.inhibit(count)

        npe, drv, sim = gate_npe(n_sc)
        drv.reset()
        drv.configure_threshold(threshold)
        for is_up, count in batches:
            drv.set_polarity(Polarity.SET1 if is_up else Polarity.SET0)
            drv.pulses(count)
        drv.run()

        assert npe.counter_value == beh.counter_value
        assert len(npe.fire_times) == beh_out
        assert sim.violations == []
