"""Golden pulse-trace snapshot tests for the Fig. 16 bring-up circuit.

The 2-NPE bring-up script (`two_npe_bringup_trace`) drives the fabricated
chip's configuration -- one row NPE relaying into one column NPE -- through
a fixed little inference.  At ``jitter_ps=0`` the gate-level simulation is
fully deterministic, so the resulting :class:`PulseTrace` must match the
serialized reference in ``tests/golden/`` event for event.  Any change to
cell timing, netlist elaboration order, event-queue tie-breaking, or the
driver protocol shows up here as an exact-sequence diff.

Regenerate the golden file (after an *intentional* timing change) with::

    PYTHONPATH=src python -c "
    from repro.neuro.bringup import two_npe_bringup_trace
    two_npe_bringup_trace().save('tests/golden/two_npe_pulse_trace.json')"
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.errors import ConfigurationError
from repro.neuro.bringup import two_npe_bringup_trace
from repro.rsfq.waveform import PulseTrace

GOLDEN = Path(__file__).resolve().parents[1] / "golden" / "two_npe_pulse_trace.json"


@pytest.fixture(scope="module")
def golden_trace() -> PulseTrace:
    return PulseTrace.load(GOLDEN)


class TestGoldenSnapshot:
    def test_bringup_trace_matches_golden_exactly(self, golden_trace):
        trace = two_npe_bringup_trace()
        assert trace.events() == golden_trace.events()
        assert trace == golden_trace

    def test_golden_trace_is_nonempty(self, golden_trace):
        events = golden_trace.events()
        assert len(events) > 100  # a real inference, not a stub
        # Events are (component, port, time) with monotone non-decreasing
        # times: the trace records delivery order.
        times = [t for _, _, t in events]
        assert times == sorted(times)

    def test_golden_trace_contains_a_fire(self, golden_trace):
        # The script's third excitatory pass crosses the threshold; the
        # column NPE's fire path must appear in the reference trace.
        components = {component for component, _, _ in golden_trace.events()}
        assert any("col0" in c for c in components)
        assert any("rowline0" in c for c in components)

    def test_trace_round_trips_through_payload(self, golden_trace):
        payload = golden_trace.to_payload()
        assert payload["version"] == 1
        restored = PulseTrace.from_payload(payload)
        assert restored == golden_trace

    def test_golden_file_is_versioned_json(self):
        payload = json.loads(GOLDEN.read_text())
        assert payload["version"] == 1
        assert all({"component", "port", "time"} <= set(e) for e in payload["events"])


class TestJitterDeterminism:
    def test_identical_seeds_give_identical_traces(self):
        a = two_npe_bringup_trace(jitter_ps=1.5, seed=7)
        b = two_npe_bringup_trace(jitter_ps=1.5, seed=7)
        assert a == b
        assert a.events() == b.events()

    def test_different_seeds_give_different_traces(self):
        a = two_npe_bringup_trace(jitter_ps=1.5, seed=7)
        b = two_npe_bringup_trace(jitter_ps=1.5, seed=8)
        assert a != b

    def test_jittered_trace_differs_from_clean(self, golden_trace):
        jittered = two_npe_bringup_trace(jitter_ps=1.5, seed=7)
        assert jittered != golden_trace
        # ... but only in timing, not in which pulses exist.
        assert len(jittered.events()) == len(golden_trace.events())

    def test_zero_jitter_ignores_seed(self, golden_trace):
        # With no jitter the seed must not perturb the event sequence.
        assert two_npe_bringup_trace(jitter_ps=0.0, seed=123) == golden_trace


class TestParallelEquivalence:
    """The parallel engine must reproduce the golden trace bit-for-bit."""

    def test_parallel_bringup_matches_golden_exactly(self, golden_trace):
        trace = two_npe_bringup_trace(engine="parallel", parts=2)
        assert trace.events() == golden_trace.events()
        assert trace == golden_trace

    def test_parallel_matches_sequential_under_jitter(self):
        # Per-wire jitter streams are keyed by wire identity, so the
        # sequential engine (in jitter_mode="wire") and the partitioned
        # engine consume identical streams.
        seq = two_npe_bringup_trace(jitter_ps=1.0, seed=5,
                                    jitter_mode="wire")
        par = two_npe_bringup_trace(jitter_ps=1.0, seed=5,
                                    engine="parallel", parts=2)
        assert par == seq
        assert par.events() == seq.events()

    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigurationError):
            two_npe_bringup_trace(engine="gpu")


class TestPayloadValidation:
    def test_malformed_payload_rejected(self):
        with pytest.raises(ConfigurationError):
            PulseTrace.from_payload({"events": []})  # missing version
        with pytest.raises(ConfigurationError):
            PulseTrace.from_payload({"version": 99, "events": []})
        with pytest.raises(ConfigurationError):
            PulseTrace.from_payload({"version": 1, "events": [{"component": "x"}]})

    def test_save_load_round_trip(self, tmp_path):
        trace = two_npe_bringup_trace()
        path = tmp_path / "trace.json"
        trace.save(path)
        assert PulseTrace.load(path) == trace
