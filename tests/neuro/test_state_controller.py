"""Tests for the state controller: behavioural model, gate-level circuit,
and equivalence between the two (paper Figs. 4, 5, 8)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ProtocolError
from repro.neuro.state_controller import (
    BehavioralStateController,
    GateLevelStateController,
    Polarity,
)
from repro.rsfq import Netlist, Simulator, library


class TestBehavioralSC:
    def test_set1_emits_on_1_to_0_flip(self):
        sc = BehavioralStateController()
        sc.set_gate(Polarity.SET1)
        assert sc.pulse() is False  # 0 -> 1
        assert sc.pulse() is True   # 1 -> 0

    def test_set0_emits_on_0_to_1_flip(self):
        sc = BehavioralStateController()
        sc.set_gate(Polarity.SET0)
        assert sc.pulse() is True   # 0 -> 1
        assert sc.pulse() is False  # 1 -> 0

    def test_input_without_set_rejected(self):
        sc = BehavioralStateController()
        with pytest.raises(ProtocolError):
            sc.pulse()

    def test_rst_reads_and_clears(self):
        sc = BehavioralStateController()
        sc.set_gate(Polarity.SET1)
        sc.pulse()
        assert sc.state is True
        assert sc.rst() is True
        assert sc.state is False
        assert sc.gate is None
        assert sc.rst() is False

    def test_write_must_follow_rst(self):
        sc = BehavioralStateController()
        sc.set_gate(Polarity.SET1)
        with pytest.raises(ProtocolError):
            sc.write()
        sc.rst()
        sc.write()
        assert sc.state is True

    def test_set_gates_mutually_exclusive(self):
        sc = BehavioralStateController()
        sc.set_gate(Polarity.SET0)
        sc.set_gate(Polarity.SET1)
        assert sc.gate is Polarity.SET1

    def test_state_diagram_of_fig5(self):
        """Walk the exact transitions of the paper's Fig. 5."""
        sc = BehavioralStateController()
        sc.rst()
        sc.set_gate(Polarity.SET0)  # NDRO0 set: out on 0->1
        assert sc.pulse() is True
        assert sc.pulse() is False
        sc.rst()
        sc.set_gate(Polarity.SET1)  # NDRO1 set: out on 1->0
        assert sc.pulse() is False
        assert sc.pulse() is True


def build_gate_sc():
    net = Netlist("sc")
    sc = GateLevelStateController(net, "sc0")
    probe = net.add(library.Probe("out"))
    sc.connect_out(probe, "din")
    return net, sc, probe


class GateDriver:
    """Minimal time-cursor scheduling for a lone gate-level SC."""

    GAP = 150.0

    def __init__(self, sim, sc):
        self.sim, self.sc, self.t = sim, sc, 0.0

    def pulse(self, channel):
        cell, port = self.sc.input_cell(channel)
        self.sim.schedule_input(cell, port, self.t)
        self.t += self.GAP
        self.sim.run()


class TestGateLevelSC:
    def test_emits_per_armed_polarity(self):
        net, sc, probe = build_gate_sc()
        drv = GateDriver(Simulator(net), sc)
        drv.pulse("set1")
        drv.pulse("in")  # 0 -> 1: silent
        assert probe.times == []
        drv.pulse("in")  # 1 -> 0: emits
        assert len(probe.times) == 1

    def test_set0_polarity(self):
        net, sc, probe = build_gate_sc()
        drv = GateDriver(Simulator(net), sc)
        drv.pulse("set0")
        drv.pulse("in")
        assert len(probe.times) == 1

    def test_unarmed_sc_is_silent(self):
        net, sc, probe = build_gate_sc()
        drv = GateDriver(Simulator(net), sc)
        drv.pulse("in")
        drv.pulse("in")
        assert probe.times == []

    def test_rst_read_reports_state(self):
        net, sc, probe = build_gate_sc()
        drv = GateDriver(Simulator(net), sc)
        drv.pulse("set1")
        drv.pulse("in")  # state -> 1
        drv.pulse("rst")
        assert len(sc.read_probe.times) == 1
        assert sc.state is False
        # Second reset reads nothing (state already 0).
        drv.pulse("rst")
        assert len(sc.read_probe.times) == 1

    def test_rst_disarms_gates(self):
        net, sc, probe = build_gate_sc()
        drv = GateDriver(Simulator(net), sc)
        drv.pulse("set1")
        drv.pulse("rst")
        assert sc.armed is None
        drv.pulse("set0")
        assert sc.armed is Polarity.SET0

    def test_set_channels_mutually_exclusive(self):
        net, sc, probe = build_gate_sc()
        drv = GateDriver(Simulator(net), sc)
        drv.pulse("set0")
        drv.pulse("set1")
        assert sc.armed is Polarity.SET1
        drv.pulse("set0")
        assert sc.armed is Polarity.SET0

    def test_write_sets_bit_without_emitting(self):
        net, sc, probe = build_gate_sc()
        drv = GateDriver(Simulator(net), sc)
        drv.pulse("rst")
        drv.pulse("write")
        assert sc.state is True
        assert probe.times == []

    def test_reset_of_written_bit_emits_no_carry(self):
        """Clearing a set SC must not leak a pulse out (gates disarmed)."""
        net, sc, probe = build_gate_sc()
        drv = GateDriver(Simulator(net), sc)
        drv.pulse("rst")
        drv.pulse("write")
        drv.pulse("set1")
        drv.pulse("rst")
        assert sc.state is False
        assert probe.times == []

    def test_no_constraint_violations_under_protocol(self):
        net, sc, probe = build_gate_sc()
        sim = Simulator(net)
        drv = GateDriver(sim, sc)
        for ch in ("rst", "write", "set1", "in", "in", "rst", "set0", "in"):
            drv.pulse(ch)
        assert sim.violations == []

    def test_unknown_channel_rejected(self):
        net, sc, _ = build_gate_sc()
        with pytest.raises(ProtocolError):
            sc.input_cell("bogus")

    def test_jj_count_matches_histogram(self):
        net, sc, _ = build_gate_sc()
        hist = {}
        for cell in net.cells.values():
            if cell.name.startswith("sc0."):
                hist[type(cell).__name__] = hist.get(type(cell).__name__, 0) + 1
        hist.pop("Probe", None)
        assert hist == dict(GateLevelStateController.CELL_HISTOGRAM)
        assert GateLevelStateController.jj_count() == sum(
            getattr(library, k).JJ_COUNT * v for k, v in hist.items()
        )


class TestEquivalence:
    @given(
        ops=st.lists(
            st.sampled_from(["in", "rst", "write", "set0", "set1"]),
            min_size=1,
            max_size=25,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_behavioural_matches_gate_level(self, ops):
        """Any protocol-legal channel sequence produces identical state and
        output pulse counts on both SC implementations."""
        beh = BehavioralStateController()
        net, gate, probe = build_gate_sc()
        drv = GateDriver(Simulator(net), gate)

        # Sanitise to a protocol-legal sequence the behavioural model
        # accepts: writes only directly after rst, inputs only when armed.
        reset_fresh = True
        armed = None
        beh_out = 0
        for op in ops:
            if op == "write" and (not reset_fresh or armed is not None):
                continue
            if op == "in" and armed is None:
                continue
            if op == "rst":
                beh.rst()
                reset_fresh, armed = True, None
            elif op == "write":
                beh.write()
            elif op in ("set0", "set1"):
                pol = Polarity.SET0 if op == "set0" else Polarity.SET1
                beh.set_gate(pol)
                armed = pol
                reset_fresh = False
            else:
                if beh.pulse():
                    beh_out += 1
            drv.pulse(op)

        assert gate.state == beh.state
        assert gate.armed == beh.gate
        assert len(probe.times) == beh_out
        assert drv.sim.violations == []
