"""Tests for pulse-gain weight structures (paper Fig. 10)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.neuro.weights import (
    BehavioralWeightStructure,
    GateLevelWeightStructure,
)
from repro.rsfq import Netlist, Simulator, library


class TestBehavioralWeight:
    def test_starts_disconnected(self):
        xp = BehavioralWeightStructure()
        assert not xp.enabled
        assert xp.pulses_out(1) == 0

    def test_gain_multiplies_pulses(self):
        xp = BehavioralWeightStructure(max_strength=4)
        xp.configure(3)
        assert xp.pulses_out(1) == 3
        assert xp.pulses_out(2) == 6

    def test_reconfigure_counts_reloads(self):
        xp = BehavioralWeightStructure(max_strength=2)
        assert xp.configure(1) is True
        assert xp.configure(1) is False  # unchanged: free (section 4.2.2)
        assert xp.configure(2) is True
        assert xp.reload_count == 2

    def test_strength_bounds(self):
        xp = BehavioralWeightStructure(max_strength=2)
        with pytest.raises(ConfigurationError):
            xp.configure(3)
        with pytest.raises(ConfigurationError):
            xp.configure(-1)

    def test_invalid_max_strength(self):
        with pytest.raises(ConfigurationError):
            BehavioralWeightStructure(max_strength=0)

    def test_negative_pulse_count_rejected(self):
        xp = BehavioralWeightStructure()
        with pytest.raises(ConfigurationError):
            xp.pulses_out(-1)


def gate_weight(max_strength):
    net = Netlist("w")
    xp = GateLevelWeightStructure(net, "xp", max_strength=max_strength)
    probe = net.add(library.Probe("col"))
    cell, port = xp.column_output
    net.connect(cell, port, probe, "din")
    return net, xp, probe


class TestGateLevelWeight:
    def test_disarmed_structure_blocks_pulses(self):
        net, xp, probe = gate_weight(3)
        sim = Simulator(net)
        cell, port = xp.axon_input
        sim.schedule_input(cell, port, 0.0)
        sim.run()
        assert probe.times == []
        assert xp.strength == 0

    @pytest.mark.parametrize("strength", [1, 2, 3])
    def test_armed_branches_set_the_gain(self, strength):
        net, xp, probe = gate_weight(3)
        sim = Simulator(net)
        for k in range(strength):
            cell, port = xp.switch_input(k, "din")
            sim.schedule_input(cell, port, 0.0)
        sim.run()
        assert xp.strength == strength
        cell, port = xp.axon_input
        sim.schedule_input(cell, port, 100.0)
        sim.run()
        assert len(probe.times) == strength
        assert sim.violations == []

    def test_expanded_pulses_are_staggered(self):
        """Output pulses must be separated enough for the NPE TFF chain."""
        net, xp, probe = gate_weight(3)
        sim = Simulator(net)
        for k in range(3):
            cell, port = xp.switch_input(k, "din")
            sim.schedule_input(cell, port, 0.0)
        cell, port = xp.axon_input
        sim.schedule_input(cell, port, 100.0)
        sim.run()
        gaps = [b - a for a, b in zip(probe.times, probe.times[1:])]
        assert all(gap >= 39.9 for gap in gaps)

    def test_disarm_reduces_gain(self):
        net, xp, probe = gate_weight(2)
        sim = Simulator(net)
        for k in range(2):
            cell, port = xp.switch_input(k, "din")
            sim.schedule_input(cell, port, 0.0)
        sim.run()
        cell, port = xp.switch_input(1, "rst")
        sim.schedule_input(cell, port, 100.0)
        sim.run()
        assert xp.strength == 1
        a_cell, a_port = xp.axon_input
        sim.schedule_input(a_cell, a_port, 300.0)
        sim.run()
        assert len(probe.times) == 1

    def test_reload_is_off_the_inference_path(self):
        """Weight control channels reach the NDROs without passing through
        the axon/column lines: reconfiguring mid-stream never produces
        column pulses by itself (section 4.2.2)."""
        net, xp, probe = gate_weight(2)
        sim = Simulator(net)
        for k in range(2):
            cell, port = xp.switch_input(k, "din")
            sim.schedule_input(cell, port, 0.0)
        sim.run()
        assert probe.times == []

    def test_bad_channel_rejected(self):
        net, xp, _ = gate_weight(1)
        with pytest.raises(ConfigurationError):
            xp.switch_input(0, "clk")

    @given(strength=st.integers(min_value=0, max_value=4),
           pulses=st.integers(min_value=0, max_value=4))
    @settings(max_examples=20, deadline=None)
    def test_gate_level_matches_behavioural_gain(self, strength, pulses):
        beh = BehavioralWeightStructure(max_strength=4)
        beh.configure(strength)

        net, xp, probe = gate_weight(4)
        sim = Simulator(net)
        for k in range(strength):
            cell, port = xp.switch_input(k, "din")
            sim.schedule_input(cell, port, 0.0)
        sim.run()
        a_cell, a_port = xp.axon_input
        for p in range(pulses):
            sim.schedule_input(a_cell, a_port, 200.0 + 400.0 * p)
        sim.run()
        assert len(probe.times) == beh.pulses_out(pulses)
        assert sim.violations == []
