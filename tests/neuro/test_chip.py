"""Tests for the SUSHI chip: behavioural protocol, gate-level instance,
and cross-validation between the two (paper section 4.2, Fig. 12)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CapacityError, ConfigurationError, ProtocolError
from repro.neuro.chip import (
    BehavioralChip,
    ChipConfig,
    ChipDriver,
    GateLevelChip,
)
from repro.neuro.state_controller import Polarity


class TestChipConfig:
    def test_defaults(self):
        cfg = ChipConfig()
        assert cfg.npe_count == 2
        assert cfg.synapse_count == 1
        assert cfg.state_capacity == 1024

    def test_paper_scaling_of_npes_and_synapses(self):
        """"a 4x4 network with 8 neurons has 16 synapses" (section 6.3)."""
        cfg = ChipConfig(n=4)
        assert cfg.npe_count == 8
        assert cfg.synapse_count == 16

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ConfigurationError):
            ChipConfig(n=0)
        with pytest.raises(ConfigurationError):
            ChipConfig(sc_per_npe=0)
        with pytest.raises(ConfigurationError):
            ChipConfig(max_strength=0)


class TestBehavioralChip:
    def make(self, n=2, sc=5, strength=2):
        return BehavioralChip(ChipConfig(n=n, sc_per_npe=sc,
                                         max_strength=strength))

    def test_excitatory_pass_accumulates_and_fires(self):
        chip = self.make()
        chip.begin_timestep([2, 3])
        chip.configure_weights([[1, 1], [1, 1]])
        chip.run_pass(Polarity.SET1, [True, True])
        assert chip.read_out() == [True, False]
        assert chip.membranes()[1] == 2

    def test_inhibitory_pass_subtracts(self):
        chip = self.make()
        chip.begin_timestep([10, 10])
        chip.configure_weights([[2, 0], [0, 0]])
        chip.run_pass(Polarity.SET1, [True, False])
        chip.configure_weights([[0, 0], [1, 0]])
        chip.run_pass(Polarity.SET0, [False, True])
        assert chip.membranes()[0] == 1

    def test_underflow_is_a_spurious_output(self):
        """Down-counting through zero emits an erroneous output pulse --
        the failure mode the bucketing algorithm exists to prevent."""
        chip = self.make()
        chip.begin_timestep([4, 4])
        chip.configure_weights([[1, 0], [0, 0]])
        # Inhibition drives column 0 below the representable floor.
        reached = 0
        for _ in range(chip.config.state_capacity - 4 + 1):
            reached += sum(chip.run_pass(Polarity.SET0, [True, False]))
        assert reached >= 1
        assert chip.underflow_counts()[0] >= 1
        assert chip.read_out()[0] is True  # indistinguishable at the output

    def test_state_preserved_across_passes(self):
        chip = self.make(sc=6)
        chip.begin_timestep([9, 9])
        chip.configure_weights([[1, 0], [0, 0]])
        for _ in range(4):
            chip.run_pass(Polarity.SET1, [True, False])
        chip.configure_weights([[2, 0], [0, 0]])
        for _ in range(2):
            chip.run_pass(Polarity.SET1, [True, False])
        assert chip.membranes()[0] == 8
        assert chip.read_out() == [False, False]

    def test_begin_timestep_returns_previous_membrane_reads(self):
        chip = self.make()
        chip.begin_timestep([5, 5])
        chip.configure_weights([[1, 0], [0, 0]])
        chip.run_pass(Polarity.SET1, [True, False])
        reads = chip.begin_timestep([5, 5])
        capacity = chip.config.state_capacity
        assert reads[0] == capacity - 5 + 1  # preload + one pulse

    def test_reload_accounting_skips_unchanged(self):
        chip = self.make()
        chip.begin_timestep([5, 5])
        first = chip.configure_weights([[1, 1], [1, 1]])
        second = chip.configure_weights([[1, 1], [1, 2]])
        assert first == 4
        assert second == 1
        assert chip.reload_events == 5

    def test_synaptic_ops_counted_per_active_synapse(self):
        chip = self.make()
        chip.begin_timestep([20, 20])
        chip.configure_weights([[1, 1], [0, 1]])
        chip.run_pass(Polarity.SET1, [True, True])
        assert chip.synaptic_ops == 3

    def test_protocol_violations_rejected(self):
        chip = self.make()
        with pytest.raises(ProtocolError):
            chip.run_pass(Polarity.SET1, [True, False])
        with pytest.raises(ProtocolError):
            chip.read_out()

    def test_shape_validation(self):
        chip = self.make()
        with pytest.raises(ConfigurationError):
            chip.begin_timestep([1])
        chip.begin_timestep([1, 1])
        with pytest.raises(ConfigurationError):
            chip.configure_weights([[1, 1]])
        with pytest.raises(ConfigurationError):
            chip.run_pass(Polarity.SET1, [True])

    def test_weightless_chip_rejects_gains(self):
        chip = BehavioralChip(ChipConfig(n=1, with_weights=False))
        chip.begin_timestep([1])
        with pytest.raises(CapacityError):
            chip.configure_weights([[2]])
        chip.configure_weights([[1]])
        chip.run_pass(Polarity.SET1, [True])
        assert chip.read_out() == [True]


class TestGateLevelChip:
    def test_fabricated_two_npe_configuration(self):
        """The paper's fabricated chip: 2 NPEs (1x1 mesh), no weight
        structures; a relayed spike reaches the neuron and fires it."""
        chip = GateLevelChip(ChipConfig(n=1, sc_per_npe=6,
                                        with_weights=False))
        drv = ChipDriver(chip)
        drv.begin_timestep([2])
        drv.configure_weights([[1]])
        drv.run_pass(Polarity.SET1, [True])
        assert drv.read_out() == [False]
        drv.run_pass(Polarity.SET1, [True])
        assert drv.read_out() == [True]
        assert drv.sim.violations == []

    def test_weighted_mesh_gain(self):
        chip = GateLevelChip(ChipConfig(n=2, sc_per_npe=5, max_strength=2))
        drv = ChipDriver(chip)
        drv.begin_timestep([4, 4])
        drv.configure_weights([[2, 0], [0, 1]])
        drv.run_pass(Polarity.SET1, [True, True])
        drv.run_pass(Polarity.SET1, [True, True])
        # Column 0 accumulated 2+2, column 1 accumulated 1+1.
        assert drv.read_out() == [True, False]
        assert drv.sim.violations == []

    def test_timestep_reset_clears_membrane(self):
        chip = GateLevelChip(ChipConfig(n=1, sc_per_npe=5))
        drv = ChipDriver(chip)
        drv.begin_timestep([3])
        drv.configure_weights([[1]])
        drv.run_pass(Polarity.SET1, [True])
        drv.run_pass(Polarity.SET1, [True])
        drv.begin_timestep([3])
        drv.run_pass(Polarity.SET1, [True])
        assert drv.read_out() == [False]
        assert chip.col_npes[0].counter_value == (32 - 3) + 1


class TestCrossValidation:
    @given(
        data=st.data(),
        n=st.integers(min_value=1, max_value=2),
        sc=st.integers(min_value=4, max_value=5),
    )
    @settings(max_examples=8, deadline=None)
    def test_behavioural_equals_gate_level(self, data, n, sc):
        """Random weight/polarity/spike schedules produce identical
        read-outs on both chip implementations."""
        cfg = ChipConfig(n=n, sc_per_npe=sc, max_strength=2)
        beh = BehavioralChip(cfg)
        gate = GateLevelChip(cfg)
        drv = ChipDriver(gate)

        capacity = cfg.state_capacity
        thresholds = [
            data.draw(st.integers(min_value=2, max_value=capacity // 2))
            for _ in range(n)
        ]
        beh.begin_timestep(thresholds)
        drv.begin_timestep(thresholds)
        n_passes = data.draw(st.integers(min_value=1, max_value=3))
        for _ in range(n_passes):
            strengths = [
                [data.draw(st.integers(min_value=0, max_value=2))
                 for _ in range(n)]
                for _ in range(n)
            ]
            spikes = [data.draw(st.booleans()) for _ in range(n)]
            beh.configure_weights(strengths)
            drv.configure_weights(strengths)
            # Excitatory passes only: keeps the schedule underflow-free,
            # as a bucketed encoder guarantees.
            beh.run_pass(Polarity.SET1, spikes)
            drv.run_pass(Polarity.SET1, spikes)

        assert drv.read_out() == beh.read_out()
        assert drv.out_pulse_counts() == beh.out_pulse_counts()
        assert [npe.counter_value for npe in gate.col_npes] == [
            npe.counter_value for npe in beh.col_npes
        ]
        assert drv.sim.violations == []
