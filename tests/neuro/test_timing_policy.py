"""Unit tests for TimingPolicy and NPEDriver scheduling."""

import pytest

from repro.errors import ConfigurationError
from repro.neuro.npe import GateLevelNPE
from repro.neuro.state_controller import Polarity
from repro.neuro.timing import NPEDriver, TimingPolicy
from repro.rsfq import Netlist, Simulator
from repro.rsfq.constraints import TFF_MIN_INTERVAL


class TestTimingPolicy:
    def test_defaults_respect_tff_interval(self):
        policy = TimingPolicy()
        assert policy.input_interval > TFF_MIN_INTERVAL

    def test_settle_time_scales_with_chain(self):
        policy = TimingPolicy()
        assert policy.settle_time(10) > policy.settle_time(2)
        assert policy.settle_time(4) == pytest.approx(
            policy.phase_gap + 4 * policy.per_stage_ripple
        )

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TimingPolicy(input_interval=TFF_MIN_INTERVAL)
        with pytest.raises(ConfigurationError):
            TimingPolicy(control_interval=0.0)
        with pytest.raises(ConfigurationError):
            TimingPolicy(phase_gap=-1.0)


class TestNPEDriver:
    def make(self, n_sc=4):
        net = Netlist("npe")
        npe = GateLevelNPE(net, "npe", n_sc=n_sc)
        sim = Simulator(net)
        return npe, NPEDriver(sim, npe), sim

    def test_cursor_advances_monotonically(self):
        _, driver, _ = self.make()
        t0 = driver.cursor
        driver.reset()
        t1 = driver.cursor
        driver.set_polarity(Polarity.SET1)
        t2 = driver.cursor
        driver.pulses(3)
        t3 = driver.cursor
        assert t0 < t1 < t2 < t3

    def test_pulses_spaced_by_policy_interval(self):
        npe, driver, sim = self.make()
        driver.reset()
        driver.set_polarity(Polarity.SET1)
        driver.pulses(4)
        driver.run()
        # All four pulses arrived; spacing never violated the TFF window.
        assert npe.counter_value == 4
        assert sim.violations == []

    def test_zero_pulses_is_a_noop(self):
        _, driver, _ = self.make()
        driver.reset()
        before = driver.cursor
        driver.pulses(0)
        assert driver.cursor == before

    def test_negative_pulses_rejected(self):
        _, driver, _ = self.make()
        with pytest.raises(ConfigurationError):
            driver.pulses(-1)

    def test_bad_threshold_rejected(self):
        _, driver, _ = self.make(n_sc=3)
        driver.reset()
        with pytest.raises(ConfigurationError):
            driver.configure_threshold(9)
        with pytest.raises(ConfigurationError):
            driver.configure_threshold(0)

    def test_run_syncs_cursor_with_sim_time(self):
        _, driver, sim = self.make()
        driver.reset()
        driver.set_polarity(Polarity.SET1)
        driver.pulses(2)
        driver.run()
        assert driver.cursor >= sim.now
