"""Tests for fan-out/merge trees and the on-chip network structural
models (Fig. 11)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.neuro.network import MeshNetwork, NetworkStats, TreeNetwork, network_for
from repro.neuro.structure import (
    fanout_tree,
    fanout_tree_cost,
    merge_tree,
    merge_tree_cost,
)
from repro.rsfq import Netlist, Simulator, library


class TestFanoutTree:
    @given(n=st.integers(min_value=1, max_value=17))
    @settings(max_examples=20, deadline=None)
    def test_one_pulse_reaches_every_leaf_exactly_once(self, n):
        net = Netlist("fan")
        root, leaves = fanout_tree(net, "t", n)
        probes = []
        for i, leaf in enumerate(leaves):
            probe = net.add(library.Probe(f"p{i}"))
            net.connect(leaf[0], leaf[1], probe, "din", delay=0.0)
            probes.append(probe)
        sim = Simulator(net)
        sim.schedule_input(root[0], root[1], 0.0)
        sim.run()
        assert all(len(p.times) == 1 for p in probes)

    def test_cost_histogram_matches_construction(self):
        for n in (1, 2, 5, 8):
            net = Netlist("fan")
            fanout_tree(net, "t", n)
            hist = net.cell_histogram()
            assert hist == fanout_tree_cost(n)

    def test_invalid_size(self):
        with pytest.raises(ConfigurationError):
            fanout_tree(Netlist("x"), "t", 0)
        with pytest.raises(ConfigurationError):
            fanout_tree_cost(0)


class TestMergeTree:
    @given(n=st.integers(min_value=1, max_value=17))
    @settings(max_examples=20, deadline=None)
    def test_every_input_reaches_the_output(self, n):
        net = Netlist("merge")
        inputs, out = merge_tree(net, "m", n)
        probe = net.add(library.Probe("p"))
        net.connect(out[0], out[1], probe, "din", delay=0.0)
        sim = Simulator(net)
        for i, (cell, port) in enumerate(inputs):
            sim.schedule_input(cell, port, 100.0 * i)
        sim.run()
        assert len(probe.times) == n

    def test_cost_histogram_matches_construction(self):
        for n in (1, 2, 5, 8):
            net = Netlist("merge")
            merge_tree(net, "m", n)
            assert net.cell_histogram() == merge_tree_cost(n)

    def test_invalid_size(self):
        with pytest.raises(ConfigurationError):
            merge_tree(Netlist("x"), "m", -1)
        with pytest.raises(ConfigurationError):
            merge_tree_cost(0)


class TestNetworkModels:
    def test_mesh_counts(self):
        mesh = MeshNetwork(4)
        assert mesh.npe_count == 8
        assert mesh.synapse_count == 16
        stats = mesh.stats()
        assert stats.crosspoint_count == 16
        assert stats.line_crossings == 16
        assert stats.ndro_count == 16  # one switch per crosspoint at K=1

    def test_mesh_strength_scales_switches(self):
        assert MeshNetwork(2, max_strength=3).stats().ndro_count == 12

    def test_tree_counts(self):
        tree = TreeNetwork(8)
        stats = tree.stats()
        assert tree.npe_count == 16
        assert stats.line_crossings == 0
        assert stats.ndro_count == 0
        assert stats.spl_count == 7
        assert stats.cb_count == 7

    def test_mesh_vs_tree_tradeoff(self):
        """Fig. 11's trade-off: the mesh supports n^2 configurable
        synapses; the tree is far cheaper but only normalised weights."""
        mesh, tree = MeshNetwork(8).stats(), TreeNetwork(8).stats()
        assert mesh.synapse_count > tree.synapse_count
        assert mesh.total_line_span_units > tree.total_line_span_units

    def test_factory(self):
        assert isinstance(network_for("mesh", 2), MeshNetwork)
        assert isinstance(network_for("tree", 2), TreeNetwork)
        with pytest.raises(ConfigurationError):
            network_for("torus", 2)
        with pytest.raises(ConfigurationError):
            MeshNetwork(0)
        with pytest.raises(ConfigurationError):
            TreeNetwork(0)
        with pytest.raises(ConfigurationError):
            MeshNetwork(2, max_strength=0)

    def test_stats_type(self):
        assert isinstance(MeshNetwork(2).stats(), NetworkStats)
