"""Failure injection: what breaks the chip, and what it tolerates.

The gate-level chip must tolerate realistic fabrication/thermal timing
variation (small wire-delay jitter) and must *detectably* fail -- through
constraint violations or wrong counters -- when pushed beyond it.  These
tests document the margins rather than assuming them.
"""

import pytest

from repro.errors import CapacityError, ConfigurationError, ProtocolError
from repro.neuro.chip import BehavioralChip, ChipConfig, ChipDriver, GateLevelChip
from repro.neuro.npe import BehavioralNPE, GateLevelNPE
from repro.neuro.state_controller import Polarity
from repro.neuro.timing import NPEDriver, TimingPolicy
from repro.rsfq import Netlist, Simulator


def npe_run(jitter, seed, pulses=9, threshold=6, n_sc=4):
    net = Netlist("npe")
    npe = GateLevelNPE(net, "npe", n_sc=n_sc)
    sim = Simulator(net, jitter_ps=jitter, seed=seed)
    driver = NPEDriver(sim, npe)
    driver.reset()
    driver.configure_threshold(threshold)
    driver.set_polarity(Polarity.SET1)
    driver.pulses(pulses)
    driver.run()
    expected_counter = ((1 << n_sc) - threshold + pulses) % (1 << n_sc)
    expected_fires = ((1 << n_sc) - threshold + pulses) // (1 << n_sc)
    ok = (npe.counter_value == expected_counter
          and len(npe.fire_times) == expected_fires)
    return ok, sim.violations


class TestJitterTolerance:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_small_jitter_tolerated(self, seed):
        """Sub-picosecond wire jitter (realistic fabrication variation)
        never corrupts results -- the margin behind the Fig. 16 match."""
        ok, _ = npe_run(jitter=0.5, seed=seed)
        assert ok

    def test_moderate_jitter_still_correct(self):
        ok, _ = npe_run(jitter=2.0, seed=7)
        assert ok

    def test_extreme_jitter_detected_by_constraints(self):
        """Jitter comparable to cell delays eventually reorders pulses;
        when results corrupt, constraint checking must have flagged it."""
        corrupted_but_silent = 0
        for seed in range(12):
            ok, violations = npe_run(jitter=25.0, seed=seed)
            if not ok and not violations:
                corrupted_but_silent += 1
        # Detection need not be perfect (some reorderings are silent), but
        # the majority of corruptions must be caught.
        failures = [npe_run(jitter=25.0, seed=s) for s in range(12)]
        corrupt = sum(1 for ok, _ in failures if not ok)
        flagged = sum(1 for ok, v in failures if not ok and v)
        if corrupt:
            assert flagged >= corrupt / 2

    def test_tight_input_spacing_violates_tff(self):
        """Streaming faster than the TFF toggle interval is rejected at
        policy construction -- the encoder cannot even express it."""
        with pytest.raises(ConfigurationError):
            TimingPolicy(input_interval=30.0)


class TestProtocolMisuse:
    def test_write_without_reset(self):
        npe = BehavioralNPE(n_sc=4)
        npe.set_polarity(Polarity.SET1)
        npe.excite(1)
        with pytest.raises(ProtocolError):
            npe.scs[0].write()

    def test_input_before_set(self):
        npe = BehavioralNPE(n_sc=4)
        npe.rst()
        with pytest.raises(ProtocolError):
            npe.pulse()

    def test_chip_pass_before_timestep(self):
        chip = BehavioralChip(ChipConfig(n=1, sc_per_npe=4))
        with pytest.raises(ProtocolError):
            chip.run_pass(Polarity.SET1, [True])

    def test_overflow_threshold_rejected_up_front(self):
        chip = BehavioralChip(ChipConfig(n=1, sc_per_npe=4))
        with pytest.raises(CapacityError):
            chip.begin_timestep([17])


class TestCounterWrapBehaviour:
    def test_double_overflow_needs_full_revolution(self):
        """After firing, the next fire needs 2**n_sc further pulses -- the
        chip cannot double-fire within a bounded time step."""
        npe = BehavioralNPE(n_sc=4)
        npe.rst()
        npe.configure_threshold(2)
        assert npe.excite(2) == 1
        assert npe.excite(15) == 0
        assert npe.excite(1) == 1

    def test_underflow_then_recovery(self):
        """A counter that wrapped downward keeps correct modular
        arithmetic (state is never corrupted, only misinterpreted)."""
        npe = BehavioralNPE(n_sc=4)
        npe.rst()
        npe.write_preload(1)
        npe.inhibit(3)  # 1 -> 0 -> 15 (borrow) -> 14
        assert npe.counter_value == 14
        assert npe.underflow_count == 1
        npe.excite(3)
        assert npe.counter_value == 1
        assert npe.fire_count == 1  # the recovery crossed the seam again


class TestGateLevelChipUnderJitter:
    @pytest.mark.parametrize("seed", [11, 12])
    def test_full_chip_protocol_with_jitter(self, seed):
        config = ChipConfig(n=2, sc_per_npe=4, max_strength=2)
        reference = BehavioralChip(config)
        chip = GateLevelChip(config)
        driver = ChipDriver(chip, chip.simulator(jitter_ps=0.6, seed=seed))
        thresholds = [3, 5]
        strengths = [[1, 2], [2, 0]]
        spikes = [True, True]
        reference.begin_timestep(thresholds)
        reference.configure_weights(strengths)
        reference.run_pass(Polarity.SET1, spikes)
        driver.begin_timestep(thresholds)
        driver.configure_weights(strengths)
        driver.run_pass(Polarity.SET1, spikes)
        assert driver.read_out() == reference.read_out()
