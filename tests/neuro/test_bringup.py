"""Tests for the chip bring-up harness (section 6.2)."""

import pytest

from repro.neuro.bringup import BringupReport, run_bringup


class TestBringup:
    def test_ideal_chip_passes_all_mechanisms(self):
        report = run_bringup(sc_per_npe=4)
        assert report.passed
        assert report.violations == 0
        names = {c.name for c in report.checks}
        for keyword in ("flip", "carry", "fire", "reset", "polarity",
                        "relay"):
            assert any(keyword in name for name in names)

    def test_jittered_chip_matches_simulation(self):
        ideal = run_bringup(sc_per_npe=4)
        jittered = run_bringup(sc_per_npe=4, jitter_ps=0.5, seed=1)
        assert jittered.passed
        assert [c.observed for c in ideal.checks] == [
            c.observed for c in jittered.checks
        ]

    def test_rows_render(self):
        report = run_bringup(sc_per_npe=3)
        rows = report.to_rows()
        assert len(rows) == len(report.checks)
        assert all(row["pass"] for row in rows)

    def test_failed_check_fails_report(self):
        report = run_bringup(sc_per_npe=4)
        from repro.neuro.bringup import BringupCheck

        broken = BringupReport(
            checks=report.checks + [BringupCheck("bogus", "1", "0", False)],
            violations=0,
        )
        assert not broken.passed

    def test_violations_fail_report(self):
        report = run_bringup(sc_per_npe=4)
        assert not BringupReport(checks=report.checks, violations=1).passed
