"""Tests for the multi-state neuron automaton (paper Figs. 6-7)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.neuro.neuron_model import MultiStateNeuron, NeuronPhase, NeuronState


class TestConstruction:
    def test_invalid_threshold_rejected(self):
        with pytest.raises(ConfigurationError):
            MultiStateNeuron(threshold=0)

    def test_invalid_phases_rejected(self):
        with pytest.raises(ConfigurationError):
            MultiStateNeuron(threshold=3, rising_steps=0)
        with pytest.raises(ConfigurationError):
            MultiStateNeuron(threshold=3, falling_steps=-1)

    def test_starts_resting(self):
        neuron = MultiStateNeuron(threshold=3)
        assert neuron.is_resting()

    def test_state_count_matches_paper_sizing(self):
        """~500 states suffice for direct SNN inference (section 4.1.2)."""
        neuron = MultiStateNeuron(threshold=490, rising_steps=4, falling_steps=4)
        assert 490 < neuron.state_count() <= 512


class TestChargingAndFiring:
    def test_spikes_accumulate_below_threshold(self):
        neuron = MultiStateNeuron(threshold=3)
        neuron.spike_stimulus()
        neuron.spike_stimulus()
        assert neuron.state == NeuronState(NeuronPhase.BELOW_THRESHOLD, 2)

    def test_fires_after_threshold_and_rise(self):
        neuron = MultiStateNeuron(threshold=2, rising_steps=2)
        neuron.spike_stimulus()
        neuron.spike_stimulus()  # reaches b_threshold
        fired = []
        fired.append(neuron.time_stimulus())  # b_T -> r0
        fired.append(neuron.time_stimulus())  # r0 -> r1
        fired.append(neuron.time_stimulus())  # completes rise: fire
        assert fired == [False, False, True]
        assert neuron.state.phase is NeuronPhase.FALLING

    def test_failed_initiation_leaks_back(self):
        """Sub-threshold charge decays under time stimuli (Fig. 6(a)
        "failed initiations")."""
        neuron = MultiStateNeuron(threshold=5)
        for _ in range(3):
            neuron.spike_stimulus()
        for _ in range(10):
            assert not neuron.time_stimulus()
        assert neuron.is_resting()

    def test_refractory_inputs_ignored_during_rise(self):
        neuron = MultiStateNeuron(threshold=1, rising_steps=3)
        neuron.spike_stimulus()
        neuron.time_stimulus()  # enter rising
        state_before = neuron.state
        neuron.spike_stimulus()
        assert neuron.state == state_before

    def test_returns_to_rest_after_undershoot(self):
        neuron = MultiStateNeuron(threshold=1, rising_steps=1, falling_steps=2)
        neuron.spike_stimulus()
        fires = [neuron.time_stimulus() for _ in range(6)]
        assert sum(fires) == 1
        assert neuron.is_resting()

    def test_spike_log_records_steps(self):
        neuron = MultiStateNeuron(threshold=1, rising_steps=1)
        neuron.spike_stimulus()
        neuron.time_stimulus()
        neuron.time_stimulus()
        assert len(neuron.spike_log) == 1


class TestTransitionTable:
    def test_table_covers_all_states(self):
        neuron = MultiStateNeuron(threshold=3, rising_steps=2, falling_steps=2)
        table = neuron.transition_table()
        sources = {row[0] for row in table}
        assert {"b0", "b1", "b2", "b3", "r0", "r1", "f0", "f1", "f2"} <= sources

    def test_spike_rows_match_threshold(self):
        neuron = MultiStateNeuron(threshold=4)
        spike_rows = [r for r in neuron.transition_table() if r[1] == "spike"]
        assert len(spike_rows) == 4

    def test_fire_transition_present(self):
        neuron = MultiStateNeuron(threshold=2, rising_steps=3)
        table = neuron.transition_table()
        fire_rows = [r for r in table if "send a spike" in r[2]]
        assert len(fire_rows) == 1
        assert fire_rows[0][0] == "r2"


class TestProperties:
    @given(
        threshold=st.integers(min_value=1, max_value=30),
        spikes=st.integers(min_value=0, max_value=60),
    )
    @settings(max_examples=60, deadline=None)
    def test_fires_iff_spikes_reach_threshold_before_leak(self, threshold, spikes):
        """With all spike stimuli delivered before any time stimulus, the
        neuron fires exactly when spikes >= threshold."""
        neuron = MultiStateNeuron(threshold=threshold, rising_steps=1)
        for _ in range(spikes):
            neuron.spike_stimulus()
        fired = any(neuron.time_stimulus() for _ in range(neuron.state_count()))
        assert fired == (spikes >= threshold)

    @given(
        threshold=st.integers(min_value=1, max_value=10),
        events=st.lists(st.booleans(), max_size=80),
    )
    @settings(max_examples=60, deadline=None)
    def test_state_always_valid(self, threshold, events):
        """Any stimulus sequence keeps the automaton in a defined state."""
        neuron = MultiStateNeuron(threshold=threshold)
        for is_spike in events:
            if is_spike:
                neuron.spike_stimulus()
            else:
                neuron.time_stimulus()
        phase, idx = neuron.state.phase, neuron.state.index
        if phase is NeuronPhase.BELOW_THRESHOLD:
            assert 0 <= idx <= threshold
        elif phase is NeuronPhase.RISING:
            assert 0 <= idx < neuron.rising_steps
        else:
            assert 0 <= idx <= neuron.falling_steps

    def test_reset_restores_rest(self):
        neuron = MultiStateNeuron(threshold=2)
        neuron.spike_stimulus()
        neuron.reset()
        assert neuron.is_resting()
        assert neuron.spike_log == []
