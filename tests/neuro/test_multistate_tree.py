"""Tests for the multi-state pulse program and the gate-level tree
network (paper sections 4.1.2 and 4.2.2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CapacityError, ConfigurationError
from repro.neuro.multistate import MultiStatePulseProgram
from repro.neuro.neuron_model import MultiStateNeuron
from repro.neuro.state_controller import Polarity
from repro.neuro.tree import GateLevelTreeNetwork, TreeDriver


class TestMultiStateProgram:
    def test_charging_tracks_automaton(self):
        program = MultiStatePulseProgram(threshold=4)
        for _ in range(3):
            program.spike_stimulus()
        assert program.counter_value == 3
        assert program.reference.state.label() == "b3"

    def test_leak_decrements_counter(self):
        program = MultiStatePulseProgram(threshold=4)
        program.spike_stimulus()
        program.spike_stimulus()
        program.time_stimulus()
        assert program.counter_value == 1

    def test_rest_state_ignores_time(self):
        program = MultiStatePulseProgram(threshold=4)
        for _ in range(5):
            assert program.time_stimulus() is False
        assert program.counter_value == 0

    def test_full_action_potential_cycle(self):
        program = MultiStatePulseProgram(threshold=2, rising_steps=2,
                                         falling_steps=2)
        program.spike_stimulus()
        program.spike_stimulus()  # b2 reached
        fires = [program.time_stimulus() for _ in range(7)]
        assert sum(fires) == 1
        # Back at rest after rising + falling + return.
        assert program.counter_value == 0
        assert program.reference.is_resting()
        assert program.spikes_emitted == 1

    def test_refractory_spikes_ignored(self):
        program = MultiStatePulseProgram(threshold=1, rising_steps=3)
        program.spike_stimulus()
        program.time_stimulus()  # enter rising
        counter = program.counter_value
        program.spike_stimulus()  # refractory: no chip pulse either
        assert program.counter_value == counter

    def test_capacity_guard(self):
        with pytest.raises(CapacityError):
            MultiStatePulseProgram(threshold=100, n_sc=6)

    def test_unknown_stimulus_rejected(self):
        program = MultiStatePulseProgram(threshold=2)
        with pytest.raises(ConfigurationError):
            program.run(["spike", "blink"])

    @given(
        threshold=st.integers(min_value=1, max_value=8),
        stimuli=st.lists(st.sampled_from(["spike", "time"]), max_size=60),
    )
    @settings(max_examples=40, deadline=None)
    def test_chip_state_equals_automaton_state(self, threshold, stimuli):
        """Property: for any stimulus sequence the NPE's flux state equals
        the Fig. 7 automaton state, and both emit the same spikes."""
        program = MultiStatePulseProgram(threshold=threshold,
                                         rising_steps=3, falling_steps=2)
        reference = MultiStateNeuron(threshold=threshold, rising_steps=3,
                                     falling_steps=2)
        chip_fires = 0
        ref_fires = 0
        for stimulus in stimuli:
            if stimulus == "spike":
                program.spike_stimulus()
                reference.spike_stimulus()
            else:
                chip_fires += int(program.time_stimulus())
                ref_fires += int(reference.time_stimulus())
        assert chip_fires == ref_fires
        assert program.reference.state == reference.state


class TestTreeNetwork:
    def test_broadcast_reaches_every_npe(self):
        tree = GateLevelTreeNetwork(n=3, sc_per_npe=4)
        driver = TreeDriver(tree)
        driver.configure([5, 5, 5])
        driver.broadcast(2)
        assert [npe.counter_value for npe in tree.npes] == [13, 13, 13]
        assert driver.sim.violations == []

    def test_normalised_thresholds_differentiate_outputs(self):
        """The tree cannot weight per pair, but per-NPE thresholds still
        differentiate responses to the shared stimulus."""
        tree = GateLevelTreeNetwork(n=2, sc_per_npe=5)
        driver = TreeDriver(tree)
        driver.configure([2, 6])
        driver.broadcast(3)
        # NPE0 (threshold 2) fired; NPE1 (threshold 6) did not.
        assert driver.output_pulses() == 1
        assert driver.sim.violations == []

    def test_root_weight_scales_all_npes(self):
        tree = GateLevelTreeNetwork(n=2, sc_per_npe=5, root_strength=2)
        driver = TreeDriver(tree)
        # Arm both root gain branches -> every input pulse doubled.
        for k in range(2):
            cell, port = tree.root_weight.switch_input(k, "din")
            driver.sim.schedule_input(cell, port, 0.0)
        driver.cursor = 200.0
        driver.configure([4, 4])
        driver.broadcast(2)
        assert [npe.counter_value for npe in tree.npes] == [
            (32 - 4 + 4) % 32, (32 - 4 + 4) % 32
        ]
        assert driver.output_pulses() == 2  # both fired on the 4th pulse
        assert driver.sim.violations == []

    def test_inhibitory_broadcast(self):
        tree = GateLevelTreeNetwork(n=2, sc_per_npe=5)
        driver = TreeDriver(tree)
        driver.configure([10, 10])
        driver.broadcast(3)
        # Re-arm down-counting and take two pulses back.
        t = driver.cursor
        for npe in tree.npes:
            cell, port = npe.bus_input("set0")
            driver.sim.schedule_input(cell, port, t)
        driver.cursor = t + 500.0
        driver.broadcast(2)
        assert [npe.counter_value for npe in tree.npes] == [23, 23]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            GateLevelTreeNetwork(n=0)
        tree = GateLevelTreeNetwork(n=2, sc_per_npe=4)
        driver = TreeDriver(tree)
        with pytest.raises(ConfigurationError):
            driver.configure([1])
        with pytest.raises(CapacityError):
            driver.configure([1, 100])
        with pytest.raises(ConfigurationError):
            driver.broadcast(-1)

    def test_resource_advantage_over_mesh(self):
        """Structural claim of Fig. 11: the tree fabric is cheaper than the
        mesh fabric for the same NPE count."""
        from repro.neuro.network import MeshNetwork, TreeNetwork

        mesh = MeshNetwork(8).stats()
        tree = TreeNetwork(8).stats()
        assert tree.line_crossings < mesh.line_crossings
        assert tree.total_line_span_units < mesh.total_line_span_units
        assert tree.ndro_count < mesh.ndro_count
