"""Additional gate-level chip coverage: mixed-polarity cross-validation,
the weightless (fabricated-style) mesh at n=2, and fire-time ordering."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.neuro.chip import (
    BehavioralChip,
    ChipConfig,
    ChipDriver,
    GateLevelChip,
)
from repro.neuro.state_controller import Polarity


class TestMixedPolarityCrossValidation:
    @given(
        data=st.data(),
        n=st.integers(min_value=1, max_value=2),
    )
    @settings(max_examples=6, deadline=None)
    def test_exc_then_inh_matches_behavioural(self, data, n):
        """Excitatory pulses followed by a bounded inhibitory pass (never
        enough to underflow) leaves both implementations in identical
        states -- the mixed-polarity regime bucket transitions create."""
        cfg = ChipConfig(n=n, sc_per_npe=5, max_strength=1)
        beh = BehavioralChip(cfg)
        gate = GateLevelChip(cfg)
        drv = ChipDriver(gate)
        thresholds = [
            data.draw(st.integers(min_value=8, max_value=16))
            for _ in range(n)
        ]
        strengths = [[1] * n for _ in range(n)]
        exc_rounds = data.draw(st.integers(min_value=1, max_value=3))
        inh_rounds = data.draw(st.integers(min_value=0,
                                           max_value=exc_rounds))
        beh.begin_timestep(thresholds)
        drv.begin_timestep(thresholds)
        beh.configure_weights(strengths)
        drv.configure_weights(strengths)
        spikes = [True] * n
        for _ in range(exc_rounds):
            beh.run_pass(Polarity.SET1, spikes)
            drv.run_pass(Polarity.SET1, spikes)
        for _ in range(inh_rounds):
            beh.run_pass(Polarity.SET0, spikes)
            drv.run_pass(Polarity.SET0, spikes)
        assert drv.read_out() == beh.read_out()
        assert [npe.counter_value for npe in gate.col_npes] == [
            npe.counter_value for npe in beh.col_npes
        ]
        assert drv.sim.violations == []


class TestWeightlessMesh:
    def test_two_by_two_fixed_connectivity(self):
        """Without weight structures every crosspoint is a fixed unit
        synapse: a spiking axon reaches every column."""
        cfg = ChipConfig(n=2, sc_per_npe=5, with_weights=False)
        gate = GateLevelChip(cfg)
        drv = ChipDriver(gate)
        drv.begin_timestep([3, 3])
        drv.configure_weights([[1, 1], [1, 1]])
        drv.run_pass(Polarity.SET1, [True, False])
        # One axon spike delivered +1 to both columns.
        assert [npe.counter_value for npe in gate.col_npes] == [
            (32 - 3) + 1, (32 - 3) + 1
        ]
        assert drv.sim.violations == []

    def test_behavioural_weightless_matches(self):
        cfg = ChipConfig(n=2, sc_per_npe=5, with_weights=False)
        beh = BehavioralChip(cfg)
        gate = GateLevelChip(cfg)
        drv = ChipDriver(gate)
        ones = [[1, 1], [1, 1]]
        beh.begin_timestep([2, 4])
        drv.begin_timestep([2, 4])
        beh.configure_weights(ones)
        drv.configure_weights(ones)
        for _ in range(3):
            beh.run_pass(Polarity.SET1, [True, True])
            drv.run_pass(Polarity.SET1, [True, True])
        assert drv.read_out() == beh.read_out() == [True, True]


class TestFireTimeOrdering:
    def test_fire_times_are_strictly_increasing(self):
        cfg = ChipConfig(n=1, sc_per_npe=3)
        gate = GateLevelChip(cfg)
        drv = ChipDriver(gate)
        drv.begin_timestep([2])
        drv.configure_weights([[1]])
        for _ in range(8):
            drv.run_pass(Polarity.SET1, [True])
        times = gate.fire_times(0)
        assert times == sorted(times)
        # Capacity 8, threshold 2: preload 6, 8 pulses -> one overflow.
        assert len(times) == 1

    def test_fire_count_matches_modular_arithmetic(self):
        cfg = ChipConfig(n=1, sc_per_npe=3)  # capacity 8
        gate = GateLevelChip(cfg)
        drv = ChipDriver(gate)
        threshold = 3
        pulses = 13
        drv.begin_timestep([threshold])
        drv.configure_weights([[1]])
        for _ in range(pulses):
            drv.run_pass(Polarity.SET1, [True])
        expected = ((8 - threshold) + pulses) // 8
        assert len(gate.fire_times(0)) == expected
        assert drv.sim.violations == []
