"""Tests for the ASCII chart renderer."""

import pytest

from repro.errors import ConfigurationError
from repro.harness.charts import line_chart


class TestLineChart:
    def test_basic_render(self):
        out = line_chart([1, 2, 4], {"a": [0, 5, 10]}, width=20, height=6)
        lines = out.splitlines()
        assert any("o" in line for line in lines)
        assert "o=a" in lines[-1]

    def test_title_and_labels(self):
        out = line_chart([0, 10], {"s": [0, 100]}, title="T",
                         y_label="units")
        assert out.splitlines()[0] == "T"
        assert "units" in out
        assert "100" in out

    def test_multiple_series_use_distinct_glyphs(self):
        out = line_chart([0, 1], {"a": [0, 1], "b": [1, 0]},
                         width=16, height=5)
        assert "o=a" in out and "x=b" in out
        body = "\n".join(out.splitlines()[:-1])
        assert "o" in body and "x" in body

    def test_extremes_land_on_edges(self):
        out = line_chart([0, 100], {"s": [0, 50]}, width=30, height=8)
        rows = [line for line in out.splitlines() if "|" in line]
        # Max value on the top row, min on the bottom row.
        assert "o" in rows[0]
        assert "o" in rows[-1]

    def test_flat_series_does_not_crash(self):
        out = line_chart([1, 2, 3], {"flat": [5, 5, 5]})
        assert "o" in out

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            line_chart([1, 2], {})
        with pytest.raises(ConfigurationError):
            line_chart([1, 2], {"a": [1]})
        with pytest.raises(ConfigurationError):
            line_chart([1], {"a": [1]}, width=4)
        with pytest.raises(ConfigurationError):
            line_chart([1], {c: [1] for c in "abcdefg"})
