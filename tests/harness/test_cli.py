"""Tests for the ``python -m repro`` command-line entry point."""

import pytest

from repro.__main__ import EXPERIMENTS, main


class TestCLI:
    def test_list_prints_every_experiment(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_runs_a_model_only_experiment(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out
        assert "45," in out  # the JJ count in thousands notation

    def test_runs_multiple_experiments(self, capsys):
        assert main(["fps", "delay"]) == 0
        out = capsys.readouterr().out
        assert "frame rate" in out
        assert "transmission delay" in out

    def test_fast_skips_training_experiments(self, capsys):
        assert main(["table3", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "skipped" in out

    def test_unknown_experiment_fails(self, capsys):
        assert main(["flux-capacitor"]) == 2
        err = capsys.readouterr().err
        assert "unknown experiments" in err

    def test_registry_covers_all_tables_and_figures(self):
        for artefact in ("table1", "table2", "table3", "table4",
                         "fig13", "fig16", "fig19", "fig20", "fig21"):
            assert artefact in EXPERIMENTS
