"""End-to-end tests for the network chaos scenarios
(client -> chaos proxy -> gateway -> server).

Each scenario asserts its own invariants internally (bit-identical
predictions, exactly-once computes, exact retry/shed ledgers); these
tests run the two cheapest ones through the public runner and pin the
headline ledger numbers, plus the workload determinism the whole
campaign rests on.  The full network campaign runs in CI via
``bench_netchaos.py --check``.
"""

import numpy as np

from repro.harness.chaos import (
    NETWORK_SCENARIOS,
    _net_trains,
    _serial_answer,
    _workload,
    run_scenario,
)


def test_net_trains_are_deterministic():
    compiled, _ = _workload(True)
    first = _net_trains(compiled, 4)
    second = _net_trains(compiled, 4)
    assert len(first) == 4
    for a, b in zip(first, second):
        assert np.array_equal(a, b)


def test_serial_answer_is_reproducible():
    compiled, _ = _workload(True)
    train = _net_trains(compiled, 1)[0]
    pred_a, rates_a = _serial_answer(compiled, train)
    pred_b, rates_b = _serial_answer(compiled, train)
    assert pred_a == pred_b
    assert rates_a == rates_b
    assert len(rates_a) == compiled.out_features
    assert pred_a == int(np.argmax(rates_a))


def test_reset_storm_scenario_end_to_end():
    entry = run_scenario("net-reset-storm", quick=True)
    assert entry["passed"], entry["error"]
    details = entry["details"]
    assert details["resets"] == 2
    assert details["client"]["conn_errors"] == 2
    assert details["client"]["retries"] == 2
    assert details["client"]["replays"] == 1
    assert details["proxy"]["fired"] == {"0:reset": 2}
    assert details["gateway_replays"] == {"tenant-a": 2}


def test_overload_shed_scenario_end_to_end():
    entry = run_scenario("net-overload-shed", quick=True)
    assert entry["passed"], entry["error"]
    details = entry["details"]
    assert details["sheds"] == {"overloaded:p2": 3}
    assert details["admitted"] == 4
    assert details["shed_client"]["retries"] == 0


def test_network_scenario_names_are_prefixed():
    assert all(name.startswith("net-") for name in NETWORK_SCENARIOS)
