"""Tests for report formatting and the trained-model cache."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.harness.artifacts import downsample_images
from repro.harness.reporting import format_table, paper_vs_measured


class TestFormatTable:
    def test_basic_alignment(self):
        out = format_table([
            {"name": "a", "value": 1},
            {"name": "bb", "value": 22},
        ])
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert len(lines) == 4  # header, rule, two rows
        assert all(len(line) == len(lines[0]) for line in lines[2:])

    def test_title_and_column_order(self):
        out = format_table(
            [{"b": 2, "a": 1}], columns=["a", "b"], title="T"
        )
        assert out.splitlines()[0] == "T"
        assert out.splitlines()[1].startswith("a")

    def test_thousands_separator(self):
        out = format_table([{"jj": 45542}])
        assert "45,542" in out

    def test_missing_key_renders_empty(self):
        out = format_table([{"a": 1, "b": 2}, {"a": 3}])
        assert out  # no KeyError

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            format_table([])


class TestPaperVsMeasured:
    def test_delta_computed(self):
        out = paper_vs_measured([
            {"metric": "jj", "paper": 100, "measured": 105},
        ])
        assert "+5.0%" in out

    def test_non_numeric_delta_blank(self):
        out = paper_vs_measured([
            {"metric": "memory", "paper": "SRAM", "measured": "-"},
        ])
        assert "%" not in out.splitlines()[-1]


class TestDownsample:
    def test_shape_and_mean_preserved(self):
        images = np.random.default_rng(0).random((3, 28, 28))
        small = downsample_images(images, 4)
        assert small.shape == (3, 7, 7)
        assert small.mean() == pytest.approx(images.mean(), abs=1e-12)

    def test_factor_one_is_identity(self):
        images = np.ones((2, 8, 8))
        assert downsample_images(images, 1) is images
