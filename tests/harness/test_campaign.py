"""Tests for the Monte-Carlo resilience campaign harness.

Contract: campaigns are bit-deterministic given their seed, the p=0
baseline is perfectly clean, BER degrades monotonically in fault
probability for the drop process, and the sequential / partitioned
engines measure identical campaign numbers.
"""

import json

import pytest

from repro.errors import ConfigurationError
from repro.harness.campaign import (
    CampaignConfig,
    CampaignResult,
    build_reference_pipeline,
    run_resilience_campaign,
)


SMALL = CampaignConfig(
    kinds=("pulse_drop",),
    probabilities=(0.0, 0.05, 0.3),
    trials=2,
    chain_length=8,
    n_pulses=16,
)


@pytest.fixture(scope="module")
def small_result():
    return run_resilience_campaign(SMALL)


class TestConfigValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown fault kind"):
            CampaignConfig(kinds=("gamma_ray",))

    def test_zero_trials_rejected(self):
        with pytest.raises(ConfigurationError, match="trials"):
            CampaignConfig(trials=0)

    def test_probability_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError, match="outside"):
            CampaignConfig(probabilities=(0.0, 1.5))

    def test_bad_workload_dimensions_rejected(self):
        with pytest.raises(ConfigurationError):
            CampaignConfig(chain_length=0)
        with pytest.raises(ConfigurationError):
            CampaignConfig(n_pulses=0)
        with pytest.raises(ConfigurationError):
            CampaignConfig(pulse_interval_ps=0.0)


class TestReferencePipeline:
    def test_pipeline_delivers_one_pulse_per_input(self):
        from repro.rsfq import Simulator

        net, probe = build_reference_pipeline(5)
        sim = Simulator(net)
        for k in range(4):
            sim.schedule_input("j0", "din", k * 200.0)
        sim.run()
        assert len(probe.times) == 4


class TestCampaignProperties:
    def test_zero_probability_clean(self, small_result):
        assert small_result.zero_probability_clean()
        p0 = [pt for pt in small_result.points if pt.probability == 0.0]
        assert p0 and all(
            pt.ber == 0.0 and pt.injections == 0 for pt in p0
        )

    def test_ber_monotone_in_drop_probability(self, small_result):
        assert small_result.ber_monotone()
        _, bers = small_result.curve("pulse_drop")
        assert bers[0] == 0.0
        assert bers[-1] > 0.0  # p=0.3 over 8 wires visibly degrades

    def test_injections_grow_with_probability(self, small_result):
        pts = sorted(
            (pt for pt in small_result.points),
            key=lambda pt: pt.probability,
        )
        injections = [pt.injections for pt in pts]
        assert injections == sorted(injections)

    def test_campaign_is_deterministic(self, small_result):
        again = run_resilience_campaign(SMALL)
        assert [pt.to_row() for pt in again.points] == \
            [pt.to_row() for pt in small_result.points]

    def test_parallel_engine_measures_identical_numbers(self, small_result):
        par = run_resilience_campaign(
            CampaignConfig(
                kinds=SMALL.kinds, probabilities=SMALL.probabilities,
                trials=SMALL.trials, chain_length=SMALL.chain_length,
                n_pulses=SMALL.n_pulses, parallel_parts=3,
            )
        )
        assert [pt.to_row() for pt in par.points] == \
            [pt.to_row() for pt in small_result.points]

    def test_jitter_axis_is_swept(self):
        result = run_resilience_campaign(CampaignConfig(
            kinds=("pulse_drop",), probabilities=(0.0,),
            jitter_sigmas=(0.0, 1.0), trials=1,
            chain_length=4, n_pulses=4,
        ))
        sigmas = {pt.jitter_ps for pt in result.points}
        assert sigmas == {0.0, 1.0}
        # Mild jitter does not corrupt a widely-spaced clean stream.
        assert all(pt.ber == 0.0 for pt in result.points)

    def test_duplicate_kind_overfills_windows(self):
        result = run_resilience_campaign(CampaignConfig(
            kinds=("pulse_duplicate",), probabilities=(0.0, 1.0),
            trials=1, chain_length=4, n_pulses=8,
        ))
        _, bers = result.curve("pulse_duplicate")
        assert bers == [0.0, 1.0]


class TestRenderingAndSerialisation:
    def test_summary_lists_every_point(self, small_result):
        text = small_result.summary()
        assert "resilience campaign" in text
        assert text.count("pulse_drop") == len(small_result.points)

    def test_chart_renders_series(self, small_result):
        chart = small_result.chart("pulse_drop")
        assert "BER vs fault probability" in chart
        assert "pulse_drop" in chart

    def test_chart_unknown_kind_raises(self, small_result):
        with pytest.raises(ConfigurationError, match="no campaign points"):
            small_result.chart("flux_trap")

    def test_json_roundtrip(self, small_result, tmp_path):
        path = tmp_path / "campaign.json"
        small_result.save(path)
        payload = json.loads(path.read_text())
        assert payload["schema"] == "repro.campaign/v1"
        assert payload["ber_monotone"] is True
        assert payload["zero_probability_clean"] is True
        assert len(payload["points"]) == len(small_result.points)
        assert payload["config"]["kinds"] == list(SMALL.kinds)

    def test_empty_result_is_vacuously_healthy(self):
        empty = CampaignResult(config=SMALL)
        assert empty.ber_monotone()
        assert empty.zero_probability_clean()


class TestTracedCampaignEngine:
    """engine='traced' campaigns are bit-identical to the event engine."""

    def test_traced_campaign_matches_event_campaign(self):
        from dataclasses import asdict

        base = dict(
            kinds=("pulse_drop",), probabilities=(0.0, 0.1),
            jitter_sigmas=(0.0, 0.3), trials=2,
            chain_length=8, n_pulses=8,
        )
        event = run_resilience_campaign(CampaignConfig(**base))
        traced = run_resilience_campaign(
            CampaignConfig(**base, engine="traced")
        )
        assert [asdict(p) for p in event.points] == \
            [asdict(p) for p in traced.points]

    def test_engine_field_validated(self):
        with pytest.raises(ConfigurationError, match="unknown engine"):
            CampaignConfig(engine="warp")
        with pytest.raises(ConfigurationError, match="mutually"):
            CampaignConfig(engine="traced", parallel_parts=2)
