"""Golden-schema tests for every committed ``benchmarks/BENCH_*.json``.

The BENCH files are the drift baselines the ``--check`` scripts diff
against; a hand edit that drops a key would silently weaken every
future check.  This registry pins the shape of each file -- and the
registry itself is pinned: a new BENCH file on disk without an entry
here fails the suite.
"""

import json
from pathlib import Path

import pytest

BENCH_DIR = Path(__file__).resolve().parents[2] / "benchmarks"

# name -> {top-level key -> required subkeys (or None for scalars)}
REGISTRY = {
    "BENCH_simulator.json": {
        "note": None,
        "version": None,
        "workloads": {"chain_300x150", "chip_n2_sc4_r6", "trace_replay"},
    },
    "BENCH_faults.json": {
        "note": None,
        "version": None,
        "campaign": {"description", "points", "wall_time_s"},
        "self_healing": {"attempts", "degraded", "description",
                         "fault_injections", "recovery_lines"},
        "zero_fault_overhead": {"baseline_s", "inactive_model_s",
                                "overhead_ratio"},
    },
    "BENCH_serve.json": {
        "note": None,
        "version": None,
        "equivalence": {"compiled_equals_legacy", "decisions_sha256_16",
                        "pool_equals_serial", "reload_events",
                        "spurious", "synops"},
        "plan_cache": {"cold_hit", "cold_ms", "warm_hit", "warm_ms",
                       "warm_speedup"},
        "throughput": {"compiled_pool_ms", "compiled_serial_ms",
                       "legacy_parallel_ms", "legacy_serial_ms"},
        "workload": {"batch", "chip_n", "fingerprint", "rows",
                     "sc_per_npe", "sizes", "steps", "workers"},
    },
    "BENCH_chaos.json": {
        "note": None,
        "version": None,
        "recovery_latency_s": None,
        "zero_failure_overhead": None,
        "campaign": {"passed", "quick", "scenarios", "schema",
                     "workers"},
    },
    "BENCH_gateway.json": {
        "note": None,
        "version": None,
        "campaign": {"passed", "quick", "scenarios", "schema",
                     "totals", "workload"},
    },
    "BENCH_cluster.json": {
        "note": None,
        "version": None,
        "recovery_latency_s": None,
        "campaign": {"passed", "quick", "scenarios", "schema",
                     "workers"},
        "routing": {"nodes", "blocks", "plan", "counters",
                    "per_node_dispatches", "dispatch_throughput_rps"},
        "ring_balance": {"nodes", "keys", "replicas", "min_share",
                         "max_share", "max_over_fair"},
    },
    "BENCH_netchaos.json": {
        "note": None,
        "version": None,
        "wall_time_s": None,
        "campaign": {"passed", "quick", "scenarios", "schema",
                     "workers"},
    },
    "BENCH_explore.json": {
        "note": None,
        "version": None,
        "sweep": {"schema", "points_total", "points_feasible",
                  "points_infeasible", "pareto",
                  "workload_fingerprint", "pinned_digest",
                  "trace_probe_fallbacks"},
        "memoization": {"warm_hit_rate", "warm_points_evaluated",
                        "serial_equals_parallel", "parallel_workers"},
        "timing": {"cold_serial_s", "warm_parallel_s",
                   "cold_parallel_s", "warm_speedup"},
    },
}

SCENARIO_FIELDS = {
    "name", "mode", "sent", "statuses", "expected_statuses", "passed",
    "rejections", "latency_ms_p50", "latency_ms_p99", "latency_ms_max",
    "throughput_rps", "elapsed_s",
}


def load(name):
    return json.loads((BENCH_DIR / name).read_text())


def test_every_bench_file_on_disk_is_registered():
    on_disk = {p.name for p in BENCH_DIR.glob("BENCH_*.json")}
    assert on_disk == set(REGISTRY), (
        "BENCH files and the schema registry diverged; register new "
        "baselines here so their shape is pinned"
    )


@pytest.mark.parametrize("name", sorted(REGISTRY))
def test_bench_schema(name):
    payload = load(name)
    spec = REGISTRY[name]
    missing = set(spec) - set(payload)
    assert not missing, f"{name} lost top-level keys: {missing}"
    for key, subkeys in spec.items():
        if subkeys is None:
            continue
        lost = subkeys - set(payload[key])
        assert not lost, f"{name}[{key}] lost keys: {lost}"


@pytest.mark.parametrize("name", sorted(REGISTRY))
def test_bench_version_is_one(name):
    assert load(name)["version"] == 1


def test_gateway_baseline_internal_consistency():
    campaign = load("BENCH_gateway.json")["campaign"]
    assert campaign["schema"] == "repro.gateway.loadtest/v1"
    assert campaign["passed"] is True
    assert campaign["quick"] is True
    scenarios = campaign["scenarios"]
    assert [s["name"] for s in scenarios] == [
        "steady-closed", "poisson-open", "flash-crowd", "tenant-skew",
        "deadline-storm", "breaker-open", "node-failure",
    ]
    for entry in scenarios:
        missing = SCENARIO_FIELDS - set(entry)
        assert not missing, f"{entry['name']} missing {missing}"
        assert entry["statuses"] == entry["expected_statuses"]
        assert entry["passed"] is True
    # Totals really are the sum of the scenario counts.
    want_sent = sum(s["sent"] for s in scenarios)
    assert campaign["totals"]["sent"] == want_sent
    rejected = {}
    for entry in scenarios:
        for code, count in entry["rejections"].items():
            rejected[code] = rejected.get(code, 0) + count
    assert campaign["totals"]["rejections"] == rejected


def test_chaos_baseline_scenarios_all_passed():
    campaign = load("BENCH_chaos.json")["campaign"]
    assert campaign["passed"] is True
    for entry in campaign["scenarios"]:
        assert entry["passed"] is True, entry["name"]
        assert entry["error"] is None


def test_chaos_baseline_covers_node_scenarios():
    campaign = load("BENCH_chaos.json")["campaign"]
    names = {entry["name"] for entry in campaign["scenarios"]}
    assert {"node-kill", "node-partition", "scale-storm"} <= names


def test_netchaos_baseline_internal_consistency():
    campaign = load("BENCH_netchaos.json")["campaign"]
    assert campaign["schema"] == "repro.chaos/v1"
    assert campaign["passed"] is True
    assert [s["name"] for s in campaign["scenarios"]] == [
        "net-reset-storm", "net-latency-spike", "net-black-hole",
        "net-slow-client", "net-hedge-race", "net-overload-shed",
    ]
    for entry in campaign["scenarios"]:
        assert entry["passed"] is True, entry["name"]
        assert entry["error"] is None
    # The fault-specific ledgers really fired: a baseline where every
    # counter is zero would pin a campaign that injected nothing.
    by_name = {s["name"]: s["details"] for s in campaign["scenarios"]}
    assert by_name["net-reset-storm"]["client"]["conn_errors"] > 0
    assert by_name["net-latency-spike"]["client"]["timeouts"] > 0
    assert by_name["net-black-hole"]["client"]["replays"] == 0
    assert by_name["net-slow-client"]["client"]["retries"] == 0
    assert by_name["net-hedge-race"]["client"]["hedge_wins"] == 1
    assert by_name["net-overload-shed"]["sheds"] == {"overloaded:p2": 3}


def test_cluster_baseline_internal_consistency():
    payload = load("BENCH_cluster.json")
    campaign = payload["campaign"]
    assert campaign["passed"] is True
    assert [s["name"] for s in campaign["scenarios"]] == [
        "node-kill", "node-partition", "scale-storm",
    ]
    for entry in campaign["scenarios"]:
        assert entry["passed"] is True, entry["name"]
        assert entry["error"] is None
    storm = campaign["scenarios"][2]["details"]
    assert storm["sizes"][:8] == [1, 2, 3, 4, 5, 6, 7, 8]
    assert storm["sizes"][-1] == 1
    # Routing is affine and complete: every dispatch landed somewhere.
    routing = payload["routing"]
    assert sum(routing["per_node_dispatches"].values()) == \
        routing["blocks"]
    assert routing["counters"]["serial_fallbacks"] == 0
    balance = payload["ring_balance"]
    assert balance["max_over_fair"] <= 2.5


def test_explore_baseline_internal_consistency():
    payload = load("BENCH_explore.json")
    sweep = payload["sweep"]
    assert sweep["schema"] == "repro.explore/v1"
    assert sweep["points_total"] == \
        sweep["points_feasible"] + sweep["points_infeasible"]
    assert sweep["points_feasible"] > 0
    # The realizability axis bites: some grid points must be rejected
    # by the capacity check (else the axis is untested).
    assert sweep["points_infeasible"] > 0
    # Every frontier key names a swept point, and the 32-NPE (16x16
    # mesh, the paper's chip) region is represented.
    assert sweep["pareto"]
    assert any(key.startswith("npe32-") for key in sweep["pareto"])
    assert sweep["trace_probe_fallbacks"] == 0
    memo = payload["memoization"]
    # Repeating the identical sweep is 100% point-cache hits ...
    assert memo["warm_hit_rate"] == 1.0
    assert memo["warm_points_evaluated"] == 0
    # ... and serial vs process-pool sweeps are bit-identical.
    assert memo["serial_equals_parallel"] is True
