"""Tests for metric snapshots and regression comparison."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.harness.regression import (
    MetricSnapshot,
    compare,
    snapshot_headline_metrics,
)


class TestSnapshot:
    def test_record_and_round_trip(self, tmp_path):
        snap = MetricSnapshot("test")
        snap.record("gsops", 1355.0)
        snap.record("power", 41.87)
        path = str(tmp_path / "snap.json")
        snap.save(path)
        loaded = MetricSnapshot.load(path)
        assert loaded.name == "test"
        assert loaded.metrics == snap.metrics

    def test_non_numeric_rejected(self):
        snap = MetricSnapshot("x")
        with pytest.raises(ConfigurationError):
            snap.record("bad", "fast")

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            MetricSnapshot.load(str(tmp_path / "ghost.json"))

    def test_malformed_snapshot_rejected(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text(json.dumps({"name": "x"}))  # no "metrics" key
        with pytest.raises(ConfigurationError) as exc:
            MetricSnapshot.load(str(path))
        assert "metrics" in str(exc.value)
        path.write_text(json.dumps({"metrics": {}}))  # no "name" key
        with pytest.raises(ConfigurationError):
            MetricSnapshot.load(str(path))

    def test_int_metrics_coerced_to_float(self, tmp_path):
        snap = MetricSnapshot("ints")
        snap.record("count", 7)
        assert snap.metrics["count"] == 7.0
        assert isinstance(snap.metrics["count"], float)
        path = str(tmp_path / "ints.json")
        snap.save(path)
        assert MetricSnapshot.load(path).metrics == {"count": 7.0}

    def test_saved_json_is_sorted_and_stable(self, tmp_path):
        snap = MetricSnapshot("stable")
        snap.record("zeta", 1.0)
        snap.record("alpha", 2.0)
        a, b = str(tmp_path / "a.json"), str(tmp_path / "b.json")
        snap.save(a)
        snap.save(b)
        text = open(a).read()
        assert text == open(b).read()
        assert text.index('"alpha"') < text.index('"zeta"')


class TestCompare:
    def make(self, **metrics):
        snap = MetricSnapshot("s")
        for key, value in metrics.items():
            snap.record(key, value)
        return snap

    def test_identical_snapshots_pass(self):
        a = self.make(gsops=1355.0)
        assert compare(a, self.make(gsops=1355.0)) == []

    def test_within_tolerance_passes(self):
        a = self.make(gsops=1000.0)
        b = self.make(gsops=1030.0)
        assert compare(a, b, tolerance=0.05) == []

    def test_excess_drift_detected(self):
        a = self.make(gsops=1000.0)
        b = self.make(gsops=1200.0)
        failures = compare(a, b, tolerance=0.05)
        assert len(failures) == 1
        assert failures[0].key == "gsops"
        assert failures[0].relative == pytest.approx(0.2)

    def test_per_metric_tolerance_overrides(self):
        a = self.make(noisy=1.0, stable=1.0)
        b = self.make(noisy=1.3, stable=1.0)
        failures = compare(a, b, tolerance=0.01,
                           per_metric_tolerance={"noisy": 0.5})
        assert failures == []

    def test_added_and_removed_metrics_flagged(self):
        failures = compare(self.make(old=1.0), self.make(new=1.0))
        keys = {f.key for f in failures}
        assert keys == {"old", "new"}

    def test_zero_baseline(self):
        failures = compare(self.make(x=0.0), self.make(x=0.0))
        assert failures == []
        failures = compare(self.make(x=0.0), self.make(x=1.0))
        assert len(failures) == 1

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ConfigurationError):
            compare(self.make(a=1.0), self.make(a=1.0), tolerance=-1.0)

    def test_tolerance_miss_reports_both_values(self):
        failures = compare(self.make(x=10.0), self.make(x=12.0),
                           tolerance=0.1)
        assert len(failures) == 1
        drift = failures[0]
        assert drift.baseline == 10.0
        assert drift.current == 12.0
        assert drift.relative == pytest.approx(0.2)

    def test_missing_metric_drift_has_no_relative(self):
        failures = compare(self.make(x=1.0), self.make())
        assert len(failures) == 1
        assert failures[0].current is None
        assert failures[0].relative is None

    def test_zero_tolerance_is_exact_gate(self):
        """tolerance=0.0 (the differential harness's CI mode) trips on any
        movement at all."""
        assert compare(self.make(x=1.0), self.make(x=1.0),
                       tolerance=0.0) == []
        failures = compare(self.make(x=1.0), self.make(x=1.0 + 1e-12),
                           tolerance=0.0)
        assert len(failures) == 1

    def test_round_trip_then_compare(self, tmp_path):
        """The exact CI loop: snapshot -> JSON -> load -> compare."""
        snap = self.make(spikes=137.0, synops=42.0)
        path = str(tmp_path / "base.json")
        snap.save(path)
        assert compare(MetricSnapshot.load(path), snap, tolerance=0.0) == []


class TestHeadlineSnapshot:
    def test_headline_values_match_calibration(self):
        snap = snapshot_headline_metrics()
        assert snap.metrics["peak_gsops"] == pytest.approx(1355, rel=0.01)
        assert snap.metrics["peak_power_mw"] == pytest.approx(41.87,
                                                              rel=0.02)
        assert snap.metrics["table2_total_jj"] == pytest.approx(45_542,
                                                                rel=0.05)

    def test_snapshot_is_stable_across_calls(self):
        a = snapshot_headline_metrics()
        b = snapshot_headline_metrics()
        assert compare(a, b, tolerance=0.0) == []
