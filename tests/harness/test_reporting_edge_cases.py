"""Edge-case tests for report formatting helpers."""

import pytest

from repro.harness.reporting import _fmt, format_table, paper_vs_measured


class TestFormatting:
    def test_zero_renders_bare(self):
        assert _fmt(0.0) == "0"
        assert _fmt(0) == "0"

    def test_large_floats_get_separators(self):
        assert _fmt(32366.0) == "32,366"

    def test_medium_floats_two_decimals(self):
        assert _fmt(44.73) == "44.73"

    def test_small_floats_significant_digits(self):
        assert _fmt(0.0638) == "0.0638"

    def test_ints_get_separators(self):
        assert _fmt(45542) == "45,542"

    def test_strings_pass_through(self):
        assert _fmt("Async") == "Async"

    def test_negative_values(self):
        assert _fmt(-41.87) == "-41.87"


class TestPaperVsMeasuredEdges:
    def test_zero_paper_value_has_no_delta(self):
        out = paper_vs_measured([
            {"metric": "x", "paper": 0, "measured": 5},
        ])
        assert "%" not in out.splitlines()[-1]

    def test_negative_delta_sign(self):
        out = paper_vs_measured([
            {"metric": "x", "paper": 100, "measured": 90},
        ])
        assert "-10.0%" in out

    def test_mixed_numeric_and_text_rows(self):
        out = paper_vs_measured([
            {"metric": "jj", "paper": 100, "measured": 100},
            {"metric": "memory", "paper": "SRAM", "measured": "-"},
        ])
        assert "+0.0%" in out
        assert "SRAM" in out


class TestFormatTableEdges:
    def test_single_column(self):
        out = format_table([{"only": 1}])
        assert "only" in out

    def test_column_subset_selection(self):
        out = format_table([{"a": 1, "b": 2, "c": 3}], columns=["c", "a"])
        header = out.splitlines()[0]
        assert header.index("c") < header.index("a")
        assert "b" not in header
