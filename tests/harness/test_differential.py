"""Tests for the differential-equivalence harness."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.harness import (
    differential_snapshot,
    random_binarized_network,
    random_spike_trains,
    run_differential,
    run_gate_level_differential,
)
from repro.harness.differential import ENGINES, EngineComparison, _compare
from repro.harness.regression import MetricSnapshot, compare
from repro.ssnn.bucketing import required_capacity
from repro.ssnn.runtime import RuntimeResult


def make_workload(seed, sizes=(8, 6, 4), steps=3, batch=5, sc_per_npe=8):
    rng = np.random.default_rng(seed)
    network = random_binarized_network(rng, sizes=sizes, sc_per_npe=sc_per_npe)
    trains = random_spike_trains(rng, steps, batch, sizes[0])
    return network, trains


class TestWorkloadGenerators:
    @pytest.mark.parametrize("seed", range(5))
    def test_networks_are_capacity_safe(self, seed):
        rng = np.random.default_rng(seed)
        network = random_binarized_network(rng, sc_per_npe=8)
        for layer in network.layers:
            assert required_capacity(layer) <= 1 << 8
            # No dead neurons, thresholds reachable.
            assert (np.abs(layer.signed_weights).sum(axis=0) > 0).all()
            excitation = np.maximum(layer.signed_weights, 0).sum(axis=0)
            assert (layer.thresholds >= 1).all()
            assert (layer.thresholds <= np.maximum(excitation, 1)).all()

    def test_degenerate_sizes_rejected(self):
        with pytest.raises(ConfigurationError):
            random_binarized_network(np.random.default_rng(0), sizes=(4,))

    def test_spike_trains_are_binary(self):
        trains = random_spike_trains(np.random.default_rng(0), 5, 3, 7)
        assert trains.shape == (5, 3, 7)
        assert set(np.unique(trains)) <= {0.0, 1.0}

    def test_spike_rate_bounds(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ConfigurationError):
            random_spike_trains(rng, 2, 2, 2, rate=1.5)
        assert random_spike_trains(rng, 4, 4, 4, rate=0.0).sum() == 0
        assert random_spike_trains(rng, 4, 4, 4, rate=1.0).sum() == 64


class TestRunDifferential:
    @pytest.mark.parametrize("seed", range(4))
    def test_all_engines_equivalent(self, seed):
        network, trains = make_workload(seed, sizes=(7, 5, 3), batch=4)
        report = run_differential(network, trains)
        assert report.passed
        assert report.software_agreement is True
        assert report.samples == 4 and report.steps == 3
        assert set(report.results) == set(ENGINES)
        assert all(c.equivalent for c in report.comparisons)
        assert "EQUIVALENT" in report.summary()

    def test_naive_order_differential(self):
        """reorder=False still batches exactly (fast vs per-sample)."""
        network, trains = make_workload(1)
        report = run_differential(
            network, trains, engines=("fast", "per-sample"),
            reorder=False, check_software=False,
        )
        assert report.passed
        assert report.software_agreement is None

    def test_behavioral_requires_reorder(self):
        network, trains = make_workload(0)
        with pytest.raises(ConfigurationError):
            run_differential(network, trains, reorder=False)

    def test_unknown_engine_rejected(self):
        network, trains = make_workload(0)
        with pytest.raises(ConfigurationError) as exc:
            run_differential(network, trains, engines=("fast", "quantum"))
        assert "quantum" in str(exc.value)

    def test_empty_engines_rejected(self):
        network, trains = make_workload(0)
        with pytest.raises(ConfigurationError):
            run_differential(network, trains, engines=())

    def test_workload_actually_spikes(self):
        """The generators must produce non-degenerate workloads, otherwise
        the differential proves nothing."""
        network, trains = make_workload(2, batch=8)
        report = run_differential(network, trains, engines=("fast",))
        assert report.results["fast"].output_raster.sum() > 0


class TestComparison:
    def result(self, raster):
        raster = np.asarray(raster, dtype=np.float64)
        rates = raster.mean(axis=0)
        return RuntimeResult(
            rates=rates,
            predictions=rates.argmax(axis=1),
            output_raster=raster,
            spurious_decisions=0,
            synaptic_ops=0,
            reload_events=0,
        )

    def test_identical_results_equivalent(self):
        raster = np.ones((2, 3, 2))
        c = _compare("a", self.result(raster), "b", self.result(raster))
        assert c.equivalent
        assert c.mismatched_samples == ()

    def test_mismatch_names_offending_samples(self):
        raster = np.zeros((2, 3, 2))
        other = raster.copy()
        other[1, 2, 0] = 1.0  # sample 2 differs
        c = _compare("a", self.result(raster), "b", self.result(other))
        assert not c.equivalent
        assert not c.raster_equal
        assert c.mismatched_samples == (2,)

    def test_equivalent_property(self):
        c = EngineComparison("a", "b", True, True, False)
        assert not c.equivalent


class TestSnapshotIntegration:
    def test_report_to_snapshot_metrics(self):
        network, trains = make_workload(0, batch=6)
        report = run_differential(network, trains)
        snap = report.to_snapshot("diff")
        assert snap.name == "diff"
        assert snap.metrics["mismatched_comparisons"] == 0.0
        assert snap.metrics["software_agrees"] == 1.0
        assert snap.metrics["samples"] == 6.0
        assert snap.metrics["engines"] == 3.0
        assert snap.metrics["total_output_spikes"] > 0

    def test_snapshot_round_trip_and_zero_tolerance_gate(self, tmp_path):
        """The CI pattern: save a baseline once, re-run, compare exactly."""
        baseline = differential_snapshot(seed=1)
        path = str(tmp_path / "baseline.json")
        baseline.save(path)
        rerun = differential_snapshot(seed=1)
        assert compare(MetricSnapshot.load(path), rerun, tolerance=0.0) == []

    def test_snapshot_gate_trips_on_workload_drift(self, tmp_path):
        baseline = differential_snapshot(seed=1)
        drifted = differential_snapshot(seed=2)
        failures = compare(baseline, drifted, tolerance=0.0)
        assert failures  # different workload: totals move, gate trips


class TestGateLevelDifferential:
    @pytest.mark.parametrize("seed", range(3))
    def test_gate_level_matches_all_paths(self, seed):
        outcome = run_gate_level_differential(seed=seed)
        assert outcome["equivalent"]
        assert outcome["fast"] == outcome["gate_level"]
        assert outcome["behavioral"] == outcome["software"]
        assert len(outcome["fast"]) == 3

    def test_gate_level_workload_fires_somewhere(self):
        fired = sum(
            sum(run_gate_level_differential(seed=s)["gate_level"])
            for s in range(3)
        )
        assert fired > 0


class TestCompiledDifferential:
    """The compiled-path acceptance sweep (engines x reorder x faults)."""

    @pytest.mark.parametrize("seed", range(3))
    def test_sweep_passes(self, seed):
        from repro.harness import run_compiled_differential

        outcome = run_compiled_differential(seed=seed)
        assert outcome["passed"]
        assert set(outcome["reports"]) == {
            "reorder", "naive-order", "faulted"
        }
        assert all(outcome["counters_equal"].values())
        for report in outcome["reports"].values():
            assert report.passed
            assert "legacy-fast" in report.results

    def test_legacy_fast_engine_in_run_differential(self):
        from repro.harness.differential import EXTENDED_ENGINES

        assert set(ENGINES) < set(EXTENDED_ENGINES)
        network, trains = make_workload(seed=11)
        report = run_differential(
            network, trains, engines=("legacy-fast", "fast")
        )
        assert report.passed
        assert report.baseline == "legacy-fast"

    def test_unknown_engine_message_lists_extended_set(self):
        network, trains = make_workload(seed=12)
        with pytest.raises(ConfigurationError, match="legacy-fast"):
            run_differential(network, trains, engines=("warp",))


class TestTracedGateDifferential:
    """The traced replay engine folded into the gate-level differential
    (issue 7 acceptance: bit-identical, fallback allowed, wrong answers
    not)."""

    def test_ideal_workload_replays_bit_identical(self):
        from repro.harness.differential import run_parallel_gate_differential

        verdict = run_parallel_gate_differential(
            seed=0, engines=("sequential", "parallel", "traced")
        )
        assert verdict["equivalent"], verdict
        assert verdict["traced_equal"]
        assert verdict["traced_mode"] == "replay"
        assert verdict["traced_channels_equal"]
        assert verdict["traced_events_equal"]

    def test_wire_jitter_replays_bit_identical(self):
        from repro.harness.differential import run_parallel_gate_differential

        verdict = run_parallel_gate_differential(
            seed=1, jitter_ps=0.3,
            engines=("sequential", "parallel", "traced"),
        )
        assert verdict["equivalent"], verdict
        assert verdict["traced_mode"] == "replay"

    def test_faulted_workload_falls_back_bit_identical(self):
        from repro.harness.differential import run_parallel_gate_differential
        from repro.rsfq import FaultModel

        model = FaultModel.single("pulse_drop", probability=1.0, seed=9)
        verdict = run_parallel_gate_differential(
            seed=3, faults=model,
            engines=("sequential", "parallel", "traced"),
        )
        assert verdict["equivalent"], verdict
        assert verdict["traced_mode"] == "fallback"
        assert verdict["injections"] > 0
        assert verdict["traced_injection_log_equal"]

    def test_traced_without_parallel_leg(self):
        from repro.harness.differential import run_parallel_gate_differential

        verdict = run_parallel_gate_differential(
            seed=0, engines=("sequential", "traced")
        )
        assert verdict["equivalent"]
        assert "partitions" not in verdict

    def test_sequential_baseline_is_mandatory(self):
        from repro.harness.differential import run_parallel_gate_differential

        with pytest.raises(ConfigurationError, match="baseline"):
            run_parallel_gate_differential(engines=("traced",))
        with pytest.raises(ConfigurationError, match="unknown engines"):
            run_parallel_gate_differential(engines=("sequential", "warp"))
