"""Tests for the serving chaos harness (:mod:`repro.harness.chaos`).

The heavy lifting -- that every injected failure recovers bit-identical
to serial -- is asserted *inside* each scenario; these tests check the
harness machinery (hook budgets, scenario registry, report schema, CLI)
and run the cheap scenarios end-to-end.  The full campaign runs in CI
as ``python -m repro chaos --quick``.
"""

import json
import os

import pytest

from repro.harness import chaos
from repro.harness.chaos import (
    CHAOS_SCHEMA,
    ChaosHook,
    CorruptHeaderHook,
    KillHook,
    SCENARIOS,
    run_chaos,
    run_scenario,
)


class _CountingHook(ChaosHook):
    def __init__(self, marker_dir, budget):
        super().__init__(marker_dir, budget)
        self.fires = 0

    def fire(self, *args):
        self.fires += 1


class TestHookBudget:
    def test_budget_is_exact(self, tmp_path):
        hook = _CountingHook(str(tmp_path), budget=3)
        for _ in range(10):
            hook(0, 0, 0, 0, "in", "out")
        assert hook.fires == 3
        assert hook.fired() == 3

    def test_budget_is_shared_across_instances(self, tmp_path):
        """Respawned workers unpickle a fresh hook object over the same
        marker dir: the permit pool must be shared."""
        a = _CountingHook(str(tmp_path), budget=2)
        b = _CountingHook(str(tmp_path), budget=2)
        a(0, 0, 0, 0, "i", "o")
        b(1, 0, 0, 1, "i", "o")
        b(1, 0, 0, 2, "i", "o")
        assert a.fires + b.fires == 2

    def test_zero_budget_never_fires(self, tmp_path):
        hook = _CountingHook(str(tmp_path), budget=0)
        hook(0, 0, 0, 0, "i", "o")
        assert hook.fires == 0

    def test_corrupt_hook_tolerates_missing_segment(self, tmp_path):
        hook = CorruptHeaderHook(str(tmp_path), budget=1)
        hook(0, 0, 0, 0, "no-such-segment-name", "out")  # must not raise

    def test_base_hook_fire_is_abstract(self, tmp_path):
        with pytest.raises(NotImplementedError):
            ChaosHook(str(tmp_path), budget=1)(0, 0, 0, 0, "i", "o")


class TestRunner:
    def test_registry_covers_the_issue_scenarios(self):
        assert set(SCENARIOS) == {
            "worker-kill", "worker-freeze", "shm-unlink",
            "shm-corrupt", "poison-batch", "breaker-cycle",
            "node-kill", "node-partition", "scale-storm",
            "net-reset-storm", "net-latency-spike", "net-black-hole",
            "net-slow-client", "net-hedge-race", "net-overload-shed",
        }

    def test_network_scenarios_are_registered_in_order(self):
        from repro.harness.chaos import NETWORK_SCENARIOS

        assert NETWORK_SCENARIOS == (
            "net-reset-storm", "net-latency-spike", "net-black-hole",
            "net-slow-client", "net-hedge-race", "net-overload-shed",
        )
        assert all(name in SCENARIOS for name in NETWORK_SCENARIOS)

    def test_node_scenarios_run_quick(self):
        """The node-level scenarios (cluster layer) pass end-to-end;
        scale-storm is pure routing (serial nodes in quick mode) so it
        is cheap enough to pin here alongside the registry."""
        entry = run_scenario("scale-storm", quick=True)
        assert entry["passed"], entry["error"]
        assert entry["details"]["sizes"][:8] == [1, 2, 3, 4, 5, 6, 7, 8]
        assert entry["details"]["sizes"][-1] == 1

    def test_unknown_scenario_is_rejected(self):
        with pytest.raises(KeyError):
            run_chaos(names=["no-such-scenario"])

    def test_single_scenario_report_entry(self):
        entry = run_scenario("shm-corrupt", quick=True)
        assert entry["name"] == "shm-corrupt"
        assert entry["passed"], entry["error"]
        assert entry["error"] is None
        assert entry["elapsed_s"] >= 0.0

    def test_scenario_failure_is_reported_not_raised(self, monkeypatch):
        def boom(quick, marker_dir):
            raise chaos.ChaosAssertionError("injected harness failure")

        monkeypatch.setitem(SCENARIOS, "worker-kill", boom)
        entry = run_scenario("worker-kill", quick=True)
        assert not entry["passed"]
        assert "injected harness failure" in entry["error"]

    def test_report_schema_and_verdict(self):
        report = run_chaos(quick=True, names=["shm-unlink", "shm-corrupt"])
        assert report["schema"] == CHAOS_SCHEMA == "repro.chaos/v1"
        assert report["quick"] is True
        assert [s["name"] for s in report["scenarios"]] == [
            "shm-unlink", "shm-corrupt",
        ]
        assert report["passed"] is all(
            s["passed"] for s in report["scenarios"]
        )
        text = chaos.format_report(report)
        assert "shm-unlink" in text


class TestCli:
    def test_main_writes_json_report(self, tmp_path):
        out = tmp_path / "chaos.json"
        code = chaos.main([
            "--quick", "--scenario", "shm-corrupt", "--out", str(out),
        ])
        assert code == 0
        report = json.loads(out.read_text())
        assert report["schema"] == "repro.chaos/v1"
        assert report["passed"] is True

    def test_failing_campaign_exits_nonzero(self, monkeypatch, tmp_path):
        def boom(quick, marker_dir):
            raise RuntimeError("scenario exploded")

        monkeypatch.setitem(SCENARIOS, "shm-corrupt", boom)
        code = chaos.main(["--quick", "--scenario", "shm-corrupt"])
        assert code == 1

    def test_module_entry_point_dispatches(self):
        from repro.__main__ import main

        # `python -m repro chaos --help`-style dispatch must not fall
        # through to the experiments parser; main returns argparse's
        # exit code instead of raising (tests/test_cli.py).
        assert main(["chaos", "--help"]) == 0
