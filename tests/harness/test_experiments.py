"""Tests for the cheap (model-only) experiment runners and the artifact
cache.  Training-heavy runners are exercised by the benchmark harness."""

import numpy as np
import pytest

from repro.harness.artifacts import get_trained_bundle
from repro.harness.experiments import (
    run_delay_fraction,
    run_fig13,
    run_fig19,
    run_fig20,
    run_fig21,
    run_fps,
    run_table1,
    run_table2,
    run_table4,
)


class TestModelOnlyExperiments:
    def test_table1_structure(self):
        result = run_table1()
        assert len(result["rows"]) >= 10
        assert all(c["violation_detected"] for c in result["checks"])
        assert "Table 1" in result["report"]

    def test_table2_within_five_percent(self):
        measured = run_table2()["measured"]
        assert abs(measured.total_jj - 45_542) / 45_542 < 0.05

    def test_fig13_rows_cover_sweep(self):
        rows = run_fig13()["rows"]
        assert [row["npes"] for row in rows] == [2, 4, 8, 16, 32]

    def test_table4_headline(self):
        result = run_table4()
        assert result["gsops"] == pytest.approx(1355, rel=0.02)
        assert result["efficiency"] == pytest.approx(32_366, rel=0.02)

    def test_fig19_20_21_consistent(self):
        gsops = [r["gsops"] for r in run_fig19()["rows"]]
        power = [r["power_mw"] for r in run_fig20()["rows"]]
        eff = [r["gsops_per_w"] for r in run_fig21()["rows"]]
        for g, p, e in zip(gsops, power, eff):
            assert e == pytest.approx(g / (p * 1e-3), rel=0.02)

    def test_fps_and_delay(self):
        assert run_fps()["fps"] == pytest.approx(2.61e5, rel=0.02)
        rows = run_delay_fraction()["rows"]
        assert rows[0]["model_share_pct"] < rows[-1]["model_share_pct"]


class TestArtifactCache:
    def test_cache_round_trip(self, tmp_path, monkeypatch):
        import repro.harness.artifacts as artifacts

        monkeypatch.setattr(artifacts, "CACHE_DIR", str(tmp_path))
        kwargs = dict(dataset="digits", hidden=8, epochs=1, train_size=60,
                      test_size=20, time_steps=2)
        first = artifacts.get_trained_bundle(**kwargs)
        second = artifacts.get_trained_bundle(**kwargs)
        np.testing.assert_array_equal(
            first.model.linear_layers()[0].weight.numpy(),
            second.model.linear_layers()[0].weight.numpy(),
        )
        assert second.train_accuracy == first.train_accuracy

    def test_cache_bypass(self, tmp_path, monkeypatch):
        import repro.harness.artifacts as artifacts

        monkeypatch.setattr(artifacts, "CACHE_DIR", str(tmp_path))
        bundle = artifacts.get_trained_bundle(
            dataset="digits", hidden=8, epochs=1, train_size=60,
            test_size=20, time_steps=2, use_cache=False,
        )
        assert 0.0 <= bundle.train_accuracy <= 1.0
        assert not list(tmp_path.iterdir())

    def test_downsample_changes_input_size(self, tmp_path, monkeypatch):
        import repro.harness.artifacts as artifacts

        monkeypatch.setattr(artifacts, "CACHE_DIR", str(tmp_path))
        bundle = artifacts.get_trained_bundle(
            dataset="digits", hidden=8, epochs=1, train_size=60,
            test_size=20, time_steps=2, downsample=4,
        )
        assert bundle.model.linear_layers()[0].in_features == 49


class TestResilienceExperiment:
    def test_resilience_runner_structure(self):
        from repro.harness.experiments import run_resilience

        result = run_resilience(
            kinds=("pulse_drop",), probabilities=(0.0, 0.2),
            jitter_sigmas=(0.0,), trials=1,
        )
        assert result["ber_monotone"] is True
        assert result["zero_probability_clean"] is True
        assert result["campaign"]["schema"] == "repro.campaign/v1"
        assert result["healed_attempts"] >= 1
        report = result["report"]
        assert "resilience campaign" in report
        assert "Self-healing runtime" in report
