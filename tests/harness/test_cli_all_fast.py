"""End-to-end CLI run over every model-only experiment."""

from repro.__main__ import EXPERIMENTS, main


def test_all_fast_runs_every_model_only_experiment(capsys):
    assert main(["all", "--fast"]) == 0
    out = capsys.readouterr().out
    for name, (_, trains) in EXPERIMENTS.items():
        assert f"== {name}" in out
        if trains:
            assert f"== {name}: skipped (--fast) ==" in out
    # The model-only reports all rendered.
    for marker in ("Table 2", "Fig. 13", "Table 4", "Fig. 19",
                   "Fig. 21", "transmission delay", "bring-up"):
        assert marker in out
