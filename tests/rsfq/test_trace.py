"""Unit tests for :mod:`repro.rsfq.trace` (record-once / replay-many).

The acceptance bar throughout is *bit-identity*: every observable a
caller can read after a traced run -- probe capture lists, margins,
violations, event counts, final simulation time, fault bookkeeping --
must equal what a fresh event-engine :class:`Simulator` produces for the
same segments, whether the episode was served as a vectorized replay or
fell back.
"""

import pytest

from repro.errors import ConfigurationError, ConstraintViolationError
from repro.rsfq import FaultModel, Netlist, SimulationSession, Simulator, library
from repro.rsfq.trace import (
    GLOBAL_TRACE_COUNTERS,
    TRACE_KIND,
    CompiledTrace,
    ScheduleRecorder,
    TraceEngine,
    netlist_fingerprint,
    record_trace,
    schedule_fingerprint,
    trace_counter_families,
)
from repro.ssnn import PlanCache


def build_chain(n=8, delay=2.5):
    net = Netlist("chain")
    cells = [net.add(library.JTL(f"j{i}")) for i in range(n)]
    for a, b in zip(cells, cells[1:]):
        net.connect(a, "dout", b, "din", delay=delay)
    probe = net.add(library.Probe("probe"))
    net.connect(cells[-1], "dout", probe, "din")
    return net, probe


def build_tff():
    """A stateful netlist: TFF halves the pulse train into the probe."""
    net = Netlist("tff")
    tff = net.add(library.TFFL("t0"))
    probe = net.add(library.Probe("p0"))
    net.connect(tff, "dout", probe, "din", delay=3.0)
    return net, probe


SEGMENT = tuple(("j0", "din", 150.0 * k) for k in range(6))


def run_reference(net, segments, **kwargs):
    sim = Simulator(net, **kwargs)
    for seg in segments:
        for name, port, t in seg:
            sim.schedule_input(name, port, t)
        sim.run()
    return sim


class TestFingerprints:
    def test_netlist_fingerprint_stable_across_instances(self):
        a, _ = build_chain()
        b, _ = build_chain()
        assert netlist_fingerprint(a) == netlist_fingerprint(b)

    def test_netlist_fingerprint_sees_structure(self):
        a, _ = build_chain()
        b, _ = build_chain(delay=2.6)
        c, _ = build_chain(n=9)
        assert netlist_fingerprint(a) != netlist_fingerprint(b)
        assert netlist_fingerprint(a) != netlist_fingerprint(c)

    def test_schedule_fingerprint_sees_segment_boundaries(self):
        one = ((("j0", "din", 0.0), ("j0", "din", 100.0)),)
        two = ((("j0", "din", 0.0),), (("j0", "din", 100.0),))
        assert schedule_fingerprint(one) != schedule_fingerprint(two)


class TestRecordReplay:
    def test_ideal_replay_bit_identical(self):
        net_a, probe_a = build_chain()
        ref = run_reference(net_a, (SEGMENT,))
        net_b, probe_b = build_chain()
        episode = TraceEngine(net_b).run_episode((SEGMENT,))
        assert episode.mode == "replay"
        assert probe_b.times == probe_a.times
        assert episode.events == ref.events_processed
        assert episode.final_time_ps == ref.now
        assert episode.margins == dict(ref.margins)
        assert len(episode.violations) == len(ref.violations)

    def test_stateful_cell_replay(self):
        net_a, probe_a = build_tff()
        seg = tuple(("t0", "din", 60.0 * k) for k in range(8))
        ref = run_reference(net_a, (seg,))
        net_b, probe_b = build_tff()
        episode = TraceEngine(net_b).run_episode((seg,))
        assert episode.mode == "replay"
        assert probe_b.times == probe_a.times
        assert len(probe_b.times) == 4  # TFF halves the train
        assert episode.events == ref.events_processed

    def test_switch_counts_restored(self):
        net_a, _ = build_chain()
        run_reference(net_a, (SEGMENT,))
        net_b, _ = build_chain()
        TraceEngine(net_b).run_episode((SEGMENT,))
        for name, cell in net_a.cells.items():
            assert net_b.cells[name].switch_count == cell.switch_count

    def test_wire_jitter_replay_bit_identical(self):
        for seed in (0, 1, "stringseed"):
            net_a, probe_a = build_chain()
            ref = run_reference(
                net_a, (SEGMENT,), jitter_ps=0.4, seed=seed,
                jitter_mode="wire",
            )
            net_b, probe_b = build_chain()
            engine = TraceEngine(net_b)
            episode = engine.run_episode(
                (SEGMENT,), jitter_ps=0.4, seed=seed, jitter_mode="wire"
            )
            assert episode.mode == "replay", seed
            assert probe_b.times == probe_a.times, seed
            assert episode.margins == dict(ref.margins)

    def test_global_jitter_mode_falls_back(self):
        net_a, probe_a = build_chain()
        ref = run_reference(
            net_a, (SEGMENT,), jitter_ps=0.4, seed=7, jitter_mode="global"
        )
        net_b, probe_b = build_chain()
        engine = TraceEngine(net_b)
        episode = engine.run_episode(
            (SEGMENT,), jitter_ps=0.4, seed=7, jitter_mode="global"
        )
        assert episode.mode == "fallback"
        assert engine.stats["fallbacks"] == 1
        assert probe_b.times == probe_a.times

    def test_divergent_jitter_falls_back_bit_identical(self):
        # Sigma comparable to the stimulus spacing flips arrival order.
        net_a, probe_a = build_chain()
        ref = run_reference(
            net_a, (SEGMENT,), jitter_ps=120.0, seed=3, jitter_mode="wire"
        )
        net_b, probe_b = build_chain()
        engine = TraceEngine(net_b)
        episode = engine.run_episode(
            (SEGMENT,), jitter_ps=120.0, seed=3, jitter_mode="wire"
        )
        assert episode.mode == "fallback"
        assert probe_b.times == probe_a.times
        assert len(episode.violations) == len(ref.violations)

    def test_pulse_trace_round_trip(self):
        from repro.rsfq import PulseTrace

        net_a, _ = build_chain()
        trace = PulseTrace()
        sim = Simulator(net_a, trace=trace)
        for name, port, t in SEGMENT:
            sim.schedule_input(name, port, t)
        sim.run()
        net_b, _ = build_chain()
        episode = TraceEngine(net_b).run_episode((SEGMENT,), want_trace=True)
        assert episode.mode == "replay"
        assert episode.trace == trace


class TestFaults:
    @pytest.mark.parametrize("kind", (
        "stuck_cell", "pulse_drop", "pulse_duplicate", "extra_delay",
        "flux_trap",
    ))
    def test_injecting_model_falls_back_bit_identical(self, kind):
        model = FaultModel.single(kind, probability=1.0, seed=5)
        net_a, probe_a = build_chain()
        ref = run_reference(net_a, (SEGMENT,), faults=model)
        net_b, probe_b = build_chain()
        episode = TraceEngine(net_b).run_episode((SEGMENT,), faults=model)
        assert episode.mode == "fallback"
        assert probe_b.times == probe_a.times
        assert episode.fault_counts == ref.fault_counts()
        assert episode.injection_log == ref.injection_log()

    def test_zero_trigger_model_replays(self):
        model = FaultModel.single("pulse_drop", probability=0.0, seed=5)
        net_a, probe_a = build_chain()
        ref = run_reference(net_a, (SEGMENT,), faults=model)
        net_b, probe_b = build_chain()
        episode = TraceEngine(net_b).run_episode((SEGMENT,), faults=model)
        assert episode.mode == "replay"
        assert probe_b.times == probe_a.times
        assert episode.fault_counts == ref.fault_counts() == {}
        assert episode.injection_log == ref.injection_log()


class TestCache:
    def test_cold_miss_then_cross_engine_warm_hit(self, tmp_path):
        cache = PlanCache(root=tmp_path)
        net_a, _ = build_chain()
        first = TraceEngine(net_a, cache=cache)
        first.run_episode((SEGMENT,))
        assert first.stats["cache_misses"] == 1
        assert first.stats["records"] == 1

        net_b, probe_b = build_chain()
        second = TraceEngine(net_b, cache=cache)
        episode = second.run_episode((SEGMENT,))
        assert episode.mode == "replay"
        assert second.stats["cache_hits"] == 1
        assert second.stats["records"] == 0

        net_c, probe_c = build_chain()
        run_reference(net_c, (SEGMENT,))
        assert probe_b.times == probe_c.times

    def test_cache_entries_namespaced_by_kind(self, tmp_path):
        cache = PlanCache(root=tmp_path)
        net, _ = build_chain()
        TraceEngine(net, cache=cache).run_episode((SEGMENT,))
        entries = list((tmp_path / TRACE_KIND).glob("*.npz"))
        assert len(entries) == 1

    def test_corrupt_cache_entry_re_records(self, tmp_path):
        cache = PlanCache(root=tmp_path)
        net, _ = build_chain()
        TraceEngine(net, cache=cache).run_episode((SEGMENT,))
        entry = next((tmp_path / TRACE_KIND).glob("*.npz"))
        entry.write_bytes(b"not a trace")
        net_b, probe_b = build_chain()
        engine = TraceEngine(net_b, cache=cache)
        episode = engine.run_episode((SEGMENT,))
        assert episode.mode == "replay"
        assert engine.stats["records"] == 1

    def test_compiled_trace_save_load_round_trip(self, tmp_path):
        net, _ = build_chain()
        trace = record_trace(net, (SEGMENT,))
        path = tmp_path / "trace.npz"
        trace.save(path)
        loaded = CompiledTrace.load(path)
        assert loaded.fingerprint == trace.fingerprint
        assert loaded.times.tolist() == trace.times.tolist()
        assert loaded.margins == trace.margins

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.npz"
        path.write_bytes(b"garbage")
        with pytest.raises(ConfigurationError):
            CompiledTrace.load(path)


class TestSimulatorEngineParam:
    def test_unknown_engine_rejected(self):
        net, _ = build_chain()
        sim = Simulator(net)
        with pytest.raises(ConfigurationError, match="unknown engine"):
            sim.run(engine="warp")

    def test_traced_run_matches_event_run(self):
        net_a, probe_a = build_chain()
        sim_a = Simulator(net_a)
        for name, port, t in SEGMENT:
            sim_a.schedule_input(name, port, t)
        sim_a.run()

        net_b, probe_b = build_chain()
        sim_b = Simulator(net_b)
        for name, port, t in SEGMENT:
            sim_b.schedule_input(name, port, t)
        sim_b.run(engine="traced")
        assert probe_b.times == probe_a.times
        assert sim_b.now == sim_a.now
        assert sim_b.events_processed == sim_a.events_processed
        assert sim_b.margins == sim_a.margins

    def test_replayed_simulator_requires_reset(self):
        net, probe = build_chain()
        sim = Simulator(net)
        for name, port, t in SEGMENT:
            sim.schedule_input(name, port, t)
        sim.run(engine="traced")
        with pytest.raises(ConfigurationError, match="reset"):
            sim.schedule_input("j0", "din", 99999.0)
        with pytest.raises(ConfigurationError, match="reset"):
            sim.run()
        sim.reset()
        sim.schedule_input("j0", "din", 0.0)
        sim.run(engine="traced")
        assert probe.times  # usable again after reset

    def test_mid_run_state_falls_back(self):
        net_a, probe_a = build_chain()
        sim_a = Simulator(net_a)
        sim_a.schedule_input("j0", "din", 0.0)
        sim_a.run()
        sim_a.schedule_input("j0", "din", 500.0)
        sim_a.run()

        net_b, probe_b = build_chain()
        sim_b = Simulator(net_b)
        sim_b.schedule_input("j0", "din", 0.0)
        sim_b.run(engine="traced")
        sim_b.reset()
        # After a completed run, now > 0: ineligible for replay but must
        # still produce the event-engine answer.
        sim_b2 = Simulator(net_b)
        sim_b2.schedule_input("j0", "din", 0.0)
        sim_b2.run()
        sim_b2.schedule_input("j0", "din", 500.0)
        sim_b2.run(engine="traced")
        assert probe_b.times == probe_a.times

    def test_strict_traced_raises_like_event_engine(self):
        net_a, _ = build_tff()
        seg = (("t0", "din", 0.0), ("t0", "din", 0.5))
        sim_a = Simulator(net_a, strict=True)
        for name, port, t in seg:
            sim_a.schedule_input(name, port, t)
        with pytest.raises(ConstraintViolationError):
            sim_a.run()

        net_b, _ = build_tff()
        sim_b = Simulator(net_b, strict=True)
        for name, port, t in seg:
            sim_b.schedule_input(name, port, t)
        with pytest.raises(ConstraintViolationError):
            sim_b.run(engine="traced")


class TestSession:
    def test_traced_session_matches_event_session(self):
        net_a, _ = build_chain()
        net_b, _ = build_chain()
        sa = SimulationSession(net_a, record_traces=True)
        sb = SimulationSession(net_b, record_traces=True, engine="traced")
        ra = sa.run(list(SEGMENT))
        rb = sb.run(list(SEGMENT))
        assert rb.trace == ra.trace
        assert rb.stats.events == ra.stats.events
        assert rb.stats.final_time_ps == ra.stats.final_time_ps
        assert sb.trace_stats()["replays"] >= 1

    def test_traced_session_jitter_seeds(self):
        net_a, _ = build_chain()
        net_b, _ = build_chain()
        sa = SimulationSession(
            net_a, jitter_ps=0.3, jitter_mode="wire", record_traces=True
        )
        sb = SimulationSession(
            net_b, jitter_ps=0.3, jitter_mode="wire", record_traces=True,
            engine="traced",
        )
        ra = sa.run_batch([list(SEGMENT)] * 3, seeds=[10, 11, 12])
        rb = sb.run_batch([list(SEGMENT)] * 3, seeds=[10, 11, 12])
        for x, y in zip(ra, rb):
            assert x.trace == y.trace
            assert x.violations == y.violations

    def test_unknown_session_engine_rejected(self):
        net, _ = build_chain()
        with pytest.raises(ConfigurationError, match="unknown engine"):
            SimulationSession(net, engine="warp")


class TestScheduleRecorder:
    def test_captured_segments_reproduce_closed_loop_run(self):
        net_a, probe_a = build_chain()
        rec = ScheduleRecorder(net_a)
        rec.schedule_input("j0", "din", 0.0)
        rec.run()
        rec.schedule_input("j0", "din", 400.0)
        rec.schedule_input("j0", "din", 600.0)
        rec.run()
        segments = rec.captured_segments()
        assert segments == (
            (("j0", "din", 0.0),),
            (("j0", "din", 400.0), ("j0", "din", 600.0)),
        )
        net_b, probe_b = build_chain()
        episode = TraceEngine(net_b).run_episode(segments)
        assert probe_b.times == probe_a.times

    def test_reset_clears_capture(self):
        net, _ = build_chain()
        rec = ScheduleRecorder(net)
        rec.schedule_input("j0", "din", 0.0)
        rec.run()
        rec.reset()
        assert rec.captured_segments() == ()


class TestCounters:
    def test_global_counters_and_families(self):
        GLOBAL_TRACE_COUNTERS.reset()
        net, _ = build_chain()
        TraceEngine(net).run_episode((SEGMENT,))
        snap = GLOBAL_TRACE_COUNTERS.snapshot()
        assert snap["records"] == 1
        assert snap["replays"] == 1
        families = trace_counter_families()
        names = {f[0] for f in families}
        assert names == {
            "sushi_trace_records_total",
            "sushi_trace_replays_total",
            "sushi_trace_fallbacks_total",
            "sushi_trace_cache_hits_total",
            "sushi_trace_cache_misses_total",
        }
        by_name = {f[0]: f[3][0][1] for f in families}
        assert by_name["sushi_trace_records_total"] >= 1

    def test_gateway_metrics_expose_trace_counters(self):
        from repro.serve.metrics import render_prometheus

        text = render_prometheus(trace_counter_families())
        assert "sushi_trace_replays_total" in text
        assert "sushi_trace_fallbacks_total" in text
