"""Library-wide consistency properties over every RSFQ cell type."""

import pytest

from repro.rsfq import Netlist, Simulator, library
from repro.rsfq.logic import CLOCKED_GATES

ALL_TYPES = tuple(c for c in library.ALL_CELLS) + CLOCKED_GATES


class TestCellMetadata:
    @pytest.mark.parametrize("cls", ALL_TYPES)
    def test_constraints_reference_declared_ports(self, cls):
        for port_a, port_b in cls.CONSTRAINTS:
            assert port_a in cls.INPUTS, (cls, port_a)
            assert port_b in cls.INPUTS, (cls, port_b)

    @pytest.mark.parametrize("cls", ALL_TYPES)
    def test_ports_are_unique(self, cls):
        assert len(set(cls.INPUTS)) == len(cls.INPUTS)
        assert len(set(cls.OUTPUTS)) == len(cls.OUTPUTS)
        assert not set(cls.INPUTS) & set(cls.OUTPUTS)

    @pytest.mark.parametrize("cls", ALL_TYPES)
    def test_delay_positive_for_active_cells(self, cls):
        if cls is library.Probe:
            return
        assert cls.DELAY_PS > 0
        assert cls.JJ_COUNT > 0
        assert cls.AREA_UM2 > 0

    @pytest.mark.parametrize("cls", ALL_TYPES)
    def test_intervals_are_positive(self, cls):
        for value in cls.CONSTRAINTS.values():
            assert value > 0


class TestCellCausality:
    @pytest.mark.parametrize(
        "cls", [c for c in ALL_TYPES if c is not library.Probe]
    )
    def test_outputs_never_precede_inputs(self, cls):
        """Any pulse a cell emits must be strictly later than the input
        that caused it (causality of the event model)."""
        cell = cls("c")
        net = Netlist("harness")
        net.add(cell)
        probes = {}
        for port in cls.OUTPUTS:
            probe = net.add(library.Probe(f"p_{port}"))
            net.connect(cell, port, probe, "din", delay=0.0)
            probes[port] = probe
        sim = Simulator(net)
        # Stimulate every input generously spaced; clocked gates get data
        # before clock.
        t = 0.0
        for port in cls.INPUTS:
            if port != "clk":
                sim.schedule_input(cell, port, t)
                t += 100.0
        if "clk" in cls.INPUTS:
            sim.schedule_input(cell, "clk", t)
        sim.run()
        for probe in probes.values():
            for emitted in probe.times:
                assert emitted > 0.0

    @pytest.mark.parametrize(
        "cls", [c for c in ALL_TYPES if c is not library.Probe]
    )
    def test_reset_state_restores_power_on(self, cls):
        """After reset_state, every flux-state attribute matches a fresh
        instance (the cooldown semantics all experiments rely on)."""
        net = Netlist("h")
        cell = net.add(cls("b"))
        sim = Simulator(net)
        t = 0.0
        for port in cls.INPUTS:
            sim.schedule_input(cell, port, t)
            t += 100.0
        sim.run()
        cell.reset_state()
        baseline = cls("c")
        for attr in ("stored", "state", "got_a", "got_b"):
            if hasattr(baseline, attr):
                assert getattr(cell, attr) == getattr(baseline, attr)
        assert cell.switch_count == 0
        assert cell.last_arrival(cls.INPUTS[0]) is None
