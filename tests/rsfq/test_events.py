"""Tests for the event queue primitives (tuple fast path)."""

import pytest

from repro.rsfq.events import EventQueue, PulseEvent, SortedListQueue


@pytest.fixture(params=[EventQueue, SortedListQueue])
def queue(request):
    return request.param()


class TestQueueProtocol:
    def test_pops_in_time_order(self, queue):
        queue.push(30.0, "b", "din")
        queue.push(10.0, "a", "din")
        queue.push(20.0, "c", "din")
        order = [queue.pop()[2] for _ in range(3)]
        assert order == ["a", "c", "b"]

    def test_ties_broken_by_schedule_order(self, queue):
        queue.push(5.0, "first", "din")
        queue.push(5.0, "second", "din")
        assert queue.pop()[2] == "first"
        assert queue.pop()[2] == "second"

    def test_entries_are_plain_tuples(self, queue):
        """The hot path never allocates event objects: push/pop move bare
        ``(time, seq, target, port)`` tuples."""
        entry = queue.push(3.0, 7, 1)
        assert type(entry) is tuple
        assert entry == (3.0, 0, 7, 1)
        popped = queue.pop()
        assert type(popped) is tuple
        assert popped == (3.0, 0, 7, 1)

    def test_integer_indexed_payloads(self, queue):
        """Targets/ports are opaque: the simulator stores elaborated
        integer indices."""
        queue.push(1.0, 4, 2)
        time, seq, cell_idx, port_idx = queue.pop()
        assert (time, seq, cell_idx, port_idx) == (1.0, 0, 4, 2)

    def test_peek_does_not_remove(self, queue):
        queue.push(7.0, "a", "din")
        assert queue.peek_time() == 7.0
        assert len(queue) == 1

    def test_empty_behaviour(self, queue):
        assert queue.pop() is None
        assert queue.pop_event() is None
        assert queue.peek_time() is None
        assert not queue

    def test_clear(self, queue):
        queue.push(1.0, "a", "din")
        queue.clear()
        assert len(queue) == 0

    def test_backends_agree_on_order(self):
        heap, sorted_q = EventQueue(), SortedListQueue()
        schedule = [(5.0, "a"), (1.0, "b"), (5.0, "c"), (0.5, "d"), (1.0, "e")]
        for t, name in schedule:
            heap.push(t, name, "din")
            sorted_q.push(t, name, "din")
        heap_order = [heap.pop() for _ in range(len(schedule))]
        sorted_order = [sorted_q.pop() for _ in range(len(schedule))]
        assert heap_order == sorted_order


class TestPulseEventMaterialisation:
    def test_pop_event_materialises_at_debug_boundary(self, queue):
        queue.push(3.0, "cell", "port")
        event = queue.pop_event()
        assert isinstance(event, PulseEvent)
        assert event.time == 3.0
        assert event.component == "cell"
        assert event.port == "port"
        assert event.sort_key() == (3.0, 0)

    def test_from_entry_round_trip(self):
        entry = (2.5, 9, 3, 1)
        event = PulseEvent.from_entry(entry)
        assert (event.time, event.seq, event.component, event.port) == entry
