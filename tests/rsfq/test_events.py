"""Tests for the event queue primitives."""

from repro.rsfq.events import EventQueue, PulseEvent


class TestEventQueue:
    def test_pops_in_time_order(self):
        queue = EventQueue()
        queue.push(30.0, "b", "din")
        queue.push(10.0, "a", "din")
        queue.push(20.0, "c", "din")
        order = [queue.pop().component for _ in range(3)]
        assert order == ["a", "c", "b"]

    def test_ties_broken_by_schedule_order(self):
        queue = EventQueue()
        queue.push(5.0, "first", "din")
        queue.push(5.0, "second", "din")
        assert queue.pop().component == "first"
        assert queue.pop().component == "second"

    def test_peek_does_not_remove(self):
        queue = EventQueue()
        queue.push(7.0, "a", "din")
        assert queue.peek_time() == 7.0
        assert len(queue) == 1

    def test_empty_behaviour(self):
        queue = EventQueue()
        assert queue.pop() is None
        assert queue.peek_time() is None
        assert not queue

    def test_clear(self):
        queue = EventQueue()
        queue.push(1.0, "a", "din")
        queue.clear()
        assert len(queue) == 0

    def test_event_fields(self):
        queue = EventQueue()
        event = queue.push(3.0, "cell", "port")
        assert isinstance(event, PulseEvent)
        assert event.time == 3.0
        assert event.component == "cell"
        assert event.port == "port"
        assert event.sort_key() == (3.0, 0)
