"""Unit tests for the RSFQ standard-cell behavioural models."""

import pytest

from repro.errors import ConfigurationError
from repro.rsfq import Netlist, Simulator, library


def single_cell_harness(cell):
    """Wire every output of ``cell`` to a probe; return (sim, probes)."""
    net = Netlist("harness")
    net.add(cell)
    probes = {}
    for port in cell.OUTPUTS:
        probe = net.add(library.Probe(f"probe_{port}"))
        net.connect(cell, port, probe, "din", delay=0.0)
        probes[port] = probe
    return Simulator(net), probes


class TestJTL:
    def test_passes_pulse_with_delay(self):
        jtl = library.JTL("j")
        sim, probes = single_cell_harness(jtl)
        sim.schedule_input(jtl, "din", 10.0)
        sim.run()
        assert probes["dout"].times == [pytest.approx(10.0 + library.JTL.DELAY_PS)]

    def test_passes_every_pulse(self):
        jtl = library.JTL("j")
        sim, probes = single_cell_harness(jtl)
        for i in range(5):
            sim.schedule_input(jtl, "din", 25.0 * i)
        sim.run()
        assert len(probes["dout"].times) == 5


class TestSPL:
    def test_duplicates_on_both_outputs(self):
        spl = library.SPL("s")
        sim, probes = single_cell_harness(spl)
        sim.schedule_input(spl, "din", 0.0)
        sim.run()
        assert len(probes["doutA"].times) == 1
        assert len(probes["doutB"].times) == 1
        assert probes["doutA"].times == probes["doutB"].times

    def test_spl3_three_outputs(self):
        spl = library.SPL3("s")
        sim, probes = single_cell_harness(spl)
        sim.schedule_input(spl, "din", 0.0)
        sim.run()
        for port in ("doutA", "doutB", "doutC"):
            assert len(probes[port].times) == 1


class TestCB:
    def test_merges_both_inputs(self):
        cb = library.CB("c")
        sim, probes = single_cell_harness(cb)
        sim.schedule_input(cb, "dinA", 0.0)
        sim.schedule_input(cb, "dinB", 30.0)
        sim.run()
        assert len(probes["dout"].times) == 2

    def test_cross_input_constraint_violation_recorded(self):
        cb = library.CB("c")
        sim, probes = single_cell_harness(cb)
        sim.schedule_input(cb, "dinA", 0.0)
        sim.schedule_input(cb, "dinB", 2.0)  # < 5.7 ps cross interval
        sim.run()
        assert len(sim.violations) == 1
        v = sim.violations[0]
        assert v.cell_type == "CB"
        assert v.required == pytest.approx(5.7)
        assert v.actual == pytest.approx(2.0)

    def test_cross_input_ok_beyond_interval(self):
        cb = library.CB("c")
        sim, _ = single_cell_harness(cb)
        sim.schedule_input(cb, "dinA", 0.0)
        sim.schedule_input(cb, "dinB", 6.0)
        sim.run()
        assert sim.violations == []

    def test_cb3_merges_three(self):
        cb = library.CB3("c")
        sim, probes = single_cell_harness(cb)
        sim.schedule_input(cb, "dinA", 0.0)
        sim.schedule_input(cb, "dinB", 30.0)
        sim.schedule_input(cb, "dinC", 60.0)
        sim.run()
        assert len(probes["dout"].times) == 3


class TestDFF:
    def test_releases_stored_pulse_on_clock(self):
        dff = library.DFF("d")
        sim, probes = single_cell_harness(dff)
        sim.schedule_input(dff, "din", 0.0)
        sim.schedule_input(dff, "clk", 20.0)
        sim.run()
        assert probes["dout"].times == [pytest.approx(20.0 + library.DFF.DELAY_PS)]

    def test_clock_without_data_emits_nothing(self):
        dff = library.DFF("d")
        sim, probes = single_cell_harness(dff)
        sim.schedule_input(dff, "clk", 20.0)
        sim.run()
        assert probes["dout"].times == []

    def test_read_is_destructive(self):
        dff = library.DFF("d")
        sim, probes = single_cell_harness(dff)
        sim.schedule_input(dff, "din", 0.0)
        sim.schedule_input(dff, "clk", 20.0)
        sim.schedule_input(dff, "clk", 60.0)
        sim.run()
        assert len(probes["dout"].times) == 1

    def test_din_to_clk_constraint(self):
        dff = library.DFF("d")
        sim, _ = single_cell_harness(dff)
        sim.schedule_input(dff, "din", 0.0)
        sim.schedule_input(dff, "clk", 4.0)  # < 8.53 ps
        sim.run()
        assert len(sim.violations) == 1


class TestNDRO:
    def test_read_is_non_destructive(self):
        ndro = library.NDRO("n")
        sim, probes = single_cell_harness(ndro)
        sim.schedule_input(ndro, "din", 0.0)
        sim.schedule_input(ndro, "clk", 50.0)
        sim.schedule_input(ndro, "clk", 100.0)
        sim.run()
        assert len(probes["dout"].times) == 2

    def test_reset_clears_state(self):
        ndro = library.NDRO("n")
        sim, probes = single_cell_harness(ndro)
        sim.schedule_input(ndro, "din", 0.0)
        sim.schedule_input(ndro, "rst", 50.0)
        sim.schedule_input(ndro, "clk", 100.0)
        sim.run()
        assert probes["dout"].times == []

    def test_unset_switch_blocks_clock(self):
        ndro = library.NDRO("n")
        sim, probes = single_cell_harness(ndro)
        sim.schedule_input(ndro, "clk", 10.0)
        sim.run()
        assert probes["dout"].times == []

    def test_din_rst_separation_constraint(self):
        ndro = library.NDRO("n")
        sim, _ = single_cell_harness(ndro)
        sim.schedule_input(ndro, "din", 0.0)
        sim.schedule_input(ndro, "rst", 10.0)  # < 39.9 ps
        sim.run()
        assert len(sim.violations) == 1
        assert sim.violations[0].required == pytest.approx(39.9)


class TestTFF:
    def test_tffl_emits_on_odd_pulses(self):
        tff = library.TFFL("t")
        sim, probes = single_cell_harness(tff)
        for i in range(4):
            sim.schedule_input(tff, "din", 50.0 * i)
        sim.run()
        # Flips 0->1 on pulses 1 and 3.
        assert len(probes["dout"].times) == 2
        assert probes["dout"].times[0] == pytest.approx(library.TFFL.DELAY_PS)

    def test_tffr_emits_on_even_pulses(self):
        tff = library.TFFR("t")
        sim, probes = single_cell_harness(tff)
        for i in range(4):
            sim.schedule_input(tff, "din", 50.0 * i)
        sim.run()
        # Flips 1->0 on pulses 2 and 4.
        assert len(probes["dout"].times) == 2
        assert probes["dout"].times[0] == pytest.approx(50.0 + library.TFFR.DELAY_PS)

    def test_tff_pair_partitions_pulses(self):
        """A TFFL/TFFR pair fed the same stream emits exactly one pulse per
        input between them (the SC relies on this)."""
        net = Netlist("pair")
        spl = net.add(library.SPL("spl"))
        tffl = net.add(library.TFFL("l"))
        tffr = net.add(library.TFFR("r"))
        pl = net.add(library.Probe("pl"))
        pr = net.add(library.Probe("pr"))
        net.connect(spl, "doutA", tffl, "din", delay=0.0)
        net.connect(spl, "doutB", tffr, "din", delay=0.0)
        net.connect(tffl, "dout", pl, "din", delay=0.0)
        net.connect(tffr, "dout", pr, "din", delay=0.0)
        sim = Simulator(net)
        n = 7
        for i in range(n):
            sim.schedule_input(spl, "din", 50.0 * i)
        sim.run()
        assert len(pl.times) + len(pr.times) == n
        assert len(pl.times) == 4  # odd pulses: 1,3,5,7
        assert len(pr.times) == 3

    def test_min_toggle_interval_constraint(self):
        tff = library.TFFL("t")
        sim, _ = single_cell_harness(tff)
        sim.schedule_input(tff, "din", 0.0)
        sim.schedule_input(tff, "din", 20.0)  # < 39.9 ps
        sim.run()
        assert len(sim.violations) == 1


class TestConverters:
    def test_dcsfq_and_sfqdc_pass_pulses(self):
        for cls in (library.DCSFQ, library.SFQDC):
            cell = cls("c")
            sim, probes = single_cell_harness(cell)
            sim.schedule_input(cell, "din", 0.0)
            sim.run()
            assert len(probes["dout"].times) == 1


class TestCellGenerics:
    @pytest.mark.parametrize("cls", library.ALL_CELLS)
    def test_resource_figures_are_consistent(self, cls):
        assert cls.JJ_COUNT >= 0
        assert cls.AREA_UM2 >= 0.0
        assert cls.DELAY_PS >= 0.0
        assert cls.STATIC_POWER_NW >= 0.0
        if cls is not library.Probe:
            assert cls.JJ_COUNT > 0

    def test_unknown_input_port_raises(self):
        jtl = library.JTL("j")
        sim, _ = single_cell_harness(jtl)
        with pytest.raises(ConfigurationError):
            sim.schedule_input(jtl, "nonsense", 0.0)

    def test_reset_state_clears_everything(self):
        ndro = library.NDRO("n")
        sim, probes = single_cell_harness(ndro)
        sim.schedule_input(ndro, "din", 0.0)
        sim.run()
        assert ndro.stored
        sim.reset()
        assert not ndro.stored
        assert ndro.switch_count == 0
