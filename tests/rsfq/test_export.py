"""Tests for netlist serialisation (JSON round trip, DOT export)."""

import pytest

from repro.errors import ConfigurationError
from repro.neuro.npe import GateLevelNPE
from repro.neuro.state_controller import Polarity
from repro.neuro.timing import NPEDriver
from repro.rsfq import Netlist, Simulator, library
from repro.rsfq.export import from_dict, from_json, to_dict, to_dot, to_json


def sample_netlist():
    net = Netlist("sample")
    tff = net.add(library.TFFL("t"))
    probe = net.add(library.Probe("p"))
    net.connect(tff, "dout", probe, "din", delay=2.5, jtl_count=3)
    return net


class TestJsonRoundTrip:
    def test_dict_structure(self):
        payload = to_dict(sample_netlist())
        assert payload["name"] == "sample"
        assert payload["totals"]["cells"] == 2
        assert payload["wires"][0]["jtl_count"] == 3

    def test_round_trip_preserves_structure(self):
        original = sample_netlist()
        rebuilt = from_json(to_json(original))
        assert rebuilt.cell_histogram() == original.cell_histogram()
        assert len(rebuilt.wires) == len(original.wires)
        assert rebuilt.wiring_jj_count() == original.wiring_jj_count()

    def test_round_trip_preserves_behaviour(self):
        """A reloaded NPE behaves identically to the original."""
        net = Netlist("npe")
        GateLevelNPE(net, "npe", n_sc=3)
        rebuilt = from_json(to_json(net))

        def run(circuit):
            npe_like = circuit.cells["npe.sc0.in_cb"]
            sim = Simulator(circuit)
            # Drive via raw cells: arm set1 on every SC, pulse 5 times.
            for i in range(3):
                sim.schedule_input(
                    circuit.cells[f"npe.sc{i}.set1_spl"], "din", 0.0
                )
            for k in range(5):
                sim.schedule_input(npe_like, "dinA", 200.0 + 100.0 * k)
            sim.run()
            return [
                circuit.cells[f"npe.sc{i}.tffl"].state for i in range(3)
            ]

        assert run(net) == run(rebuilt)

    def test_clocked_gates_serialisable(self):
        from repro.rsfq.logic import XOR2

        net = Netlist("g")
        net.add(XOR2("x"))
        rebuilt = from_json(to_json(net))
        assert type(rebuilt.cells["x"]).__name__ == "XOR2"

    def test_unknown_type_rejected(self):
        with pytest.raises(ConfigurationError):
            from_dict({"name": "x", "cells": [
                {"name": "a", "type": "FluxCapacitor"}
            ], "wires": []})

    def test_malformed_payload_rejected(self):
        with pytest.raises(ConfigurationError):
            from_dict({"name": "x"})


class TestDot:
    def test_dot_contains_cells_and_wires(self):
        dot = to_dot(sample_netlist())
        assert dot.startswith('digraph "sample"')
        assert '"t" -> "p"' in dot
        assert "TFFL" in dot
        assert "3 JTL" in dot
        assert dot.rstrip().endswith("}")
