"""Property tests: trace replay == strict event engine, for random inputs.

Two invariants, over randomly generated small netlists and stimulus
schedules (issue 7 satellite):

* whatever mode an episode is served in, every observable (probe times,
  margins, violation counts, event totals, final time) is bit-identical
  to a fresh event-engine :class:`Simulator` run of the same segments;
* a stimulus schedule the engine has never recorded -- with recording
  disabled -- *provably* takes the fallback path, asserted through the
  replay stats counters, and still returns the bit-identical answer.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.rsfq import Netlist, Simulator, library
from repro.rsfq.trace import TraceEngine

# Cell menu for the random pipelines: single-input single-output stages
# so any stimulus reaches the probe (stateful TFFL included to exercise
# non-trivial flux state in the recording).
STAGES = ("jtl", "tffl")


def build_pipeline(stages, delays):
    net = Netlist("prop")
    prev = None
    for i, (kind, delay) in enumerate(zip(stages, delays)):
        cell = net.add(
            library.JTL(f"c{i}") if kind == "jtl" else library.TFFL(f"c{i}")
        )
        if prev is not None:
            net.connect(prev, "dout", cell, "din", delay=delay)
        prev = cell
    probe = net.add(library.Probe("probe"))
    net.connect(prev, "dout", probe, "din")
    return net, probe


def run_reference(net, segments, **kwargs):
    sim = Simulator(net, **kwargs)
    for seg in segments:
        for name, port, t in seg:
            sim.schedule_input(name, port, t)
        sim.run()
    return sim


netlists = st.tuples(
    st.lists(st.sampled_from(STAGES), min_size=2, max_size=6),
    st.lists(st.sampled_from((2.0, 2.5, 4.0)), min_size=6, max_size=6),
)

# Multiples of 25 ps with generous spacing relative to every Table 1
# constraint, so strict recording usually succeeds; collisions and tight
# spacings still occur via duplicates and are served by fallback.
stimulus_times = st.lists(
    st.integers(min_value=0, max_value=40).map(lambda k: 25.0 * k),
    min_size=1, max_size=8, unique=True,
)

jitter = st.sampled_from(((0.0, None), (0.2, 1), (0.2, "s"), (30.0, 2)))


@settings(max_examples=30, deadline=None)
@given(netlist=netlists, times=stimulus_times, jitter=jitter)
def test_replay_bit_identical_to_event_engine(netlist, times, jitter):
    stages, delays = netlist
    sigma, seed = jitter
    segment = tuple(("c0", "din", t) for t in sorted(times))

    net_a, probe_a = build_pipeline(stages, delays)
    ref = run_reference(
        net_a, (segment,), jitter_ps=sigma, seed=seed, jitter_mode="wire"
    )

    net_b, probe_b = build_pipeline(stages, delays)
    engine = TraceEngine(net_b)
    episode = engine.run_episode(
        (segment,), jitter_ps=sigma, seed=seed, jitter_mode="wire"
    )

    assert episode.mode in ("replay", "fallback")
    assert probe_b.times == probe_a.times
    assert episode.events == ref.events_processed
    assert episode.final_time_ps == ref.now
    assert episode.margins == dict(ref.margins)
    assert len(episode.violations) == len(ref.violations)
    served = engine.stats["replays"] + engine.stats["fallbacks"]
    assert served == 1


@settings(max_examples=20, deadline=None)
@given(netlist=netlists, times=stimulus_times,
       shift=st.sampled_from((25.0, 75.0)))
def test_unseen_stimulus_provably_falls_back(netlist, times, shift):
    stages, delays = netlist
    recorded = tuple(("c0", "din", t) for t in sorted(times))
    # A schedule the trace has never seen: same shape, shifted times.
    unseen = tuple(("c0", "din", t + shift) for _, _, t in recorded)

    net, _ = build_pipeline(stages, delays)
    engine = TraceEngine(net)
    engine.run_episode((recorded,))
    before = dict(engine.stats)

    net_b, probe_b = build_pipeline(stages, delays)
    episode = engine.run_episode(
        (unseen,), netlist=net_b, allow_record=False
    )
    assert episode.mode == "fallback"
    assert engine.stats["fallbacks"] == before["fallbacks"] + 1
    assert engine.stats["records"] == before["records"]

    net_c, probe_c = build_pipeline(stages, delays)
    run_reference(net_c, (unseen,))
    assert probe_b.times == probe_c.times
