"""Tests for timing-margin tracking (the pre-tape-out slack view)."""

import pytest

from repro.neuro.chip import ChipConfig, ChipDriver, GateLevelChip
from repro.neuro.state_controller import Polarity
from repro.rsfq import Netlist, Simulator, library


class TestMarginTracking:
    def test_tightest_interval_recorded(self):
        net = Netlist("m")
        tff = net.add(library.TFFL("t"))
        sim = Simulator(net)
        for t in (0.0, 100.0, 150.0, 260.0):
            sim.schedule_input(tff, "din", t)
        sim.run()
        required, tightest = sim.margins[("TFFL", "din", "din")]
        assert required == pytest.approx(39.9)
        assert tightest == pytest.approx(50.0)

    def test_margin_report_sorted_tightest_first(self):
        net = Netlist("m")
        tff = net.add(library.TFFL("t"))
        jtl = net.add(library.JTL("j"))
        sim = Simulator(net)
        sim.schedule_input(tff, "din", 0.0)
        sim.schedule_input(tff, "din", 45.0)   # slack 5.1
        sim.schedule_input(jtl, "din", 0.0)
        sim.schedule_input(jtl, "din", 200.0)  # slack 180.1
        sim.run()
        rows = sim.margin_report()
        assert rows[0]["cell"] == "TFFL"
        assert rows[0]["slack_ps"] == pytest.approx(5.1)
        assert rows[-1]["slack_ps"] > rows[0]["slack_ps"]

    def test_violations_show_negative_slack(self):
        net = Netlist("m")
        cb = net.add(library.CB("c"))
        sim = Simulator(net)
        sim.schedule_input(cb, "dinA", 0.0)
        sim.schedule_input(cb, "dinB", 2.0)
        sim.run()
        rows = sim.margin_report()
        cross = next(r for r in rows if r["constraint"] == "dinA-dinB")
        assert cross["slack_ps"] < 0
        assert len(sim.violations) == 1

    def test_reset_clears_margins(self):
        net = Netlist("m")
        jtl = net.add(library.JTL("j"))
        sim = Simulator(net)
        sim.schedule_input(jtl, "din", 0.0)
        sim.schedule_input(jtl, "din", 50.0)
        sim.run()
        assert sim.margins
        sim.reset()
        assert sim.margins == {}

    def test_chip_protocol_runs_with_positive_slack_everywhere(self):
        """Sign-off check: a full protocol sequence on the gate-level chip
        leaves every constraint family with positive slack."""
        chip = GateLevelChip(ChipConfig(n=2, sc_per_npe=4,
                                        max_strength=2))
        driver = ChipDriver(chip)
        driver.begin_timestep([3, 5])
        driver.configure_weights([[1, 2], [2, 1]])
        driver.run_pass(Polarity.SET1, [True, True])
        driver.run_pass(Polarity.SET0, [True, False])
        rows = driver.sim.margin_report()
        assert rows, "protocol should exercise at least one constraint"
        assert all(row["slack_ps"] > 0 for row in rows)


class TestMarginPrimitives:
    """Direct coverage of record_margin / margin_report (previously only
    exercised through full protocol runs)."""

    def test_empty_report(self):
        net = Netlist("m")
        net.add(library.JTL("j"))
        sim = Simulator(net)
        assert sim.margins == {}
        assert sim.margin_report() == []

    def test_record_margin_keeps_tightest_observation(self):
        net = Netlist("m")
        net.add(library.JTL("j"))
        sim = Simulator(net)
        sim.record_margin("JTL", "din", "din", 10.0, 50.0)
        sim.record_margin("JTL", "din", "din", 10.0, 12.0)
        sim.record_margin("JTL", "din", "din", 10.0, 30.0)  # looser: ignored
        assert sim.margins[("JTL", "din", "din")] == (10.0, 12.0)

    def test_report_rows_carry_identity_and_rounding(self):
        net = Netlist("m")
        net.add(library.JTL("j"))
        sim = Simulator(net)
        sim.record_margin("NDRO", "din", "clk", 7.125, 9.337)
        (row,) = sim.margin_report()
        assert row == {
            "cell": "NDRO",
            "constraint": "din-clk",
            "required_ps": 7.12,
            "tightest_ps": 9.34,
            "slack_ps": 2.21,
        }

    def test_report_sorted_by_slack_including_negative(self):
        net = Netlist("m")
        net.add(library.JTL("j"))
        sim = Simulator(net)
        sim.record_margin("A", "x", "y", 10.0, 25.0)   # slack +15
        sim.record_margin("B", "x", "y", 10.0, 4.0)    # slack -6
        sim.record_margin("C", "x", "y", 10.0, 10.5)   # slack +0.5
        slacks = [row["slack_ps"] for row in sim.margin_report()]
        assert slacks == sorted(slacks)
        assert slacks[0] == pytest.approx(-6.0)

    def test_merge_margins_tightest_wins(self):
        from repro.rsfq.simulator import merge_margins

        target = {("A", "x", "y"): (10.0, 20.0)}
        merge_margins(target, {("A", "x", "y"): (10.0, 15.0),
                               ("B", "x", "y"): (5.0, 9.0)})
        assert target == {("A", "x", "y"): (10.0, 15.0),
                          ("B", "x", "y"): (5.0, 9.0)}
        merge_margins(target, {("A", "x", "y"): (10.0, 18.0)})  # looser
        assert target[("A", "x", "y")] == (10.0, 15.0)
