"""Tests for pulse-level conversion and waveform rendering (Fig. 14/16)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.rsfq.waveform import (
    PulseTrace,
    count_pulses_from_levels,
    levels_to_pulses,
    pulses_to_levels,
    render_waveform,
)


class TestPulsesToLevels:
    def test_each_pulse_toggles_level(self):
        levels = pulses_to_levels([10.0, 30.0, 50.0], t_end=70.0, dt=10.0)
        # Samples at 0,10,...,60: level flips just after each pulse.
        assert levels.tolist() == [0, 0, 1, 1, 0, 0, 1]

    def test_no_pulses_stays_low(self):
        levels = pulses_to_levels([], t_end=50.0, dt=10.0)
        assert not levels.any()

    def test_three_pulses_invert_level_three_times(self):
        """Paper Fig. 14: 3 output pulses leave the DC level inverted 3x."""
        levels = pulses_to_levels([5.0, 15.0, 25.0], t_end=100.0, dt=1.0)
        assert levels[-1] == 1  # odd pulse count ends high

    def test_bad_dt_rejected(self):
        with pytest.raises(ConfigurationError):
            pulses_to_levels([1.0], t_end=10.0, dt=0.0)

    def test_bad_window_rejected(self):
        with pytest.raises(ConfigurationError):
            pulses_to_levels([1.0], t_end=0.0, t_start=10.0)


class TestRoundTrip:
    def test_levels_to_pulses_recovers_count(self):
        times = [10.0, 30.0, 55.0, 90.0]
        levels = pulses_to_levels(times, t_end=120.0, dt=1.0)
        recovered = levels_to_pulses(levels, dt=1.0)
        assert len(recovered) == len(times)
        assert count_pulses_from_levels(levels) == len(times)

    def test_recovered_times_within_sampling_error(self):
        times = [10.0, 30.0, 55.0]
        dt = 2.0
        levels = pulses_to_levels(times, t_end=100.0, dt=dt)
        recovered = levels_to_pulses(levels, dt=dt)
        for orig, rec in zip(times, recovered):
            assert abs(orig - rec) <= dt

    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=999.0, allow_nan=False),
            max_size=20,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_pulse_count_preserved_when_separated(self, raw_times):
        """Any pulses separated by more than the sampling step survive the
        level round trip (Fig. 14 is invertible at the oscilloscope)."""
        dt = 1.0
        times = sorted(set(round(t) + 0.5 for t in raw_times))
        # Enforce separation > dt.
        separated = []
        for t in times:
            if not separated or t - separated[-1] > dt:
                separated.append(t)
        levels = pulses_to_levels(separated, t_end=1001.0, dt=dt)
        assert count_pulses_from_levels(levels) == len(separated)

    def test_empty_levels(self):
        assert levels_to_pulses([], dt=1.0) == []


class TestPulseTrace:
    def test_records_and_reads_back(self):
        trace = PulseTrace()
        trace.record("npe0", "out", 1.0)
        trace.record("npe0", "out", 2.0)
        trace.record("npe1", "out", 3.0)
        assert trace.times("npe0", "out") == [1.0, 2.0]
        assert trace.channels() == [("npe0", "out"), ("npe1", "out")]
        assert trace.total_pulses() == 3

    def test_unknown_channel_is_empty(self):
        trace = PulseTrace()
        assert trace.times("ghost", "out") == []

    def test_clear(self):
        trace = PulseTrace()
        trace.record("a", "b", 0.0)
        trace.clear()
        assert len(trace) == 0


class TestRenderWaveform:
    def test_renders_one_row_per_channel(self):
        out = render_waveform(
            {"NPE0": [10.0], "NPE1": [20.0, 40.0]}, t_end=100.0, width=20
        )
        lines = out.splitlines()
        assert len(lines) == 2
        assert lines[0].startswith("NPE0")
        assert "#" in lines[0]

    def test_row_width_matches_request(self):
        out = render_waveform({"x": [5.0]}, t_end=100.0, width=32)
        body = out.split("|")[1]
        assert len(body) == 32

    def test_pulse_free_channel_is_flat(self):
        out = render_waveform({"idle": []}, t_end=100.0, width=10)
        assert "#" not in out

    def test_zero_width_rejected(self):
        with pytest.raises(ConfigurationError):
            render_waveform({"x": [1.0]}, t_end=10.0, width=0)
