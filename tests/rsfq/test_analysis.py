"""Tests for static timing analysis (earliest-arrival path breakdown)."""

import pytest

from repro.errors import ConfigurationError
from repro.neuro.chip import ChipConfig, GateLevelChip
from repro.rsfq import Netlist, library
from repro.rsfq.analysis import chip_transmission_fraction, earliest_arrival


def chain(n, wire_delay=2.0, jtl_count=0):
    net = Netlist("chain")
    cells = [net.add(library.JTL(f"j{i}")) for i in range(n)]
    for a, b in zip(cells, cells[1:]):
        net.connect(a, "dout", b, "din", delay=wire_delay,
                    jtl_count=jtl_count)
    return net, cells


class TestEarliestArrival:
    def test_chain_breakdown(self):
        net, cells = chain(4, wire_delay=2.0, jtl_count=1)
        timing = earliest_arrival(net, "j0", "j3")
        # Three hops: 3 cell delays + 3 transmission wires.
        assert timing.total_ps == pytest.approx(
            3 * library.JTL.DELAY_PS + 3 * 2.0
        )
        assert timing.wire_ps == pytest.approx(6.0)
        assert timing.hops == ("j0", "j1", "j2", "j3")

    def test_stub_wires_attributed_to_cells(self):
        net, cells = chain(3, wire_delay=2.0, jtl_count=0)
        timing = earliest_arrival(net, "j0", "j2")
        assert timing.wire_ps == 0.0
        assert timing.cell_ps == pytest.approx(
            2 * library.JTL.DELAY_PS + 2 * 2.0
        )
        assert timing.wire_fraction == 0.0

    def test_picks_the_faster_branch(self):
        net = Netlist("branch")
        spl = net.add(library.SPL("s"))
        fast = net.add(library.JTL("fast"))
        slow = net.add(library.JTL("slow"))
        cb = net.add(library.CB("c"))
        sink = net.add(library.Probe("p"))
        net.connect(spl, "doutA", fast, "din", delay=1.0)
        net.connect(spl, "doutB", slow, "din", delay=50.0)
        net.connect(fast, "dout", cb, "dinA", delay=1.0)
        net.connect(slow, "dout", cb, "dinB", delay=1.0)
        net.connect(cb, "dout", sink, "din", delay=1.0)
        timing = earliest_arrival(net, "s", "p")
        assert "fast" in timing.hops
        assert "slow" not in timing.hops

    def test_feedback_loops_terminate(self):
        net = Netlist("loop")
        a = net.add(library.JTL("a"))
        b = net.add(library.SPL("b"))
        sink = net.add(library.Probe("p"))
        net.connect(a, "dout", b, "din", delay=1.0)
        net.connect(b, "doutA", a, "din", delay=1.0)  # cycle
        net.connect(b, "doutB", sink, "din", delay=1.0)
        timing = earliest_arrival(net, "a", "p")
        assert timing is not None
        assert timing.hops == ("a", "b", "p")

    def test_unreachable_returns_none(self):
        net, _ = chain(2)
        lone = net.add(library.Probe("lone"))
        assert earliest_arrival(net, "j0", "lone") is None

    def test_unknown_cells_rejected(self):
        net, _ = chain(2)
        with pytest.raises(ConfigurationError):
            earliest_arrival(net, "ghost", "j1")


class TestChipTransmissionFraction:
    def test_matches_paper_at_1x1(self):
        chip = GateLevelChip(ChipConfig(n=1, sc_per_npe=4))
        fraction = chip_transmission_fraction(chip)
        assert fraction == pytest.approx(0.06, abs=0.015)

    def test_grows_with_mesh_size(self):
        fractions = [
            chip_transmission_fraction(
                GateLevelChip(ChipConfig(n=n, sc_per_npe=4))
            )
            for n in (1, 2, 3)
        ]
        assert fractions == sorted(fractions)
