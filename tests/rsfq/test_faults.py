"""Tests for the composable fault-injection subsystem.

Contract under test (see ``docs/FAULTS.md``): fault decisions come from
deterministic per-site streams, so the same seeded model produces the
same injections -- the same pulses dropped / duplicated / delayed, the
same cells stuck or trapped, and the same canonical injection log --
independent of the event-queue backend, the executor, and (via the
parallel tests) the partitioning.  The zero-fault configuration must stay
on the engine's specialised fast path.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import (
    ConstraintViolationError,
    DeadlineExceededError,
    FaultInjectionError,
)
from repro.rsfq import (
    FaultModel,
    FaultSpec,
    Netlist,
    PulseTrace,
    Simulator,
    canonical_log,
    fault_site_rng,
    library,
)


def chain(n=6, delay=2.0, name="chain"):
    net = Netlist(name)
    cells = [net.add(library.JTL(f"j{i}")) for i in range(n)]
    probe = net.add(library.Probe("p"))
    for a, b in zip(cells, cells[1:]):
        net.connect(a, "dout", b, "din", delay=delay)
    net.connect(cells[-1], "dout", probe, "din", delay=delay)
    return net, cells, probe


def drive(sim, cell, times):
    for t in times:
        sim.schedule_input(cell, "din", t)


class TestSpecValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultInjectionError, match="unknown fault kind"):
            FaultSpec(kind="bit_rot")

    @pytest.mark.parametrize("p", [-0.1, 1.5])
    def test_probability_out_of_range(self, p):
        with pytest.raises(FaultInjectionError, match="outside"):
            FaultSpec(kind="pulse_drop", probability=p)

    def test_negative_delay_rejected(self):
        with pytest.raises(FaultInjectionError, match="delay_ps"):
            FaultSpec(kind="extra_delay", delay_ps=-1.0)

    def test_unknown_target_cell_rejected_at_bind(self):
        net, cells, _ = chain()
        model = FaultModel.single("pulse_drop", cells={"nope"})
        with pytest.raises(FaultInjectionError, match="unknown target cells"):
            Simulator(net, faults=model)

    def test_unknown_target_wire_rejected_at_bind(self):
        net, cells, _ = chain()
        model = FaultModel.single("pulse_drop", wires={"a.dout->b.din"})
        with pytest.raises(FaultInjectionError, match="unknown target wires"):
            Simulator(net, faults=model)

    def test_negative_max_records_rejected(self):
        with pytest.raises(FaultInjectionError, match="max_records"):
            FaultModel(max_records=-1)


class TestModelComposition:
    def test_single_and_extended(self):
        model = FaultModel.single("pulse_drop", 0.1, seed=7)
        both = model.extended(FaultSpec("extra_delay", 0.2))
        assert [s.kind for s in both.specs] == ["pulse_drop", "extra_delay"]
        assert both.seed == 7

    def test_compose_concatenates_and_keeps_first_seed(self):
        a = FaultModel.single("pulse_drop", seed=1)
        b = FaultModel.single("flux_trap", seed=2)
        merged = FaultModel.compose(a, b)
        assert [s.kind for s in merged.specs] == ["pulse_drop", "flux_trap"]
        assert merged.seed == 1
        assert FaultModel.compose(a, b, seed=9).seed == 9

    def test_reseeded_preserves_specs(self):
        model = FaultModel.single("pulse_drop", 0.3).reseeded("trial-4")
        assert model.seed == "trial-4"
        assert model.specs[0].probability == 0.3

    def test_inactive_model_keeps_fast_path(self):
        net, _, _ = chain()
        for faults in (None, FaultModel()):
            sim = Simulator(net, faults=faults)
            assert sim._fault_runtime is None
            assert sim._cells_view is sim._fanout.cell_list
            assert sim.deliver == sim._deliver_ideal_heap
            assert sim.injection_log() == ()
            assert sim.fault_counts() == {}

    def test_active_model_binds_faulty_deliver(self):
        net, _, _ = chain()
        sim = Simulator(net, faults=FaultModel.single("pulse_drop", 0.0))
        assert sim.deliver == sim._deliver_faulty


class TestFaultSemantics:
    def test_pulse_drop_certain_kills_everything_past_first_wire(self):
        net, cells, probe = chain(n=3)
        sim = Simulator(net, faults=FaultModel.single("pulse_drop", 1.0))
        drive(sim, cells[0], [0.0, 50.0])
        sim.run()
        assert probe.times == []
        # Dropped on the first traversed wire only: one drop per stimulus.
        assert sim.fault_counts() == {"pulse_drop": 2}

    def test_pulse_duplicate_certain_doubles_the_stream(self):
        net, cells, probe = chain(n=2)
        model = FaultModel.single(
            "pulse_duplicate", 1.0, delay_ps=40.0,
            wires={"j0.dout->j1.din"},
        )
        sim = Simulator(net, faults=model)
        drive(sim, cells[0], [0.0])
        sim.run()
        assert len(probe.times) == 2
        assert probe.times[1] - probe.times[0] == pytest.approx(40.0)
        assert sim.fault_counts() == {"pulse_duplicate": 1}

    def test_extra_delay_certain_shifts_arrival(self):
        net, cells, probe = chain(n=2)
        clean = Simulator(net)
        drive(clean, cells[0], [0.0])
        clean.run()
        t_clean = probe.times[0]

        net2, cells2, probe2 = chain(n=2)
        model = FaultModel.single(
            "extra_delay", 1.0, delay_ps=7.0, wires={"j1.dout->p.din"},
        )
        sim = Simulator(net2, faults=model)
        drive(sim, cells2[0], [0.0])
        sim.run()
        assert probe2.times[0] == pytest.approx(t_clean + 7.0)
        assert sim.fault_counts() == {"extra_delay": 1}

    def test_stuck_cell_swallows_deliveries_and_marks_bind(self):
        net, cells, probe = chain(n=3)
        model = FaultModel.single("stuck_cell", 1.0, cells={"j1"})
        sim = Simulator(net, faults=model)
        drive(sim, cells[0], [0.0, 60.0])
        sim.run()
        assert probe.times == []
        log = sim.injection_log()
        # One bind-time mark (site == cell) + one swallow per delivery.
        marks = [r for r in log if r.site == "j1"]
        swallows = [r for r in log if "->" in r.site]
        assert len(marks) == 1 and marks[0].time == 0.0
        assert len(swallows) == 2
        assert all(r.kind == "stuck_cell" for r in log)

    def test_stuck_cell_swallows_external_stimuli(self):
        net, cells, probe = chain(n=2)
        model = FaultModel.single("stuck_cell", 1.0, cells={"j0"})
        sim = Simulator(net, faults=model)
        drive(sim, cells[0], [0.0])
        run_now = sim.run()
        assert probe.times == []
        assert sim.events_processed == 0
        sites = [r.site for r in sim.injection_log()]
        assert "input:j0.din" in sites
        assert run_now == 0.0

    def test_flux_trap_corrupts_stateful_cell(self):
        def build():
            net = Netlist("trap")
            j = net.add(library.JTL("j"))
            tff = net.add(library.TFFL("t"))
            probe = net.add(library.Probe("p"))
            net.connect(j, "dout", tff, "din", delay=3.0)
            net.connect(tff, "dout", probe, "din", delay=1.0)
            return net, j, probe

        net, j, probe = build()
        clean = Simulator(net)
        drive(clean, j, [0.0, 60.0, 120.0, 180.0])
        clean.run()
        clean_times = list(probe.times)

        net, j, probe = build()
        model = FaultModel.single("flux_trap", 1.0, cells={"t"})
        sim = Simulator(net, faults=model)
        drive(sim, j, [0.0, 60.0, 120.0, 180.0])
        sim.run()
        assert probe.times != clean_times
        assert sim.fault_counts() == {"flux_trap": 4}

    def test_flux_trap_on_stateless_cell_is_harmless(self):
        net, cells, probe = chain(n=2)
        model = FaultModel.single("flux_trap", 1.0)
        sim = Simulator(net, faults=model)
        drive(sim, cells[0], [0.0])
        sim.run()
        # JTLs/probes carry no flux: pulse arrives as if untrapped.
        assert len(probe.times) == 1

    def test_max_records_caps_log_but_not_counts(self):
        net, cells, probe = chain(n=4)
        model = FaultModel(
            [FaultSpec("extra_delay", 1.0, delay_ps=1.0)], max_records=2,
        )
        sim = Simulator(net, faults=model)
        drive(sim, cells[0], [0.0])
        sim.run()
        assert len(sim.injection_log()) == 2
        assert sim.fault_counts()["extra_delay"] == 4  # one per wire
        assert sim._fault_runtime.suppressed_records == 2


class TestDeterminism:
    @staticmethod
    def faulty_run(queue_backend="heap", seed="det"):
        net, cells, probe = chain(n=10)
        model = FaultModel(
            [
                FaultSpec("pulse_drop", 0.2),
                FaultSpec("pulse_duplicate", 0.2, delay_ps=11.0),
                FaultSpec("extra_delay", 0.3, delay_ps=3.0),
            ],
            seed=seed,
        )
        sim = Simulator(net, faults=model, queue_backend=queue_backend,
                        trace=PulseTrace())
        drive(sim, cells[0], [i * 100.0 for i in range(16)])
        sim.run()
        return list(probe.times), sim.injection_log(), sim.fault_counts()

    def test_identical_across_queue_backends(self):
        heap = self.faulty_run("heap")
        sorted_ = self.faulty_run("sorted")
        assert heap == sorted_

    def test_seed_changes_outcome(self):
        a = self.faulty_run(seed="a")
        b = self.faulty_run(seed="b")
        assert a != b

    def test_site_rng_is_stable_and_namespaced(self):
        draws = [fault_site_rng(0, "w").random() for _ in range(2)]
        assert draws[0] == draws[1]
        # Fault streams never collide with the jitter namespace.
        from repro.rsfq.simulator import wire_jitter_rng
        assert fault_site_rng(0, "w").random() != \
            wire_jitter_rng(0, "w").random()

    def test_canonical_log_sorts_engine_independently(self):
        _, log, _ = self.faulty_run()
        keys = [r.sort_key() for r in log]
        assert keys == sorted(keys)
        assert canonical_log(tuple(reversed(log))) == log

    def test_reset_replays_identical_fault_sequence(self):
        net, cells, probe = chain(n=10)
        model = FaultModel(
            [FaultSpec("pulse_drop", 0.3),
             FaultSpec("pulse_duplicate", 0.3, delay_ps=9.0)],
            seed="replay",
        )
        sim = Simulator(net, faults=model)
        stimuli = [i * 80.0 for i in range(12)]
        drive(sim, cells[0], stimuli)
        sim.run()
        first = (list(probe.times), sim.injection_log(), sim.fault_counts())
        assert first[2]  # the model actually fired

        sim.reset()
        assert sim.injection_log() == ()
        drive(sim, cells[0], stimuli)
        sim.run()
        second = (list(probe.times), sim.injection_log(), sim.fault_counts())
        assert second == first

    def test_restrict_stuck_marks_preserved_across_reset(self):
        net, cells, probe = chain(n=3)
        model = FaultModel.single("stuck_cell", 1.0, cells={"j1", "j2"})
        sim = Simulator(net, faults=model)
        runtime = sim._fault_runtime
        runtime.restrict_stuck_marks({"j1"})
        marks = [r for r in runtime.log if r.site == r.cell]
        assert [r.cell for r in marks] == ["j1"]
        sim.reset()
        marks = [r for r in sim._fault_runtime.log if r.site == r.cell]
        assert [r.cell for r in marks] == ["j1"]


class TestGuards:
    def test_deadline_exceeded_raises_with_pending_work(self):
        net, cells, probe = chain(n=40)
        sim = Simulator(net)
        drive(sim, cells[0], [i * 10.0 for i in range(50)])
        with pytest.raises(DeadlineExceededError, match="wall-clock"):
            sim.run(deadline_s=1e-9)

    def test_generous_deadline_completes_normally(self):
        net, cells, probe = chain(n=4)
        sim = Simulator(net)
        drive(sim, cells[0], [0.0])
        sim.run(deadline_s=60.0)
        assert len(probe.times) == 1

    def test_nonpositive_deadline_rejected(self):
        from repro.errors import ConfigurationError
        net, cells, _ = chain(n=2)
        sim = Simulator(net)
        with pytest.raises(ConfigurationError, match="deadline_s"):
            sim.run(deadline_s=0.0)

    def test_strict_violation_message_names_time_and_cell(self):
        net = Netlist("strict")
        j = net.add(library.JTL("jx"))
        net.add(library.Probe("p"))
        net.connect(j, "dout", net.cells["p"], "din")
        sim = Simulator(net, strict=True)
        sim.schedule_input(j, "din", 0.0)
        sim.schedule_input(j, "din", 1.0)
        with pytest.raises(ConstraintViolationError) as err:
            sim.run()
        message = str(err.value)
        assert "at t=" in message and "'jx'" in message

    def test_jitter_with_faults_requires_wire_mode(self):
        net, _, _ = chain(n=2)
        with pytest.raises(FaultInjectionError, match="jitter_mode='wire'"):
            Simulator(net, jitter_ps=0.5,
                      faults=FaultModel.single("pulse_drop", 0.1))

    def test_faults_compose_with_wire_jitter(self):
        net, cells, probe = chain(n=4)
        sim = Simulator(net, jitter_ps=0.4, jitter_mode="wire", seed=5,
                        faults=FaultModel.single("pulse_drop", 0.0))
        drive(sim, cells[0], [0.0])
        sim.run()
        assert len(probe.times) == 1


class TestDeterminismProperty:
    """Property-based determinism: for arbitrary seeds and probabilities,
    the heap and sorted queue backends observe the same injections, BER
    proxy (probe times) and canonical log."""

    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        p_drop=st.floats(min_value=0.0, max_value=0.6),
        p_dup=st.floats(min_value=0.0, max_value=0.6),
    )
    @settings(max_examples=25, deadline=None)
    def test_backends_agree_for_any_seed(self, seed, p_drop, p_dup):
        def one(backend):
            net, cells, probe = chain(n=6)
            model = FaultModel(
                [FaultSpec("pulse_drop", p_drop),
                 FaultSpec("pulse_duplicate", p_dup, delay_ps=13.0)],
                seed=seed,
            )
            sim = Simulator(net, faults=model, queue_backend=backend)
            drive(sim, cells[0], [k * 120.0 for k in range(8)])
            sim.run()
            return tuple(probe.times), sim.injection_log(), \
                sim.fault_counts()

        assert one("heap") == one("sorted")
