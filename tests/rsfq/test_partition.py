"""Tests for the netlist partitioner (cut placement, lookahead, hints)."""

import pytest

from repro.errors import ConfigurationError
from repro.neuro.chip import ChipConfig, GateLevelChip
from repro.neuro.structure import fanout_tree, merge_tree
from repro.rsfq import Netlist, library
from repro.rsfq.partition import partition_netlist


def chain(n=8, delay=2.0):
    net = Netlist("chain")
    cells = [net.add(library.JTL(f"j{i}")) for i in range(n)]
    for a, b in zip(cells, cells[1:]):
        net.connect(a, "dout", b, "din", delay=delay)
    return net


class TestFallbackHeuristic:
    def test_chain_cut_in_half(self):
        plan = partition_netlist(chain(8), 2)
        assert plan.n_partitions == 2
        assert sorted(len(p) for p in plan.partitions) == [4, 4]
        assert len(plan.cut_wires) == 1
        assert plan.min_lookahead == 2.0

    def test_every_cell_owned_exactly_once(self):
        net = chain(10)
        plan = partition_netlist(net, 3)
        assert sorted(plan.owner) == sorted(net.cells)
        for part in plan.partitions:
            for name in part.cells:
                assert plan.owner[name] == part.index

    def test_channel_lookahead_is_min_cut_delay(self):
        net = Netlist("two-wire")
        cells = [net.add(library.JTL(f"j{i}")) for i in range(4)]
        spl = net.add(library.SPL("s"))
        net.connect(cells[0], "dout", spl, "din", delay=1.0)
        net.connect(spl, "doutA", cells[1], "din", delay=1.0)
        net.connect(cells[1], "dout", cells[2], "din", delay=7.0)
        net.connect(spl, "doutB", cells[3], "din", delay=3.0)
        hints = {"j0": 0, "s": 0, "j1": 0, "j2": 1, "j3": 1}
        plan = partition_netlist(net, 2, hints=hints)
        assert plan.channel_lookahead == {(0, 1): 3.0}
        assert plan.min_lookahead == 3.0
        assert plan.channels_into(1) == [(0, 3.0)]

    def test_no_cut_means_infinite_lookahead(self):
        plan = partition_netlist(chain(3), 1)
        assert plan.n_partitions == 1
        assert plan.cut_wires == ()
        assert plan.min_lookahead == float("inf")

    def test_parts_capped_at_cell_count(self):
        plan = partition_netlist(chain(2), 10)
        assert plan.n_partitions <= 2

    def test_disconnected_components_merged_to_requested_parts(self):
        net = Netlist("islands")
        for i in range(6):
            net.add(library.JTL(f"j{i}"))  # six isolated cells
        plan = partition_netlist(net, 2)
        assert plan.n_partitions == 2
        assert plan.cut_wires == ()

    def test_deterministic_across_calls(self):
        a = partition_netlist(chain(9), 3)
        b = partition_netlist(chain(9), 3)
        assert [p.cells for p in a.partitions] == [p.cells for p in b.partitions]


class TestZeroDelayContraction:
    def test_zero_delay_wires_never_cut(self):
        net = Netlist("zd")
        cells = [net.add(library.JTL(f"z{i}")) for i in range(4)]
        net.connect(cells[0], "dout", cells[1], "din", delay=0.0)
        net.connect(cells[1], "dout", cells[2], "din", delay=3.0)
        net.connect(cells[2], "dout", cells[3], "din", delay=0.0)
        plan = partition_netlist(net, 2)
        assert plan.owner["z0"] == plan.owner["z1"]
        assert plan.owner["z2"] == plan.owner["z3"]
        assert all(w.delay > 0 for w in plan.cut_wires)

    def test_hints_splitting_zero_delay_cluster_rejected(self):
        net = Netlist("zd")
        a = net.add(library.JTL("a"))
        b = net.add(library.JTL("b"))
        net.connect(a, "dout", b, "din", delay=0.0)
        with pytest.raises(ConfigurationError):
            partition_netlist(net, 2, hints={"a": 0, "b": 1})


class TestValidation:
    def test_nonpositive_parts_rejected(self):
        with pytest.raises(ConfigurationError):
            partition_netlist(chain(2), 0)

    def test_empty_netlist_rejected(self):
        with pytest.raises(ConfigurationError):
            partition_netlist(Netlist("empty"), 2)


class TestHintedPartitioning:
    def test_hinted_groups_kept_intact(self):
        net = chain(8)
        hints = {f"j{i}": ("left" if i < 5 else "right") for i in range(8)}
        plan = partition_netlist(net, 2, hints=hints)
        owners = {plan.owner[f"j{i}"] for i in range(5)}
        assert len(owners) == 1
        assert len(plan.cut_wires) == 1
        assert plan.cut_wires[0].src == "j4"

    def test_groups_packed_balanced_onto_fewer_parts(self):
        net = chain(12, delay=1.5)
        hints = {f"j{i}": i // 3 for i in range(12)}  # 4 groups of 3
        plan = partition_netlist(net, 2, hints=hints)
        assert plan.n_partitions == 2
        assert sorted(len(p) for p in plan.partitions) == [6, 6]

    def test_structure_builders_accumulate_hints(self):
        net = Netlist("trees")
        hints = {}
        fan_in, leaves = fanout_tree(net, "fan", 4, hints=hints, group="F")
        merge_ins, merge_out = merge_tree(net, "mrg", 4, hints=hints, group="M")
        for src, dst in zip(leaves, merge_ins):
            net.connect(src[0], src[1], dst[0], dst[1], delay=2.0)
        assert set(hints.values()) == {"F", "M"}
        assert set(hints) == set(net.cells)
        plan = partition_netlist(net, 2, hints=hints)
        # Cuts fall exactly on the leaf -> merge wires, never inside a tree.
        assert len(plan.cut_wires) == 4
        assert plan.min_lookahead == 2.0


class TestChipHints:
    def test_chip_hints_cover_every_cell(self):
        chip = GateLevelChip(ChipConfig(n=2, sc_per_npe=3))
        hints = chip.partition_hints()
        assert set(hints) == set(chip.net.cells)
        assert set(hints.values()) == {"row0", "row1", "col0", "col1"}

    def test_chip_cuts_fall_on_mesh_wires(self):
        chip = GateLevelChip(ChipConfig(n=2, sc_per_npe=3))
        plan = partition_netlist(chip.net, 4, hints=chip.partition_hints())
        assert plan.n_partitions == 4
        # Every cut runs from a row line into a column-side crosspoint.
        for wire in plan.cut_wires:
            assert wire.src.startswith("rowline")
            assert wire.delay > 0
        assert plan.min_lookahead == pytest.approx(chip.wire_delay)

    def test_weightless_chip_partitions_too(self):
        chip = GateLevelChip(ChipConfig(n=2, sc_per_npe=3,
                                        with_weights=False))
        plan = partition_netlist(chip.net, 4, hints=chip.partition_hints())
        assert plan.n_partitions == 4
        assert all(w.delay > 0 for w in plan.cut_wires)

    def test_summary_mentions_partitions_and_lookahead(self):
        plan = partition_netlist(chain(6), 2)
        text = plan.summary()
        assert "2 partitions" in text
        assert "lookahead" in text
