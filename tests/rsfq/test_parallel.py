"""Tests for the partitioned parallel engine (conservative synchronisation).

The contract under test: :class:`ParallelSimulator` is *physically*
bit-identical to the sequential :class:`Simulator` -- every cell sees the
same pulses at the same times in the same per-cell order, so per-channel
trace times, violation counts, margin tables and final state all match
exactly, for any partition count, queue backend, executor, and (in
``jitter_mode="wire"``) under jitter.
"""

import time

import pytest

from repro.errors import (
    ConfigurationError,
    DeadlineExceededError,
    WorkerTimeoutError,
)
from repro.harness.differential import run_parallel_gate_differential
from repro.neuro.chip import ChipConfig, ChipDriver, GateLevelChip
from repro.neuro.state_controller import Polarity
from repro.rsfq import (
    FaultModel,
    FaultSpec,
    Netlist,
    ParallelSimulator,
    PulseTrace,
    SimulationSession,
    Simulator,
    library,
    partition_netlist,
)


def chain(n=8, delay=2.0, name="chain"):
    net = Netlist(name)
    cells = [net.add(library.JTL(f"j{i}")) for i in range(n)]
    probe = net.add(library.Probe("p"))
    for a, b in zip(cells, cells[1:]):
        net.connect(a, "dout", b, "din", delay=delay)
    net.connect(cells[-1], "dout", probe, "din", delay=delay)
    return net, cells, probe


def run_both(build, drive, parts=2, hints=None, **kwargs):
    """Run the same stimulus on fresh sequential / parallel instances."""
    net_s, cells_s, probe_s = build()
    sim_s = Simulator(net_s, trace=PulseTrace(),
                      jitter_mode="wire", **kwargs)
    drive(sim_s, cells_s)
    sim_s.run()

    net_p, cells_p, probe_p = build()
    sim_p = ParallelSimulator(net_p, parts=parts, hints=hints,
                              trace=PulseTrace(), **kwargs)
    drive(sim_p, cells_p)
    sim_p.run()
    return (sim_s, probe_s), (sim_p, probe_p)


class TestBasicEquivalence:
    def test_chain_probe_times_identical(self):
        (s, ps), (p, pp) = run_both(
            chain,
            lambda sim, cells: [
                sim.schedule_input(cells[0], "din", t)
                for t in (0.0, 60.0, 120.0)
            ],
            parts=3,
        )
        assert pp.times == ps.times
        assert p.now == s.now
        assert p.events_processed == s.events_processed
        assert p.trace.events() == s.trace.events()

    def test_violations_and_margins_match(self):
        def build():
            net = Netlist("tffchain")
            j = net.add(library.JTL("j"))
            tff = net.add(library.TFFL("t"))
            probe = net.add(library.Probe("p"))
            net.connect(j, "dout", tff, "din", delay=4.0)
            net.connect(tff, "dout", probe, "din", delay=1.0)
            return net, [j, tff], probe

        def drive(sim, cells):
            # Two pulses 30 ps apart clear the JTL's own minimum interval
            # (19.9 ps) but violate the TFF minimum interval (39.9 ps)
            # after crossing the partition cut.
            sim.schedule_input(cells[0], "din", 0.0)
            sim.schedule_input(cells[0], "din", 30.0)

        hints = {"j": 0, "t": 1, "p": 1}
        (s, _), (p, _) = run_both(build, drive, parts=2, hints=hints)
        assert len(s.violations) == 1
        assert len(p.violations) == len(s.violations)
        assert p.violations[0].time == s.violations[0].time
        assert p.margins == s.margins
        assert p.margin_report() == s.margin_report()

    def test_jittered_wire_mode_identical(self):
        (s, ps), (p, pp) = run_both(
            chain,
            lambda sim, cells: [
                sim.schedule_input(cells[0], "din", 100.0 * k)
                for k in range(4)
            ],
            parts=4,
            jitter_ps=0.8,
            seed=21,
        )
        assert pp.times == ps.times
        assert p.trace.events() == s.trace.events()

    def test_until_horizon_respected(self):
        net, cells, probe = chain(6, delay=10.0)
        sim = ParallelSimulator(net, parts=2)
        sim.schedule_input(cells[0], "din", 0.0)
        sim.run(until=25.0)
        mid = sim.events_processed
        assert 0 < mid < 7
        assert sim.now == 25.0
        sim.run()
        assert sim.events_processed == 7
        assert len(probe.times) == 1

    def test_strict_mode_raises_across_partitions(self):
        net = Netlist("strict")
        j = net.add(library.JTL("j"))
        tff = net.add(library.TFFL("t"))
        net.connect(j, "dout", tff, "din", delay=4.0)
        sim = ParallelSimulator(net, parts=2, hints={"j": 0, "t": 1},
                                strict=True)
        sim.schedule_input(j, "din", 0.0)
        sim.schedule_input(j, "din", 10.0)
        from repro.errors import ConstraintViolationError

        with pytest.raises(ConstraintViolationError):
            sim.run()


class TestChipEquivalence:
    """The acceptance workload: gate-level chip, sequential vs parallel."""

    @pytest.mark.parametrize("jitter_ps", [0.0, 0.5])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_random_protocols_bit_identical(self, seed, jitter_ps):
        verdict = run_parallel_gate_differential(
            seed=seed, n=2, sc_per_npe=3, passes=3, parts=4,
            jitter_ps=jitter_ps,
        )
        assert verdict["equivalent"], verdict
        assert verdict["partitions"] == 4
        assert verdict["cut_wires"] > 0

    def test_thread_executor_matches_serial(self):
        serial = run_parallel_gate_differential(seed=5, executor="serial")
        thread = run_parallel_gate_differential(seed=5, executor="thread")
        assert serial["equivalent"] and thread["equivalent"]
        assert serial["events"] == thread["events"]

    def test_two_partition_plan_also_identical(self):
        verdict = run_parallel_gate_differential(seed=2, parts=2)
        assert verdict["equivalent"], verdict
        assert verdict["partitions"] == 2

    def test_chip_driver_runs_on_parallel_engine(self):
        def protocol(sim_factory):
            chip = GateLevelChip(ChipConfig(n=2, sc_per_npe=3))
            sim = sim_factory(chip)
            driver = ChipDriver(chip, sim)
            driver.begin_timestep([2, 2])
            driver.configure_weights([[1, 0], [1, 1]])
            driver.run_pass(Polarity.SET1, [True, True])
            driver.run_pass(Polarity.SET1, [True, False])
            return driver.read_out(), sim

        seq_out, _ = protocol(lambda chip: chip.simulator())
        par_out, sim = protocol(
            lambda chip: chip.parallel_simulator(parts=4))
        assert par_out == seq_out
        assert sim.violations == []
        assert sim.rounds > 0

    def test_determinism_across_repeated_runs(self):
        traces = []
        for _ in range(2):
            chip = GateLevelChip(ChipConfig(n=2, sc_per_npe=3))
            trace = PulseTrace()
            sim = chip.parallel_simulator(parts=4, trace=trace,
                                          jitter_ps=0.4, seed=11)
            driver = ChipDriver(chip, sim)
            driver.begin_timestep([2, 3])
            driver.run_pass(Polarity.SET1, [True, True])
            traces.append(trace)
        assert traces[0].events() == traces[1].events()


class TestProtocolMachinery:
    def test_lookahead_channels_match_plan(self):
        chip = GateLevelChip(ChipConfig(n=2, sc_per_npe=3))
        sim = chip.parallel_simulator(parts=4)
        assert sim._channel_lookahead == sim.plan.channel_lookahead
        assert "partitions" in sim.partition_summary()

    def test_jitter_lookahead_falls_back_to_emission_delay(self):
        # With jitter the wire delay is clamped at zero, so the channel
        # lookahead must be the driving cell's DELAY_PS instead.
        net, cells, probe = chain(4)
        sim = ParallelSimulator(net, parts=2, jitter_ps=0.5, seed=0)
        for (src, dst), lookahead in sim._channel_lookahead.items():
            assert lookahead == pytest.approx(library.JTL.DELAY_PS)

    def test_reset_restores_initial_state(self):
        net, cells, probe = chain(5)
        sim = ParallelSimulator(net, parts=2, trace=PulseTrace())
        sim.schedule_input(cells[0], "din", 0.0)
        sim.run()
        first = list(probe.times)
        assert sim.now > 0 and sim.events_processed > 0
        sim.reset()
        assert sim.now == 0.0
        assert sim.events_processed == 0
        assert sim.rounds == 0
        assert len(sim.trace) == 0
        sim.schedule_input(cells[0], "din", 0.0)
        sim.run()
        assert probe.times == first

    def test_run_batch_matches_sequential(self):
        net_s, cells_s, _ = chain(5, name="a")
        net_p, cells_p, _ = chain(5, name="b")
        stimuli = [
            [("j0", "din", 0.0), ("j0", "din", 80.0)],
            [("j0", "din", 5.0)],
        ]
        stats_s = Simulator(net_s).run_batch(stimuli)
        stats_p = ParallelSimulator(net_p, parts=2).run_batch(stimuli)
        for a, b in zip(stats_s, stats_p):
            assert a.events == b.events
            assert a.final_time_ps == b.final_time_ps
            assert a.violations == b.violations

    def test_max_events_guard(self):
        net = Netlist("loop")
        a = net.add(library.JTL("a"))
        b = net.add(library.JTL("b"))
        net.connect(a, "dout", b, "din", delay=25.0)
        net.connect(b, "dout", a, "din", delay=25.0)
        sim = ParallelSimulator(net, parts=2, hints={"a": 0, "b": 1})
        sim.schedule_input(a, "din", 0.0)
        with pytest.raises(ConfigurationError):
            sim.run(max_events=100)

    def test_session_runs_parallel_engine(self):
        net_s, _, _ = chain(6, name="s")
        net_p, _, _ = chain(6, name="p")
        stimuli = [[("j0", "din", 0.0)], [("j0", "din", 1.0)]]
        seq = SimulationSession(net_s).run_batch(stimuli)
        par = SimulationSession(net_p, parallel_parts=2).run_batch(stimuli)
        for a, b in zip(seq, par):
            assert a.stats.events == b.stats.events
            assert a.stats.final_time_ps == b.stats.final_time_ps


class TestValidation:
    def test_global_jitter_mode_rejected(self):
        net, _, _ = chain(3)
        with pytest.raises(ConfigurationError):
            ParallelSimulator(net, parts=2, jitter_mode="global")

    def test_unknown_executor_rejected(self):
        net, _, _ = chain(3)
        with pytest.raises(ConfigurationError):
            ParallelSimulator(net, parts=2, executor="mpi")

    def test_netlist_growth_after_partitioning_rejected(self):
        net, cells, _ = chain(3)
        sim = ParallelSimulator(net, parts=2)
        net.add(library.JTL("late"))
        with pytest.raises(ConfigurationError):
            sim.schedule_input(cells[0], "din", 0.0)

    def test_unknown_cell_and_port_rejected(self):
        net, cells, _ = chain(3)
        sim = ParallelSimulator(net, parts=2)
        with pytest.raises(ConfigurationError):
            sim.schedule_input("ghost", "din", 0.0)
        with pytest.raises(ConfigurationError):
            sim.schedule_input(cells[0], "nope", 0.0)

    def test_scheduling_in_the_past_rejected(self):
        net, cells, _ = chain(3)
        sim = ParallelSimulator(net, parts=2)
        sim.schedule_input(cells[0], "din", 0.0)
        sim.run()
        with pytest.raises(ConfigurationError):
            sim.schedule_input(cells[0], "din", sim.now - 1.0)

    def test_precomputed_plan_accepted(self):
        net, cells, probe = chain(6)
        plan = partition_netlist(net, 3)
        sim = ParallelSimulator(net, plan=plan)
        assert sim.plan is plan
        sim.schedule_input(cells[0], "din", 0.0)
        sim.run()
        assert len(probe.times) == 1

    def test_context_manager_closes_pool(self):
        net, cells, _ = chain(4)
        with ParallelSimulator(net, parts=2, executor="thread") as sim:
            sim.schedule_input(cells[0], "din", 0.0)
            sim.run()
        assert sim._pool is None


class TestFaultEquivalence:
    """The fault-determinism acceptance criterion: the partitioned engine
    is bit-identical to the sequential engine under every fault kind (and
    jitter), including the canonical injection logs."""

    MIXED = FaultModel(
        [
            FaultSpec("pulse_drop", 0.15),
            FaultSpec("pulse_duplicate", 0.15, delay_ps=12.0),
            FaultSpec("extra_delay", 0.2, delay_ps=3.0),
        ],
        seed="par-faults",
    )

    @pytest.mark.parametrize("parts", [2, 3, 5])
    @pytest.mark.parametrize("executor", ["serial", "thread"])
    def test_mixed_wire_faults_bit_identical(self, parts, executor):
        (s, ps), (p, pp) = run_both(
            lambda: chain(20),
            lambda sim, cells: [
                sim.schedule_input(cells[0], "din", t * 90.0)
                for t in range(24)
            ],
            parts=parts,
            faults=self.MIXED,
        )
        if executor == "thread":
            net, cells, probe = chain(20)
            with ParallelSimulator(
                net, parts=parts, executor="thread",
                trace=PulseTrace(), faults=self.MIXED,
            ) as tp:
                for t in range(24):
                    tp.schedule_input(cells[0], "din", t * 90.0)
                tp.run()
                assert probe.times == ps.times
                assert tp.injection_log() == s.injection_log()
            return
        assert pp.times == ps.times
        assert p.trace.events() == s.trace.events()
        assert p.injection_log() == s.injection_log()
        assert p.fault_counts() == s.fault_counts()
        assert sum(s.fault_counts().values()) > 0  # faults actually fired

    @pytest.mark.parametrize("parts", [2, 3, 4])
    def test_stuck_and_trap_logs_merge_to_sequential(self, parts):
        model = FaultModel(
            [
                FaultSpec("stuck_cell", 0.25),
                FaultSpec("flux_trap", 0.3),
            ],
            seed="stuck-trap",
        )
        (s, ps), (p, pp) = run_both(
            lambda: chain(16),
            lambda sim, cells: [
                sim.schedule_input(cells[0], "din", t * 70.0)
                for t in range(12)
            ],
            parts=parts,
            faults=model,
        )
        assert pp.times == ps.times
        assert p.injection_log() == s.injection_log()
        assert p.fault_counts() == s.fault_counts()
        assert s.fault_counts().get("stuck_cell", 0) > 0

    @pytest.mark.parametrize("parts", [2, 3, 4])
    def test_gate_level_differential_with_faults_and_jitter(self, parts):
        verdict = run_parallel_gate_differential(
            seed=5, n=2, parts=parts, jitter_ps=0.4,
            faults=FaultModel(
                [
                    FaultSpec("pulse_drop", 0.02),
                    FaultSpec("extra_delay", 0.05, delay_ps=1.0),
                    FaultSpec("flux_trap", 0.02),
                ],
                seed="diff",
            ),
        )
        assert verdict["equivalent"], verdict
        assert verdict["injection_log_equal"]
        assert verdict["injections"] > 0

    def test_faulty_batch_reset_replays(self):
        net, cells, probe = chain(10)
        sim = ParallelSimulator(
            net, parts=3,
            faults=FaultModel.single("pulse_drop", 0.3, seed="replay"),
        )
        stimuli = [("j0", "din", t * 80.0) for t in range(10)]
        sim.run_batch([stimuli])
        first = (list(probe.times), sim.injection_log())
        sim.run_batch([stimuli])
        second = (list(probe.times), sim.injection_log())
        assert second == first


class TestSelfHealingGuards:
    """Worker-timeout and wall-clock deadline behaviour of the
    partitioned engine's self-healing paths."""

    @staticmethod
    def slow_engines(sim, delay_s=0.05):
        """Make every local engine's window sluggish (monkey-level)."""
        for engine in sim._engines:
            original = engine.run_window

            def slow(bound, until, budget, _orig=original):
                time.sleep(delay_s)
                return _orig(bound, until, budget)

            engine.run_window = slow

    def test_worker_timeout_falls_back_to_serial(self):
        net, cells, probe = chain(8)
        with ParallelSimulator(
            net, parts=2, executor="thread", worker_timeout_s=0.01,
        ) as sim:
            self.slow_engines(sim)
            for t in range(3):
                sim.schedule_input(cells[0], "din", t * 100.0)
            sim.run()
            assert sim.fell_back_to_serial is True
            assert sim.worker_timeouts >= 1
            assert sim.executor == "serial"
        # Results stay correct: every pulse still reached the probe.
        assert len(probe.times) == 3

    def test_worker_timeout_raise_policy(self):
        net, cells, _ = chain(8)
        with ParallelSimulator(
            net, parts=2, executor="thread", worker_timeout_s=0.01,
            on_worker_timeout="raise",
        ) as sim:
            self.slow_engines(sim)
            sim.schedule_input(cells[0], "din", 0.0)
            with pytest.raises(WorkerTimeoutError, match="exceeded"):
                sim.run()
            assert sim.worker_timeouts == 1

    def test_generous_timeout_never_trips(self):
        net, cells, probe = chain(8)
        with ParallelSimulator(
            net, parts=2, executor="thread", worker_timeout_s=30.0,
        ) as sim:
            sim.schedule_input(cells[0], "din", 0.0)
            sim.run()
            assert sim.worker_timeouts == 0
            assert sim.fell_back_to_serial is False
        assert len(probe.times) == 1

    def test_timeout_validation(self):
        net, _, _ = chain(3)
        with pytest.raises(ConfigurationError, match="on_worker_timeout"):
            ParallelSimulator(net, parts=2, on_worker_timeout="retry")
        with pytest.raises(ConfigurationError, match="worker_timeout_s"):
            ParallelSimulator(net, parts=2, worker_timeout_s=0.0)

    def test_parallel_deadline_exceeded(self):
        net, cells, _ = chain(30)
        sim = ParallelSimulator(net, parts=3)
        self.slow_engines(sim, delay_s=0.02)
        for t in range(10):
            sim.schedule_input(cells[0], "din", t * 50.0)
        with pytest.raises(DeadlineExceededError, match="deadline"):
            sim.run(deadline_s=0.01)

    def test_parallel_generous_deadline_completes(self):
        net, cells, probe = chain(6)
        sim = ParallelSimulator(net, parts=2)
        sim.schedule_input(cells[0], "din", 0.0)
        sim.run(deadline_s=60.0)
        assert len(probe.times) == 1
