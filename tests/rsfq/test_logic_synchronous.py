"""Tests for clocked RSFQ gates and the synchronous building blocks."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.rsfq import Netlist, Simulator, library
from repro.rsfq.logic import AND2, NOT, OR2, XOR2
from repro.rsfq.synchronous import (
    BitSerialAdder,
    ClockTree,
    SyncShiftRegister,
    clock_overhead_fraction,
)


def gate_harness(gate):
    net = Netlist("g")
    net.add(gate)
    probe = net.add(library.Probe("p"))
    net.connect(gate, "dout", probe, "din", delay=0.0)
    return Simulator(net), probe


TRUTH_TABLES = {
    AND2: {(0, 0): 0, (0, 1): 0, (1, 0): 0, (1, 1): 1},
    OR2: {(0, 0): 0, (0, 1): 1, (1, 0): 1, (1, 1): 1},
    XOR2: {(0, 0): 0, (0, 1): 1, (1, 0): 1, (1, 1): 0},
}


class TestClockedGates:
    @pytest.mark.parametrize("gate_cls", [AND2, OR2, XOR2])
    def test_truth_table(self, gate_cls):
        for (a, b), expected in TRUTH_TABLES[gate_cls].items():
            gate = gate_cls("g")
            sim, probe = gate_harness(gate)
            if a:
                sim.schedule_input(gate, "dinA", 0.0)
            if b:
                sim.schedule_input(gate, "dinB", 0.0)
            sim.schedule_input(gate, "clk", 30.0)
            sim.run()
            assert len(probe.times) == expected, (gate_cls, a, b)

    def test_not_gate(self):
        for a, expected in ((0, 1), (1, 0)):
            gate = NOT("g")
            sim, probe = gate_harness(gate)
            if a:
                sim.schedule_input(gate, "dinA", 0.0)
            sim.schedule_input(gate, "clk", 30.0)
            sim.run()
            assert len(probe.times) == expected

    def test_clock_clears_state(self):
        """Each clock period is independent (gate-level pipelining)."""
        gate = AND2("g")
        sim, probe = gate_harness(gate)
        sim.schedule_input(gate, "dinA", 0.0)
        sim.schedule_input(gate, "clk", 30.0)   # A only: no output
        sim.schedule_input(gate, "dinB", 100.0)
        sim.schedule_input(gate, "clk", 130.0)  # B only: no output either
        sim.run()
        assert probe.times == []

    def test_too_fast_clock_flagged(self):
        gate = XOR2("g")
        sim, _ = gate_harness(gate)
        sim.schedule_input(gate, "clk", 0.0)
        sim.schedule_input(gate, "clk", 5.0)
        sim.run()
        assert sim.violations


class TestClockTree:
    def test_delivers_to_all_leaves_with_skew(self):
        net = Netlist("ct")
        probes = [net.add(library.Probe(f"p{i}")) for i in range(5)]
        tree = ClockTree(net, "ct", [
            (p, "din", 10.0 * i) for i, p in enumerate(probes)
        ])
        sim = Simulator(net)
        cell, port = tree.input
        sim.schedule_input(cell, port, 0.0)
        sim.run()
        arrivals = [p.times[0] for p in probes]
        assert all(len(p.times) == 1 for p in probes)
        # Programmed skews dominate tree-depth asymmetry at the extremes.
        assert arrivals[-1] - arrivals[0] >= 30.0
        assert arrivals[-1] == max(arrivals)

    def test_empty_tree_rejected(self):
        with pytest.raises(ConfigurationError):
            ClockTree(Netlist("ct"), "ct", [])


class TestShiftRegister:
    def shift(self, bits_in, depth=4, extra=6):
        net = Netlist("sr")
        sr = SyncShiftRegister(net, "sr", depth=depth)
        sim = Simulator(net)
        cell, port = sr.data_input
        clk_cell, clk_port = sr.clock.input
        period = 300.0
        times = []
        for k in range(len(bits_in) + extra):
            t0 = 50.0 + k * period
            if k < len(bits_in) and bits_in[k]:
                sim.schedule_input(cell, port, t0)
            sim.schedule_input(clk_cell, clk_port, t0 + 40.0)
            times.append(t0 + 40.0)
        sim.run()
        assert sim.violations == []
        return sr.read_bits(times)

    def test_word_emerges_after_depth_cycles(self):
        out = self.shift([1, 0, 1, 1], depth=4)
        assert out[:3] == [0, 0, 0]
        assert out[3:7] == [1, 0, 1, 1]

    def test_sequential_access_only(self):
        """Reading bit k requires k+depth clock cycles -- the structural
        reason shift-register memory causes the paper's memory wall."""
        out = self.shift([1], depth=6, extra=8)
        first_out = out.index(1)
        assert first_out == 5  # depth-1 more cycles than a random access

    def test_depth_validation(self):
        with pytest.raises(ConfigurationError):
            SyncShiftRegister(Netlist("sr"), "sr", depth=0)


class TestBitSerialAdder:
    @pytest.mark.parametrize("a,b", [(0, 0), (1, 1), (7, 9), (255, 255),
                                     (1000, 24), (170, 85)])
    def test_adds_correctly(self, a, b):
        net = Netlist("adder")
        adder = BitSerialAdder(net)
        assert adder.add_numbers(a, b) == a + b

    @given(a=st.integers(min_value=0, max_value=4095),
           b=st.integers(min_value=0, max_value=4095))
    @settings(max_examples=15, deadline=None)
    def test_adds_any_operands(self, a, b):
        net = Netlist("adder")
        adder = BitSerialAdder(net)
        assert adder.add_numbers(a, b) == a + b

    def test_reusable_after_reset(self):
        net = Netlist("adder")
        adder = BitSerialAdder(net)
        assert adder.add_numbers(3, 4) == 7
        assert adder.add_numbers(10, 20) == 30

    def test_negative_rejected(self):
        net = Netlist("adder")
        adder = BitSerialAdder(net)
        with pytest.raises(ConfigurationError):
            adder.add_numbers(-1, 2)


class TestClockOverhead:
    def test_synchronous_designs_are_wiring_dominated(self):
        """The paper's motivation: timing resources eat the majority of a
        synchronous RSFQ design (~80% in their experience)."""
        net = Netlist("sr")
        SyncShiftRegister(net, "sr", depth=16)
        fraction = clock_overhead_fraction(net)
        assert fraction > 0.6

    def test_adder_overhead_substantial(self):
        net = Netlist("adder")
        BitSerialAdder(net)
        assert clock_overhead_fraction(net) > 0.5

    def test_empty_netlist_rejected(self):
        with pytest.raises(ConfigurationError):
            clock_overhead_fraction(Netlist("empty"))
