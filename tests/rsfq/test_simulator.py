"""Tests for the discrete-event engine, netlist rules and constraint modes."""

import pytest

from repro.errors import ConfigurationError, ConstraintViolationError
from repro.rsfq import Netlist, PulseTrace, Simulator, library


def chain_netlist(n_jtl=3, delay=1.0):
    """A JTL chain feeding a probe."""
    net = Netlist("chain")
    cells = [net.add(library.JTL(f"j{i}")) for i in range(n_jtl)]
    probe = net.add(library.Probe("p"))
    for a, b in zip(cells, cells[1:]):
        net.connect(a, "dout", b, "din", delay=delay)
    net.connect(cells[-1], "dout", probe, "din", delay=delay)
    return net, cells, probe


class TestNetlist:
    def test_duplicate_cell_name_rejected(self):
        net = Netlist("n")
        net.add(library.JTL("a"))
        with pytest.raises(ConfigurationError):
            net.add(library.JTL("a"))

    def test_fanout_of_one_enforced(self):
        net = Netlist("n")
        j = net.add(library.JTL("j"))
        p1 = net.add(library.Probe("p1"))
        p2 = net.add(library.Probe("p2"))
        net.connect(j, "dout", p1, "din")
        with pytest.raises(ConfigurationError):
            net.connect(j, "dout", p2, "din")

    def test_connect_checks_port_names(self):
        net = Netlist("n")
        j = net.add(library.JTL("j"))
        p = net.add(library.Probe("p"))
        with pytest.raises(ConfigurationError):
            net.connect(j, "bogus", p, "din")
        with pytest.raises(ConfigurationError):
            net.connect(j, "dout", p, "bogus")

    def test_foreign_cell_rejected(self):
        net = Netlist("n")
        foreign = library.JTL("f")
        p = net.add(library.Probe("p"))
        with pytest.raises(ConfigurationError):
            net.connect(foreign, "dout", p, "din")

    def test_jj_accounting(self):
        net, cells, _ = chain_netlist(n_jtl=4)
        assert net.logic_jj_count() == 4 * library.JTL.JJ_COUNT
        assert net.wiring_jj_count() == 0
        net.connect(net.add(library.SPL("s")), "doutA", cells[0], "din",
                    jtl_count=5)
        assert net.wiring_jj_count() == 5 * library.JTL.JJ_COUNT
        assert net.total_jj_count() == (
            net.logic_jj_count() + net.wiring_jj_count()
        )

    def test_cell_histogram(self):
        net, _, _ = chain_netlist(n_jtl=2)
        hist = net.cell_histogram()
        assert hist == {"JTL": 2, "Probe": 1}


class TestSimulator:
    def test_pulse_traverses_chain_with_accumulated_delay(self):
        net, cells, probe = chain_netlist(n_jtl=3, delay=2.0)
        sim = Simulator(net)
        sim.schedule_input(cells[0], "din", 0.0)
        sim.run()
        expected = 3 * library.JTL.DELAY_PS + 3 * 2.0
        assert probe.times == [pytest.approx(expected)]

    def test_run_until_stops_at_boundary(self):
        net, cells, probe = chain_netlist(n_jtl=3, delay=100.0)
        sim = Simulator(net)
        sim.schedule_input(cells[0], "din", 0.0)
        sim.run(until=150.0)
        assert probe.times == []  # pulse still in flight
        sim.run()
        assert len(probe.times) == 1

    def test_cannot_schedule_in_the_past(self):
        net, cells, _ = chain_netlist()
        sim = Simulator(net)
        sim.schedule_input(cells[0], "din", 100.0)
        sim.run()
        with pytest.raises(ConfigurationError):
            sim.schedule_input(cells[0], "din", 50.0)

    def test_schedule_at_exactly_now_is_accepted(self):
        """time == now is valid: the pulse is processed by the next run()."""
        net, cells, probe = chain_netlist(n_jtl=2, delay=1.0)
        sim = Simulator(net)
        sim.schedule_input(cells[0], "din", 0.0)
        sim.run()
        assert sim.now > 0.0
        before = len(probe.times)
        sim.schedule_input(cells[0], "din", sim.now)  # exactly now: OK
        sim.run()
        assert len(probe.times) == before + 1

    def test_schedule_at_time_zero_on_fresh_simulator(self):
        """The now == 0.0 boundary of a fresh simulator accepts t=0 inputs."""
        net, cells, probe = chain_netlist(n_jtl=2)
        sim = Simulator(net)
        assert sim.now == 0.0
        sim.schedule_input(cells[0], "din", 0.0)
        sim.run()
        assert len(probe.times) == 1

    def test_past_schedule_error_names_cell_and_port(self):
        net, cells, _ = chain_netlist()
        sim = Simulator(net)
        sim.schedule_input(cells[0], "din", 100.0)
        sim.run()
        with pytest.raises(ConfigurationError) as exc:
            sim.schedule_input(cells[0], "din", sim.now - 1.0)
        message = str(exc.value)
        assert "j0.din" in message
        assert str(sim.now) in message

    def test_unknown_port_error_names_cell_and_port(self):
        net, cells, _ = chain_netlist()
        sim = Simulator(net)
        with pytest.raises(ConfigurationError) as exc:
            sim.schedule_input(cells[0], "bogus", 0.0)
        assert "j0" in str(exc.value)
        assert "bogus" in str(exc.value)

    def test_unknown_cell_name_rejected(self):
        net, _, _ = chain_netlist()
        sim = Simulator(net)
        with pytest.raises(ConfigurationError) as exc:
            sim.schedule_input("ghost", "din", 0.0)
        assert "ghost" in str(exc.value)

    def test_strict_mode_raises_on_violation(self):
        net = Netlist("n")
        tff = net.add(library.TFFL("t"))
        sim = Simulator(net, strict=True)
        sim.schedule_input(tff, "din", 0.0)
        sim.schedule_input(tff, "din", 5.0)
        with pytest.raises(ConstraintViolationError):
            sim.run()

    def test_tolerant_mode_records_violation(self):
        net = Netlist("n")
        tff = net.add(library.TFFL("t"))
        sim = Simulator(net, strict=False)
        sim.schedule_input(tff, "din", 0.0)
        sim.schedule_input(tff, "din", 5.0)
        sim.run()
        assert len(sim.violations) == 1
        assert "TFFL" in str(sim.violations[0])

    def test_trace_records_all_arrivals(self):
        net, cells, probe = chain_netlist(n_jtl=2)
        trace = PulseTrace()
        sim = Simulator(net, trace=trace)
        sim.schedule_input(cells[0], "din", 0.0)
        sim.run()
        assert trace.times("j0", "din") == [0.0]
        assert len(trace.times("j1", "din")) == 1
        assert len(trace.times("p", "din")) == 1
        assert trace.total_pulses() == 3

    def test_deterministic_event_order_for_simultaneous_pulses(self):
        """Two pulses at the same time are processed in schedule order."""
        net = Netlist("n")
        cb = net.add(library.CB("c"))
        probe = net.add(library.Probe("p"))
        net.connect(cb, "dout", probe, "din", delay=0.0)
        results = []
        for _ in range(3):
            sim = Simulator(net)
            sim.schedule_input(cb, "dinA", 10.0)
            sim.schedule_input(cb, "dinB", 10.0)
            sim.run()
            results.append(tuple(probe.times))
            sim.reset()
        assert len(set(results)) == 1

    def test_jitter_is_deterministic_per_seed(self):
        net, cells, probe = chain_netlist(n_jtl=3, delay=5.0)
        times = []
        for _ in range(2):
            sim = Simulator(net, jitter_ps=0.5, seed=42)
            sim.schedule_input(cells[0], "din", 0.0)
            sim.run()
            times.append(tuple(probe.times))
            sim.reset()
        assert times[0] == times[1]
        sim = Simulator(net, jitter_ps=0.5, seed=7)
        sim.schedule_input(cells[0], "din", 0.0)
        sim.run()
        assert tuple(probe.times) != times[0]

    def test_runaway_feedback_detected(self):
        """A JTL loop oscillates forever; the engine must abort."""
        net = Netlist("loop")
        a = net.add(library.JTL("a"))
        b = net.add(library.JTL("b"))
        net.connect(a, "dout", b, "din", delay=25.0)
        net.connect(b, "dout", a, "din", delay=25.0)
        sim = Simulator(net)
        sim.schedule_input(a, "din", 0.0)
        with pytest.raises(ConfigurationError):
            sim.run(max_events=1000)

    def test_reset_clears_time_and_violations(self):
        net = Netlist("n")
        tff = net.add(library.TFFL("t"))
        sim = Simulator(net)
        sim.schedule_input(tff, "din", 0.0)
        sim.schedule_input(tff, "din", 5.0)
        sim.run()
        assert sim.violations and sim.now > 0
        sim.reset()
        assert sim.violations == []
        assert sim.now == 0.0
        assert sim.delivered_pulses == 0

    @pytest.mark.parametrize("jitter_mode", ["global", "wire"])
    def test_reset_reseeds_jitter_streams(self, jitter_mode):
        """Regression: ``reset`` must rewind the jitter RNGs to the
        construction seed so a replay on the *same* simulator instance is
        bit-identical to the first run (streams used to leak across
        resets in global mode)."""
        net, cells, probe = chain_netlist(n_jtl=4, delay=5.0)
        sim = Simulator(net, jitter_ps=0.6, seed=13,
                        jitter_mode=jitter_mode)
        runs = []
        for _ in range(3):
            for k in range(5):
                sim.schedule_input(cells[0], "din", 100.0 * k)
            sim.run()
            runs.append(tuple(probe.times))
            sim.reset()
        assert runs[0] == runs[1] == runs[2]
        assert sim._wire_rngs == {}


class TestMaxEventsGuard:
    """Regression tests for the max_events off-by-one (the guard used to
    let ``max_events + 1`` events through before raising)."""

    def _loop(self):
        net = Netlist("loop")
        a = net.add(library.JTL("a"))
        b = net.add(library.JTL("b"))
        net.connect(a, "dout", b, "din", delay=25.0)
        net.connect(b, "dout", a, "din", delay=25.0)
        return net, a

    def test_exactly_max_events_processed_before_raise(self):
        net, a = self._loop()
        sim = Simulator(net)
        sim.schedule_input(a, "din", 0.0)
        with pytest.raises(ConfigurationError):
            sim.run(max_events=100)
        assert sim.events_processed == 100  # not 101

    def test_run_completing_on_last_allowed_event_does_not_raise(self):
        # A 3-JTL chain + probe processes exactly 4 events; a budget of
        # exactly 4 must therefore complete cleanly...
        net, cells, probe = chain_netlist(n_jtl=3)
        sim = Simulator(net)
        sim.schedule_input(cells[0], "din", 0.0)
        sim.run(max_events=4)
        assert sim.events_processed == 4
        assert len(probe.times) == 1

    def test_budget_one_short_raises(self):
        # ...while a budget of 3 must raise with 3 processed.
        net, cells, probe = chain_netlist(n_jtl=3)
        sim = Simulator(net)
        sim.schedule_input(cells[0], "din", 0.0)
        with pytest.raises(ConfigurationError):
            sim.run(max_events=3)
        assert sim.events_processed == 3

    def test_guard_applies_with_trace_and_until_variants(self):
        for kwargs in ({}, {"until": 10_000.0}):
            net, a = self._loop()
            sim = Simulator(net, trace=PulseTrace())
            sim.schedule_input(a, "din", 0.0)
            with pytest.raises(ConfigurationError):
                sim.run(max_events=50, **kwargs)
            assert sim.events_processed == 50
