"""Tests for batched simulation: memoised elaboration, queue backends,
``Simulator.run_batch`` and :class:`SimulationSession`."""

import pytest

from repro.errors import ConfigurationError
from repro.rsfq import (
    Netlist,
    PulseTrace,
    SimulationSession,
    Simulator,
    library,
)
from repro.rsfq.events import QUEUE_BACKENDS, EventQueue, SortedListQueue


def chain_netlist(n_jtl=3, delay=1.0):
    net = Netlist("chain")
    cells = [net.add(library.JTL(f"j{i}")) for i in range(n_jtl)]
    probe = net.add(library.Probe("p"))
    for a, b in zip(cells, cells[1:]):
        net.connect(a, "dout", b, "din", delay=delay)
    net.connect(cells[-1], "dout", probe, "din", delay=delay)
    return net, cells, probe


class TestElaborationMemo:
    def test_elaborate_is_memoised(self):
        net, _, _ = chain_netlist()
        assert net.elaborate() is net.elaborate()

    def test_topology_change_invalidates_memo(self):
        net, cells, _ = chain_netlist()
        table = net.elaborate()
        extra = net.add(library.Probe("extra"))
        assert net.topology_version > table.version
        table2 = net.elaborate()
        assert table2 is not table
        net.connect(net.add(library.SPL("s")), "doutA", extra, "din")
        assert net.elaborate() is not table2

    def test_fanout_table_routes(self):
        net, cells, probe = chain_netlist(n_jtl=2, delay=3.0)
        table = net.elaborate()
        routes = table.fanout(cells[0].name, "dout")
        assert routes == ((cells[1].name, "din", 3.0),)
        # Unconnected ports route nowhere (empty tuple, no KeyError).
        assert table.fanout(probe.name, "nonexistent") == ()

    def test_simulator_picks_up_topology_changes(self):
        """A simulator built before a connect() must still route through it."""
        net = Netlist("grow")
        a = net.add(library.JTL("a"))
        sim = Simulator(net)
        probe = net.add(library.Probe("p"))
        net.connect(a, "dout", probe, "din", delay=1.0)
        sim.schedule_input(a, "din", 0.0)
        sim.run()
        assert len(probe.times) == 1


class TestQueueBackends:
    def test_registry_contents(self):
        assert QUEUE_BACKENDS["heap"] is EventQueue
        assert QUEUE_BACKENDS["sorted"] is SortedListQueue

    @pytest.mark.parametrize("backend", sorted(QUEUE_BACKENDS))
    def test_backend_runs_chain(self, backend):
        net, cells, probe = chain_netlist(n_jtl=3, delay=2.0)
        sim = Simulator(net, queue_backend=backend)
        sim.schedule_input(cells[0], "din", 0.0)
        sim.run()
        expected = 3 * library.JTL.DELAY_PS + 3 * 2.0
        assert probe.times == [pytest.approx(expected)]

    def test_backends_produce_identical_event_order(self):
        """heap and sorted must agree event-for-event, including ties."""
        traces = {}
        for backend in ("heap", "sorted"):
            net = Netlist("tie")
            cb = net.add(library.CB("c"))
            probe = net.add(library.Probe("p"))
            net.connect(cb, "dout", probe, "din", delay=0.0)
            trace = PulseTrace()
            sim = Simulator(net, trace=trace, queue_backend=backend)
            sim.schedule_input(cb, "dinA", 10.0)
            sim.schedule_input(cb, "dinB", 10.0)
            sim.schedule_input(cb, "dinA", 40.0)
            sim.run()
            traces[backend] = trace.events()
        assert traces["heap"] == traces["sorted"]

    def test_callable_backend_accepted(self):
        net, cells, probe = chain_netlist(n_jtl=2)
        sim = Simulator(net, queue_backend=SortedListQueue)
        sim.schedule_input(cells[0], "din", 0.0)
        sim.run()
        assert len(probe.times) == 1

    def test_unknown_backend_rejected(self):
        net, _, _ = chain_netlist()
        with pytest.raises(ConfigurationError) as exc:
            Simulator(net, queue_backend="bogus")
        assert "bogus" in str(exc.value)
        assert "heap" in str(exc.value)


class TestSimulatorRunBatch:
    def test_batch_resets_between_runs(self):
        net, cells, probe = chain_netlist(n_jtl=2, delay=1.0)
        sim = Simulator(net)
        stats = sim.run_batch([
            [(cells[0], "din", 0.0)],
            [(cells[0], "din", 0.0), (cells[0], "din", 50.0)],
        ])
        assert len(stats) == 2
        # Second run saw a reset circuit: exactly two pulses at the probe.
        assert len(probe.times) == 2
        # Run 1 pushes one pulse through 2 JTLs + probe = 3 events; run 2
        # pushes two pulses = 6 events.
        assert stats[0].events == 3
        assert stats[1].events == 6
        assert stats[1].final_time_ps > stats[0].final_time_ps
        assert all(s.violations == 0 for s in stats)
        assert all(s.wall_time_s >= 0.0 for s in stats)

    def test_batch_accepts_cell_names(self):
        net, cells, probe = chain_netlist(n_jtl=2)
        sim = Simulator(net)
        sim.run_batch([[("j0", "din", 0.0)]])
        assert len(probe.times) == 1

    def test_batch_counts_violations_per_run(self):
        net = Netlist("n")
        tff = net.add(library.TFFL("t"))
        sim = Simulator(net, strict=False)
        stats = sim.run_batch([
            [(tff, "din", 0.0), (tff, "din", 5.0)],   # too close: violation
            [(tff, "din", 0.0), (tff, "din", 500.0)],  # clean
        ])
        assert stats[0].violations == 1
        assert stats[1].violations == 0


class TestSimulationSession:
    def test_single_run_result(self):
        net, cells, probe = chain_netlist(n_jtl=2)
        session = SimulationSession(net)
        result = session.run([(cells[0], "din", 0.0)])
        assert result.index == 0
        assert result.stats.events == 3
        assert result.stats.violations == 0
        assert result.violations == []
        assert result.trace is None  # record_traces off by default
        assert len(probe.times) == 1

    def test_session_reuses_simulator_for_ideal_runs(self):
        net, cells, probe = chain_netlist(n_jtl=2)
        session = SimulationSession(net)
        r0 = session.run([(cells[0], "din", 0.0)])
        r1 = session.run([(cells[0], "din", 0.0)])
        assert r0.stats.events == r1.stats.events
        assert r0.stats.final_time_ps == r1.stats.final_time_ps
        assert r1.index == 1
        assert session.stats.runs == 2
        assert session.stats.total_events == 6

    def test_record_traces_gives_fresh_trace_per_run(self):
        net, cells, _ = chain_netlist(n_jtl=2)
        session = SimulationSession(net, record_traces=True)
        r0 = session.run([(cells[0], "din", 0.0)])
        r1 = session.run([(cells[0], "din", 10.0)])
        assert r0.trace is not None and r1.trace is not None
        assert r0.trace is not r1.trace
        assert r0.trace.events() != r1.trace.events()
        assert r0.trace.total_pulses() == 3

    def test_jitter_seed_determinism(self):
        net, cells, _ = chain_netlist(n_jtl=3, delay=5.0)
        session = SimulationSession(net, jitter_ps=0.5, record_traces=True)
        a = session.run([(cells[0], "din", 0.0)], seed=42)
        b = session.run([(cells[0], "din", 0.0)], seed=42)
        c = session.run([(cells[0], "din", 0.0)], seed=7)
        assert a.trace == b.trace
        assert a.trace != c.trace
        assert a.seed == 42 and c.seed == 7

    def test_run_batch_with_seeds(self):
        net, cells, _ = chain_netlist(n_jtl=3, delay=5.0)
        session = SimulationSession(net, jitter_ps=0.5, record_traces=True)
        stimuli = [(cells[0], "din", 0.0)]
        results = session.run_batch([stimuli, stimuli, stimuli],
                                    seeds=[1, 1, 2])
        assert [r.index for r in results] == [0, 1, 2]
        assert results[0].trace == results[1].trace
        assert results[0].trace != results[2].trace

    def test_run_batch_seed_length_mismatch(self):
        net, cells, _ = chain_netlist()
        session = SimulationSession(net)
        with pytest.raises(ConfigurationError):
            session.run_batch([[(cells[0], "din", 0.0)]], seeds=[1, 2])

    def test_session_stats_aggregate(self):
        net, cells, _ = chain_netlist(n_jtl=2)
        session = SimulationSession(net)
        session.run_batch([[(cells[0], "din", 0.0)]] * 4)
        stats = session.stats
        assert stats.runs == 4
        assert stats.total_events == 4 * 3
        assert stats.total_pulses == 4 * 3
        assert stats.total_violations == 0
        assert stats.total_wall_time_s >= 0.0
        assert stats.elaboration_time_s >= 0.0
        if stats.total_wall_time_s > 0:
            assert stats.events_per_second > 0

    def test_events_per_second_zero_before_running(self):
        net, _, _ = chain_netlist()
        session = SimulationSession(net)
        assert session.stats.events_per_second == 0.0

    def test_session_queue_backend_forwarded(self):
        net, cells, probe = chain_netlist(n_jtl=2)
        session = SimulationSession(net, queue_backend="sorted")
        session.run([(cells[0], "din", 0.0)])
        assert len(probe.times) == 1
        with pytest.raises(ConfigurationError):
            SimulationSession(net, queue_backend="bogus").run(
                [(cells[0], "din", 0.0)]
            )
