"""Grid schema: point validation, ordering, content addressing."""

import pytest

from repro.errors import ConfigurationError
from repro.explore import (
    BUCKETING_POLICIES,
    EXPLORE_KIND,
    EXPLORE_SCHEMA,
    ExploreGrid,
    ExplorePoint,
    point_fingerprint,
)


class TestExplorePoint:
    def test_mesh_and_reorder_derivation(self):
        point = ExplorePoint(32, 10, 16, "reordered")
        assert point.mesh_n == 16           # the paper's 16x16 chip
        assert point.reorder is True
        assert ExplorePoint(8, 8, 4, "naive").reorder is False

    def test_key_is_stable_and_readable(self):
        assert (ExplorePoint(16, 8, 4, "naive").key
                == "npe16-sc8-w4-naive")

    @pytest.mark.parametrize("bad", [
        dict(npe_count=7),    # odd
        dict(npe_count=0),
        dict(sc_per_npe=0),
        dict(slice_width=0),
        dict(slice_width=9),  # wider than mesh_n=8
        dict(bucketing="zigzag"),
    ])
    def test_validation(self, bad):
        kwargs = dict(npe_count=16, sc_per_npe=8, slice_width=4,
                      bucketing="reordered")
        kwargs.update(bad)
        with pytest.raises(ConfigurationError):
            ExplorePoint(**kwargs)

    def test_ordering_is_lexicographic(self):
        a = ExplorePoint(8, 10, 4, "naive")
        b = ExplorePoint(16, 5, 4, "naive")
        assert a < b
        assert sorted([b, a]) == [a, b]


class TestExploreGrid:
    def test_axes_dedupe_and_sort(self):
        grid = ExploreGrid(npe_counts=(16, 8, 16), sc_per_npe=(10, 8),
                           slice_widths=(4,), bucketing=("naive",))
        assert grid.npe_counts == (8, 16)
        assert grid.sc_per_npe == (8, 10)
        # Equal sets fingerprint identically.
        assert grid == ExploreGrid(
            npe_counts=(8, 16), sc_per_npe=(8, 10), slice_widths=(4,),
            bucketing=("naive",),
        )

    def test_points_skip_impossible_widths(self):
        grid = ExploreGrid(npe_counts=(8, 32), sc_per_npe=(8,),
                           slice_widths=(4, 16), bucketing=("naive",))
        points = grid.points()
        # npe8 (mesh 4) only fits width 4; npe32 (mesh 16) fits both.
        assert [p.key for p in points] == [
            "npe8-sc8-w4-naive", "npe32-sc8-w4-naive",
            "npe32-sc8-w16-naive",
        ]

    def test_points_are_sorted(self):
        points = ExploreGrid().points()
        assert list(points) == sorted(points)

    def test_empty_axis_rejected(self):
        with pytest.raises(ConfigurationError):
            ExploreGrid(npe_counts=())

    def test_unfittable_widths_rejected(self):
        with pytest.raises(ConfigurationError):
            ExploreGrid(npe_counts=(8,), slice_widths=(16,))

    def test_default_grid_covers_the_paper_chip(self):
        keys = {p.key for p in ExploreGrid().points()}
        assert "npe32-sc10-w16-reordered" in keys  # 16x16 mesh
        assert len(keys) == 36

    def test_bucketing_policies_constant(self):
        assert set(BUCKETING_POLICIES) == {"reordered", "naive"}


class TestPointFingerprint:
    def test_sensitivity(self):
        point = ExplorePoint(16, 8, 4, "naive")
        base = point_fingerprint(point, "wl", "ndro", ("resources",))
        assert base != point_fingerprint(
            ExplorePoint(16, 8, 8, "naive"), "wl", "ndro",
            ("resources",))
        assert base != point_fingerprint(point, "other", "ndro",
                                         ("resources",))
        assert base != point_fingerprint(point, "wl", "vt-ram",
                                         ("resources",))
        assert base != point_fingerprint(point, "wl", "ndro",
                                         ("resources", "power"))

    def test_estimator_order_is_canonicalised(self):
        point = ExplorePoint(16, 8, 4, "naive")
        assert point_fingerprint(point, "wl", "ndro", ("a", "b")) == \
            point_fingerprint(point, "wl", "ndro", ("b", "a"))

    def test_schema_constants(self):
        assert EXPLORE_SCHEMA == "repro.explore/v1"
        assert EXPLORE_KIND == "explore-point"
