"""Estimator registry: protocol, round-trips, built-in metrics."""

import pytest

from repro.errors import ConfigurationError
from repro.explore import (
    EstimateContext,
    Estimator,
    ExplorePoint,
    available_estimators,
    get_estimator,
    memory_technologies,
    register_estimator,
)
from repro.explore.estimators import _REGISTRY, MEMORY_PREFIX
from repro.resources import estimate_resources

POINT = ExplorePoint(16, 8, 4, "reordered")
CTX = EstimateContext(max_strength=1)


class TestRegistry:
    def test_builtins_are_registered(self):
        assert {"resources", "power", "performance",
                "memory-ndro", "memory-vt-ram",
                "memory-delay-line"} <= set(available_estimators())

    def test_memory_technologies_strip_prefix(self):
        assert memory_technologies() == ["delay-line", "ndro", "vt-ram"]

    def test_round_trip_every_builtin(self):
        for name in available_estimators():
            instance = get_estimator(name)
            assert instance.name == name
            assert isinstance(instance, Estimator)
            metrics = instance.estimate(POINT, CTX)
            assert metrics and isinstance(metrics, dict)
            for key, value in metrics.items():
                assert isinstance(key, str)
                assert isinstance(value, (int, float)), (name, key)

    def test_unknown_name_raises(self):
        with pytest.raises(ConfigurationError, match="available"):
            get_estimator("does-not-exist")

    def test_register_rejects_duplicates_and_bad_shapes(self):
        with pytest.raises(ConfigurationError, match="registered"):
            @register_estimator
            class Duplicate:  # noqa: F811 - intentionally clashing
                name = "resources"

                def estimate(self, point, context):
                    return {}

        with pytest.raises(ConfigurationError, match="name"):
            @register_estimator
            class Nameless:
                def estimate(self, point, context):
                    return {}

        with pytest.raises(ConfigurationError, match="estimate"):
            @register_estimator
            class NoEstimate:
                name = "broken"
        assert "broken" not in _REGISTRY

    def test_custom_estimator_registers_and_unregisters(self):
        @register_estimator
        class Custom:
            name = "test-custom"

            def estimate(self, point, context):
                return {"custom_metric": point.npe_count * 2}

        try:
            assert get_estimator("test-custom").estimate(POINT, CTX) \
                == {"custom_metric": 32}
        finally:
            del _REGISTRY["test-custom"]


class TestBuiltins:
    def test_resources_match_the_anchored_model(self):
        metrics = get_estimator("resources").estimate(POINT, CTX)
        anchored = estimate_resources(POINT.mesh_n, sc_per_npe=8)
        assert metrics["total_jj"] == anchored.total_jj
        assert metrics["area_mm2"] == round(anchored.total_area_mm2, 4)
        assert metrics["component_area_mm2"] == \
            round(anchored.component_area_mm2, 4)

    def test_power_includes_static_floor(self):
        metrics = get_estimator("power").estimate(POINT, CTX)
        assert 0 < metrics["static_mw"] < metrics["power_mw"]

    def test_performance_omits_fps_without_workload(self):
        metrics = get_estimator("performance").estimate(POINT, CTX)
        assert "fps" not in metrics
        assert metrics["peak_gsops"] > 0

    def test_performance_fps_with_workload(self):
        ctx = EstimateContext(synops_per_frame=1000.0,
                              reload_fraction=0.1, utilisation=0.5)
        metrics = get_estimator("performance").estimate(POINT, ctx)
        assert metrics["fps"] > 0


class TestMemoryTechnologies:
    def test_bit_count_tracks_mesh_and_strength(self):
        ndro = get_estimator(MEMORY_PREFIX + "ndro")
        base = ndro.estimate(POINT, CTX)
        assert base["memory_bits"] == POINT.mesh_n ** 2
        strong = ndro.estimate(POINT, EstimateContext(max_strength=3))
        assert strong["memory_bits"] == 3 * base["memory_bits"]

    def test_ndro_matches_the_cell_library(self):
        from repro.rsfq import library

        base = get_estimator(MEMORY_PREFIX + "ndro").estimate(POINT, CTX)
        assert base["memory_jj"] == \
            POINT.mesh_n ** 2 * library.NDRO.JJ_COUNT
        assert base["memory_reload_scale"] == 1.0

    def test_alternative_technologies_differ_from_baseline(self):
        ndro = get_estimator(MEMORY_PREFIX + "ndro").estimate(POINT, CTX)
        vt = get_estimator(MEMORY_PREFIX + "vt-ram").estimate(POINT, CTX)
        delay = get_estimator(
            MEMORY_PREFIX + "delay-line").estimate(POINT, CTX)
        # VT RAM: fewer JJs, denser, faster reload.
        assert vt["memory_jj"] < ndro["memory_jj"]
        assert vt["memory_reload_scale"] < 1.0
        # Delay line: fewest JJs, slowest reload.
        assert delay["memory_jj"] < vt["memory_jj"]
        assert delay["memory_reload_scale"] > 1.0
