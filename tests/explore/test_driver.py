"""Campaign driver: memoization, determinism, counters, reporting."""

import json
from dataclasses import replace

import pytest

from repro.errors import ConfigurationError
from repro.explore import (
    EXPLORE_KIND,
    ExploreConfig,
    ExploreCounters,
    build_workload,
    evaluate_point,
    explore_counter_families,
    pinned_digest,
    pinned_view,
    render_report,
    run_explore,
)
from repro.explore.grid import ExploreGrid, ExplorePoint, point_fingerprint
from repro.ssnn import PlanCache


@pytest.fixture()
def quick():
    return ExploreConfig.quick()


@pytest.fixture()
def cache(tmp_path):
    return PlanCache(root=tmp_path / "cache")


def canonical(report):
    return json.dumps(pinned_view(report), sort_keys=True)


class TestReportShape:
    def test_schema_and_point_order(self, quick):
        report = run_explore(quick, plan_cache=None)
        assert report["schema"] == "repro.explore/v1"
        keys = [row["key"] for row in report["points"]]
        assert keys == [p.key for p in quick.grid.points()]
        assert report["counters"]["points_total"] == len(keys)

    def test_feasible_points_carry_the_full_metric_set(self, quick):
        report = run_explore(quick, plan_cache=None)
        feasible = [r for r in report["points"] if r["feasible"]]
        assert feasible
        for row in feasible:
            for key in ("accuracy", "fps", "total_jj_effective",
                        "power_mw_effective", "synops_per_frame",
                        "probe_latency_ps", "spurious"):
                assert key in row["metrics"], (row["key"], key)

    def test_infeasible_points_keep_estimates_not_measurements(
            self, quick):
        report = run_explore(quick, plan_cache=None)
        infeasible = [r for r in report["points"] if not r["feasible"]]
        assert infeasible  # sc=4 cannot hold the quick workload
        for row in infeasible:
            assert "membrane states" in row["error"]
            assert row["metrics"]["total_jj"] > 0
            assert "accuracy" not in row["metrics"]
            assert row["key"] not in report["pareto"]
        assert report["counters"]["infeasible_points"] == \
            len(infeasible)

    def test_reordered_dominates_naive_on_accuracy(self, quick):
        report = run_explore(quick, plan_cache=None)
        by_key = {r["key"]: r for r in report["points"]}
        reordered = by_key["npe8-sc8-w4-reordered"]["metrics"]
        naive = by_key["npe8-sc8-w4-naive"]["metrics"]
        assert reordered["accuracy"] > naive["accuracy"]
        assert reordered["spurious"] < naive["spurious"]
        # ... which is why only reordered points reach the frontier.
        assert all(key.endswith("-reordered")
                   for key in report["pareto"])

    def test_render_report_mentions_everything(self, quick):
        report = run_explore(quick, plan_cache=None)
        text = render_report(report)
        for row in report["points"]:
            assert row["key"] in text
        assert "Pareto frontier" in text
        assert "infeasible" in text


class TestMemoization:
    def test_warm_rerun_is_all_hits_and_bit_identical(
            self, quick, cache):
        counters = ExploreCounters()
        cold = run_explore(quick, plan_cache=cache, counters=counters)
        assert counters.snapshot()["point_cache_hits"] == 0
        warm_counters = ExploreCounters()
        warm = run_explore(quick, plan_cache=cache,
                           counters=warm_counters)
        snap = warm_counters.snapshot()
        assert snap["point_cache_hits"] == \
            cold["counters"]["points_total"]
        assert snap["points_evaluated"] == 0
        assert canonical(cold) == canonical(warm)
        assert pinned_digest(cold) == pinned_digest(warm)

    def test_config_change_invalidates_points(self, quick, cache):
        run_explore(quick, plan_cache=cache)
        counters = ExploreCounters()
        other = replace(quick, memory_technology="vt-ram")
        run_explore(other, plan_cache=cache, counters=counters)
        # Different memory technology -> different content addresses.
        assert counters.snapshot()["point_cache_hits"] == 0

    def test_corrupt_entry_is_dropped_and_repaired(self, quick, cache):
        run_explore(quick, plan_cache=cache)
        workload = build_workload(quick)
        point = quick.grid.points()[0]
        path = cache.path_for(
            point_fingerprint(point, workload.fingerprint,
                              quick.memory_technology,
                              quick.estimators),
            kind=EXPLORE_KIND,
        )
        assert path.exists()
        path.write_bytes(b"not an npz")
        counters = ExploreCounters()
        report = run_explore(quick, plan_cache=cache,
                             counters=counters)
        snap = counters.snapshot()
        assert snap["points_evaluated"] == 1  # only the broken one
        assert snap["point_cache_hits"] == \
            report["counters"]["points_total"] - 1
        # ... and the repaired entry serves the next sweep.
        again = ExploreCounters()
        run_explore(quick, plan_cache=cache, counters=again)
        assert again.snapshot()["points_evaluated"] == 0

    def test_uncached_sweep_counts_no_cache_traffic(self, quick):
        counters = ExploreCounters()
        run_explore(quick, plan_cache=None, counters=counters)
        snap = counters.snapshot()
        assert snap["point_cache_hits"] == 0
        assert snap["point_cache_misses"] == 0
        assert snap["points_evaluated"] == snap["points_requested"]


class TestDeterminism:
    def test_serial_and_parallel_sweeps_are_bit_identical(
            self, quick, tmp_path):
        serial = run_explore(quick,
                             plan_cache=PlanCache(root=tmp_path / "a"))
        parallel = run_explore(
            replace(quick, workers=2),
            plan_cache=PlanCache(root=tmp_path / "b"),
        )
        assert canonical(serial) == canonical(parallel)
        assert serial["pareto"] == parallel["pareto"]

    def test_evaluate_point_is_pure(self, quick):
        workload = build_workload(quick)
        point = ExplorePoint(8, 8, 4, "reordered")
        a = evaluate_point(point, workload, quick)
        b = evaluate_point(point, workload, quick)
        assert json.dumps(a, sort_keys=True) == \
            json.dumps(b, sort_keys=True)

    def test_workload_fingerprint_tracks_the_seed(self, quick):
        assert build_workload(quick).fingerprint != \
            build_workload(replace(quick, seed=7)).fingerprint

    def test_pinned_view_excludes_timing(self, quick):
        report = run_explore(quick, plan_cache=None)
        view = pinned_view(report)
        assert "timing" not in view
        assert view["points"] == report["points"]


class TestMemoryTechnologies:
    def test_vt_ram_shifts_the_effective_totals(self, quick):
        base = run_explore(quick, plan_cache=None)
        vt = run_explore(replace(quick, memory_technology="vt-ram"),
                         plan_cache=None)
        key = "npe8-sc8-w4-reordered"
        base_row = next(r for r in base["points"] if r["key"] == key)
        vt_row = next(r for r in vt["points"] if r["key"] == key)
        # Fewer JJs per bit than NDRO -> cheaper effective chip ...
        assert vt_row["metrics"]["total_jj_effective"] < \
            base_row["metrics"]["total_jj_effective"]
        # ... and the faster reload raises FPS.
        assert vt_row["metrics"]["fps"] >= base_row["metrics"]["fps"]
        # The NDRO baseline is the identity adjustment.
        assert base_row["metrics"]["total_jj_effective"] == \
            base_row["metrics"]["total_jj"]


class TestCountersAndConfig:
    def test_counter_families_shape(self):
        counters = ExploreCounters()
        counters.bump("sweeps")
        counters.bump("points_evaluated", 5)
        families = explore_counter_families(counters)
        by_name = {name: samples for name, kind, help_, samples
                   in families}
        assert by_name["sushi_explore_sweeps_total"] == [(None, 1)]
        assert by_name["sushi_explore_points_evaluated_total"] == \
            [(None, 5)]
        for name, kind, help_, _ in families:
            assert name.startswith("sushi_explore_")
            assert kind == "counter"
            assert help_

    def test_counters_render_through_prometheus(self):
        from repro.serve.metrics import render_prometheus

        text = render_prometheus(
            explore_counter_families(ExploreCounters())
        )
        assert "# TYPE sushi_explore_sweeps_total counter" in text

    @pytest.mark.parametrize("bad", [
        dict(steps=0),
        dict(frames=0),
        dict(sizes=(8,)),
        dict(memory_technology="core-rope"),
        dict(estimators=("resources", "nope")),
        dict(workers=-1),
        dict(probe_pulses=0),
    ])
    def test_config_validation(self, bad):
        with pytest.raises(ConfigurationError):
            ExploreConfig(**bad)

    def test_quick_config_is_small(self, quick):
        assert len(quick.grid.points()) <= 12


class TestCli:
    def test_quick_no_cache(self, capsys):
        from repro.explore.cli import main

        assert main(["--quick", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "Pareto frontier" in out
        assert "pinned digest" in out

    def test_json_to_stdout_is_valid(self, capsys):
        from repro.explore.cli import main

        assert main(["--quick", "--no-cache", "--json", "-"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro.explore/v1"

    def test_memory_flag_reaches_the_sweep(self, capsys):
        from repro.explore.cli import main

        assert main(["--quick", "--no-cache", "--memory", "vt-ram",
                     "--json", "-"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["config"]["memory_technology"] == "vt-ram"

    def test_registered_as_repro_subcommand(self):
        from repro.__main__ import SUBCOMMANDS

        assert "explore" in SUBCOMMANDS
