"""Pareto semantics: dominance, ties, infeasible exclusion, order."""

from repro.explore import PARETO_AXES, dominates, pareto_frontier


def row(key, accuracy, fps, jj, power, feasible=True):
    metrics = {}
    if feasible:
        metrics = {"accuracy": accuracy, "fps": fps,
                   "total_jj_effective": jj,
                   "power_mw_effective": power}
    return {"key": key, "feasible": feasible, "metrics": metrics}


class TestDominates:
    def test_strictly_better_everywhere(self):
        a = row("a", 0.9, 100.0, 1000, 5.0)["metrics"]
        b = row("b", 0.8, 90.0, 2000, 6.0)["metrics"]
        assert dominates(a, b)
        assert not dominates(b, a)

    def test_directionality(self):
        # Lower JJ/power is better; higher accuracy/FPS is better.
        cheap = row("c", 0.9, 100.0, 1000, 5.0)["metrics"]
        pricey = row("p", 0.9, 100.0, 1500, 5.0)["metrics"]
        assert dominates(cheap, pricey)

    def test_equal_vectors_do_not_dominate(self):
        a = row("a", 0.9, 100.0, 1000, 5.0)["metrics"]
        assert not dominates(a, dict(a))

    def test_trade_off_is_incomparable(self):
        accurate = row("a", 0.95, 100.0, 2000, 5.0)["metrics"]
        cheap = row("c", 0.80, 100.0, 1000, 5.0)["metrics"]
        assert not dominates(accurate, cheap)
        assert not dominates(cheap, accurate)


class TestFrontier:
    def test_dominated_points_are_pruned(self):
        points = [
            row("best", 0.9, 100.0, 1000, 5.0),
            row("worse", 0.8, 90.0, 1100, 5.5),
            row("tradeoff", 0.95, 80.0, 3000, 9.0),
        ]
        assert [r["key"] for r in pareto_frontier(points)] == \
            ["best", "tradeoff"]

    def test_duplicates_all_survive(self):
        points = [row("a", 0.9, 100.0, 1000, 5.0),
                  row("b", 0.9, 100.0, 1000, 5.0)]
        assert [r["key"] for r in pareto_frontier(points)] == ["a", "b"]

    def test_infeasible_points_are_excluded(self):
        points = [row("ok", 0.5, 10.0, 9000, 9.0),
                  row("cap", 0.99, 999.0, 1, 0.1, feasible=False)]
        assert [r["key"] for r in pareto_frontier(points)] == ["ok"]

    def test_none_valued_axes_are_excluded(self):
        broken = row("broken", 0.9, 100.0, 1000, 5.0)
        broken["metrics"]["fps"] = None
        assert pareto_frontier([broken]) == []

    def test_input_order_is_preserved(self):
        points = [row("z", 0.9, 100.0, 2000, 5.0),
                  row("a", 0.9, 100.0, 1000, 9.0)]
        assert [r["key"] for r in pareto_frontier(points)] == ["z", "a"]

    def test_empty_input(self):
        assert pareto_frontier([]) == []

    def test_axes_contract(self):
        assert PARETO_AXES == (
            ("accuracy", "max"), ("fps", "max"),
            ("total_jj_effective", "min"),
            ("power_mw_effective", "min"),
        )
