"""End-to-end integration: the complete Fig. 12 workflow in miniature.

Covers the whole pipeline in one place -- dataset, training, binarization,
planning, verification, fast-engine inference, behavioural-chip inference,
and the encoded-stream timing -- on sizes small enough for CI.
"""

import numpy as np
import pytest

from repro import (
    SpikingClassifier,
    SushiRuntime,
    Trainer,
    TrainerConfig,
    accuracy,
    binarize_network,
    consistency,
    load_digits,
    plan_network,
)
from repro.harness.artifacts import downsample_images
from repro.snn.encoding import PoissonEncoder
from repro.ssnn import encode_inference, verify_plan


@pytest.fixture(scope="module")
def pipeline():
    """Train a tiny model once for the whole module."""
    data = load_digits(train_size=600, test_size=80, seed=3)
    images_tr = downsample_images(data.train_images, 4)
    images_te = downsample_images(data.test_images, 4)
    model = SpikingClassifier.mlp(
        input_size=49, hidden_size=32, time_steps=4,
        binary_aware=True, seed=3,
    )
    Trainer(model, TrainerConfig(epochs=25, batch_size=32,
                                 learning_rate=8e-3)).fit(
        images_tr, data.train_labels
    )
    network = binarize_network(model)
    encoder = PoissonEncoder(seed=model.encoder_seed)
    trains = encoder.encode_steps(
        images_te.reshape(len(images_te), -1), model.time_steps
    )
    return model, network, trains, data.test_labels


class TestEndToEnd:
    def test_training_learned_something(self, pipeline):
        model, network, trains, labels = pipeline
        preds = network.predict(trains)
        assert accuracy(preds, labels) > 0.5

    def test_plan_verifies(self, pipeline):
        _, network, _, _ = pipeline
        plan = plan_network(network, chip_n=8)
        verify_plan(plan).raise_if_failed()

    def test_fast_engine_matches_software(self, pipeline):
        _, network, trains, _ = pipeline
        result = SushiRuntime(chip_n=8).infer(network, trains)
        np.testing.assert_array_equal(result.predictions,
                                      network.predict(trains))
        assert result.spurious_decisions == 0

    def test_behavioural_chip_matches_fast_engine(self, pipeline):
        _, network, trains, _ = pipeline
        subset = trains[:, :3, :]
        fast = SushiRuntime(chip_n=6, sc_per_npe=8).infer(network, subset)
        slow = SushiRuntime(chip_n=6, sc_per_npe=8,
                            engine="behavioral").infer(network, subset)
        np.testing.assert_array_equal(fast.output_raster, slow.output_raster)

    def test_different_mesh_sizes_agree(self, pipeline):
        _, network, trains, _ = pipeline
        subset = trains[:, :10, :]
        small = SushiRuntime(chip_n=3).infer(network, subset)
        large = SushiRuntime(chip_n=16).infer(network, subset)
        np.testing.assert_array_equal(small.predictions, large.predictions)

    def test_encoded_stream_timing_is_sane(self, pipeline):
        _, network, trains, _ = pipeline
        plan = plan_network(network, chip_n=8)
        enc = encode_inference(plan, trains[:, 0, :])
        assert enc.total_ps > 0
        assert 0 <= enc.reload_fraction < 1
        assert enc.fps > 100  # a tiny net on a GHz-pulse chip is fast
        assert enc.synaptic_ops > 0

    def test_encoder_and_runtime_agree_on_synaptic_ops(self, pipeline):
        """The stream encoder and the runtime count the same synaptic
        operations for the same sample (independent implementations)."""
        _, network, trains, _ = pipeline
        single = trains[:, :1, :]
        runtime = SushiRuntime(chip_n=8).infer(network, single)
        plan = plan_network(network, chip_n=8)
        enc = encode_inference(plan, trains[:, 0, :])
        assert enc.synaptic_ops == runtime.synaptic_ops

    def test_chip_agreement_with_trained_model(self, pipeline):
        model, network, trains, labels = pipeline
        # Use the downsampled test images the pipeline was built on.
        result = SushiRuntime(chip_n=8).infer(network, trains)
        agreement = consistency(result.predictions,
                                network.predict(trains))
        assert agreement == 1.0  # same integer semantics end to end
